"""Ablation-matrix benchmark harness with regression gating.

One declarative runner over the repository's performance surface: each
**cell** of the matrix flips exactly one knob of a shared workload body
(reused from ``bench_hot_paths`` / ``bench_service`` / ``bench_cluster``)
and records throughput plus latency quantiles pulled from the cell's own
:class:`~repro.obs.registry.MetricsRegistry`:

* ``hist_dc`` / ``hist_dvo`` / ``hist_dado`` -- batched ``insert_many``
  into each histogram class at the same memory budget;
* ``wal_off`` / ``wal_on`` / ``wal_fsync`` -- the service pipeline-ingest
  body with durability off, WAL on, and WAL + fsync-per-batch;
* ``batch_64`` / ``batch_256`` (plus ``wal_off`` as the 1024 point) --
  pipeline ``max_batch`` sweep;
* ``shards_1`` / ``shards_2`` / ``shards_4`` -- the cluster scatter-gather
  scaling body over the emulated per-shard apply engine;
* ``spawned_shards_1`` / ``spawned_shards_4`` -- the same body against REAL
  worker processes spawned by the shard supervisor, reached over the
  persistent binary transport (the only cells where CPU-bound ingest can
  scale past one core);
* ``rf_1`` / ``rf_2`` / ``rf_3`` -- replication-factor sweep: the same
  scatter batch fanned out at N-way replication;
* ``read_locked_single`` / ``read_published_single`` -- single-node read
  ablation under sustained ingest: the pre-RCU locked read path vs the
  lock-free published-snapshot path on one store;
* ``read_qps_shards_1`` / ``read_qps_shards_4`` -- read QPS under ingest
  through the coordinator over the emulated per-shard serve engines.

The emitted JSON (one file per host) is **schema-versioned** and stamped
with a host fingerprint (python version, numpy version, CPU count); derived
ratios (``wal_overhead``, ``fsync_overhead``, ``batch_scaling``,
``shard_scaling``, ``spawned_scaling``, ``rf_cost``,
``read_unlock_speedup``, ``read_scaling``) make the ablation readable at a
glance.

``--gate`` diffs the current run against the committed baseline for this
host's fingerprint (``benchmarks/baselines/<fingerprint>.json``) within
per-metric tolerance bands and exits non-zero on regression, printing a
delta table that names the offending cell.  On a host with no matching
baseline the gate **skips with a visible notice** instead of failing, so CI
runs on unpinned hardware stay green while still uploading their matrix
JSON as an artifact.

``--profile`` attaches the stdlib sampling profiler
(:class:`repro.obs.profile.SamplingProfiler`) to every cell and embeds its
collapsed hot-path attribution in the cell's JSON; a separate
``profiler_overhead`` section always measures the sampler's cost on one
cell (target: instrumented throughput >= 0.95x uninstrumented).

Run directly::

    python benchmarks/matrix.py --smoke --gate       # CI shape
    python benchmarks/matrix.py --write-baseline     # refresh the baseline
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import threading
import time
from typing import Any, Callable

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import bench_cluster  # noqa: E402
import bench_hot_paths  # noqa: E402
import bench_service  # noqa: E402

from repro.obs import (  # noqa: E402
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    PhaseTimer,
    SamplingProfiler,
)
from repro.service import DurabilityConfig, HistogramStore, IngestPipeline  # noqa: E402

SCHEMA_VERSION = 1

BASELINE_DIR = pathlib.Path(__file__).resolve().parent / "baselines"
DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_matrix.json"

#: Latency quantiles every cell reports (upper-bound estimates from the
#: fixed metric buckets -- see ``Distribution.quantiles``).
QUANTILES = (0.5, 0.9, 0.99)

#: Per-metric tolerance bands for the regression gate.  ``min_ratio`` guards
#: throughput-like metrics (current/baseline must stay above it); ``max_ratio``
#: guards latency-like metrics.  The bands are deliberately wide: matrix cells
#: run on shared single-core CI hosts where ordinary scheduling noise moves
#: throughput tens of percent between runs, and the gate's job is to catch a
#: 2x-class regression (ratio 0.5 < 0.55), not a 10% wobble.
GATE_BANDS: dict[str, dict[str, float]] = {
    "ops_per_sec": {"min_ratio": 0.55},
    "latency_p99_s": {"max_ratio": 4.0, "floor": 0.005},
}


# ----------------------------------------------------------------------
# host fingerprint
# ----------------------------------------------------------------------
def host_fingerprint() -> dict[str, Any]:
    return {
        "python": sys.version.split()[0],
        "numpy": str(np.__version__),
        "cpu_count": os.cpu_count() or 1,
    }


def fingerprint_id(fingerprint: dict[str, Any] | None = None) -> str:
    fp = fingerprint if fingerprint is not None else host_fingerprint()
    return f"py{fp['python']}-np{fp['numpy']}-cpu{fp['cpu_count']}"


# ----------------------------------------------------------------------
# cell bodies -- each returns {"ops_per_sec": ..., "latency_*": ...,
# "detail": {...}} and flips exactly one knob of a shared workload
# ----------------------------------------------------------------------
def _quantile_block(registry: MetricsRegistry, metric: str, **labels: str) -> dict:
    dist = registry.get(metric)
    values = dist.quantiles(QUANTILES, **labels)
    return {
        f"latency_p{int(q * 100)}_s": round(value, 6)
        for q, value in zip(QUANTILES, values, strict=True)
    }


def run_histogram_cell(config: dict, sizes: dict) -> dict:
    """Batched inserts into one histogram class (knob: the class)."""
    from repro.core import build_dynamic_histogram

    n_values = sizes["hist_values"]
    values = bench_hot_paths.insert_stream(n_values)
    batch = 1024
    registry = MetricsRegistry()
    lat = registry.distribution(
        "matrix_hist_batch_seconds",
        "Per-batch insert_many latency inside one matrix cell",
        LATENCY_BUCKETS_S,
    )

    def run() -> None:
        histogram = build_dynamic_histogram(config["klass"], memory_kb=0.5)
        for start in range(0, n_values, batch):
            chunk = values[start : start + batch]
            t0 = time.perf_counter()
            histogram.insert_many(chunk, repartition_interval=16)
            lat.observe(time.perf_counter() - t0)

    best = float("inf")
    for _ in range(sizes["repeats"]):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return {
        "ops_per_sec": round(n_values / best, 1),
        **_quantile_block(registry, "matrix_hist_batch_seconds"),
        "detail": {"histogram": config["klass"], "values": n_values, "batch": batch},
    }


def run_service_cell(config: dict, sizes: dict) -> dict:
    """The bench_service pipeline-ingest body (knobs: WAL mode, max_batch)."""
    n_values = sizes["service_values"]
    max_batch = config.get("max_batch", 1024)
    wal = config.get("wal", "off")  # off | on | fsync
    stream = bench_service.ingest_stream(n_values, seed=33)

    def run(wal_dir: str | None) -> MetricsRegistry:
        registry = MetricsRegistry()
        durability = None
        if wal_dir is not None:
            durability = DurabilityConfig(wal_dir, fsync=(wal == "fsync"))
        store = HistogramStore(durability=durability, metrics=registry)
        for name, kind in bench_service.ATTRIBUTE_MIX:
            store.create(name, kind, memory_kb=0.5)
        pipeline = IngestPipeline(
            store, max_batch=max_batch, repartition_interval=64, metrics=registry
        )
        with pipeline:
            submit = pipeline.submit
            for name, value in stream:
                submit(name, (value,))
        bench_service._check_conservation(store, n_values)
        store.close()
        return registry

    best = float("inf")
    registry = MetricsRegistry()
    for _ in range(sizes["repeats"]):
        if wal == "off":
            t0 = time.perf_counter()
            registry = run(None)
            elapsed = time.perf_counter() - t0
        else:
            with tempfile.TemporaryDirectory(prefix="repro-matrix-wal-") as wal_dir:
                t0 = time.perf_counter()
                registry = run(wal_dir)
                elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return {
        "ops_per_sec": round(n_values / best, 1),
        **_quantile_block(registry, "repro_store_op_seconds", op="insert"),
        "detail": {"wal": wal, "max_batch": max_batch, "values": n_values},
    }


def run_cluster_scaling_cell(config: dict, sizes: dict) -> dict:
    """The bench_cluster scatter-gather body (knob: shard count)."""
    registry = MetricsRegistry()
    result = bench_cluster.run_scaling_config(
        config["shards"],
        sizes["cluster_calls"],
        sizes["catalog_chunk"],
        sizes["hot_chunk"],
        sizes["cluster_writers"],
        sizes["cluster_readers"],
        emulate_apply=True,
        metrics=registry,
    )
    quantiles = _quantile_block(registry, "repro_cluster_fanout_seconds", shard="shard-0")
    return {
        "ops_per_sec": result["ingest_per_sec"],
        **quantiles,
        "detail": {
            "shards": config["shards"],
            "ingested_values": result["ingested_values"],
            "queries_per_sec": result["queries_per_sec"],
        },
    }


def run_cluster_spawned_cell(config: dict, sizes: dict) -> dict:
    """The scatter-gather body against REAL spawned worker processes.

    Same workload as ``cluster_scaling`` with the emulated apply engine
    replaced by actual OS processes behind the binary transport (knob: how
    many).  On a multi-core host this is the cell where CPU-bound ingest
    scales; on one core it records the transport's honest overhead.
    """
    registry = MetricsRegistry()
    result = bench_cluster.run_scaling_config(
        config["shards"],
        sizes["spawned_calls"],
        sizes["catalog_chunk"],
        sizes["hot_chunk"],
        sizes["cluster_writers"],
        sizes["cluster_readers"],
        emulate_apply=False,
        factory=lambda n: bench_cluster.build_spawned_cluster(n, metrics=registry),
    )
    quantiles = _quantile_block(registry, "repro_cluster_fanout_seconds", shard="shard-0")
    return {
        "ops_per_sec": result["ingest_per_sec"],
        **quantiles,
        "detail": {
            "shards": config["shards"],
            "transport": "spawned processes, binary frames over persistent TCP",
            "host_cpu_count": os.cpu_count() or 1,
            "ingested_values": result["ingested_values"],
            "queries_per_sec": result["queries_per_sec"],
        },
    }


def run_cluster_rf_cell(config: dict, sizes: dict) -> dict:
    """Replication-factor sweep: one scatter batch stream at N-way replication.

    Three emulated-apply shards held constant; the knob is how many replicas
    every write fans out to, so the measured cost is pure replication fan-out.
    """
    from repro.cluster import ClusterCoordinator, LocalShard, ShardRouter

    factor = config["replication_factor"]
    n_calls = sizes["rf_calls"]
    chunk = sizes["rf_chunk"]
    registry = MetricsRegistry()
    shards = [
        LocalShard(
            f"shard-{index}",
            bench_cluster.EmulatedApplyStore(
                bench_cluster.APPLY_PER_BATCH_S, bench_cluster.APPLY_PER_VALUE_S
            ),
        )
        for index in range(3)
    ]
    router = ShardRouter(
        [shard.shard_id for shard in shards], replication_factor=factor
    )
    coordinator = ClusterCoordinator(
        shards, router=router, max_workers=16, metrics=registry
    )
    names = [name for name, _ in bench_cluster.ATTRIBUTE_MIX[:4]]
    for name in names:
        coordinator.create(name, "dc", memory_kb=0.5)
    rng = np.random.default_rng(7)
    calls = [
        {name: bench_cluster.stream_values(rng, chunk).tolist() for name in names}
        for _ in range(n_calls)
    ]
    t0 = time.perf_counter()
    for items in calls:
        coordinator.ingest_batch(items)
    elapsed = time.perf_counter() - t0
    ingested = n_calls * len(names) * chunk
    total = sum(coordinator.total_count(name) for name in names)
    if abs(total - ingested) > 1e-6 * ingested:
        raise AssertionError(f"rf cell lost values: {total} != {ingested}")
    coordinator.close()
    return {
        "ops_per_sec": round(ingested / elapsed, 1),
        **_quantile_block(registry, "repro_cluster_fanout_seconds", shard="shard-0"),
        "detail": {
            "replication_factor": factor,
            "shards": len(shards),
            "ingested_values": ingested,
        },
    }


def run_store_read_cell(config: dict, sizes: dict) -> dict:
    """Single-node read ablation under sustained ingest (knob: read path).

    One store, one hot attribute, writer threads inserting batches without
    pause for the whole window; reader threads tight-loop two-query estimate
    batches.  ``read_path: "published"`` serves from the store's lock-free
    published snapshot (the production ``query`` path); ``read_path:
    "locked"`` calls the retained ``_query_locked`` fallback, which queues
    behind every in-flight insert batch on the per-attribute lock -- the
    pre-RCU behaviour, kept callable precisely so this ablation stays
    honest.
    """
    locked = config["read_path"] == "locked"
    duration = sizes["read_duration_s"]
    # Enough writers that the per-attribute lock's wait queue never drains:
    # a locked reader then waits behind a convoy of insert batches (the
    # pre-RCU contention), while published readers only share the GIL.
    n_writers, n_readers = 4, 2
    registry = MetricsRegistry()
    lat = registry.distribution(
        "matrix_read_query_seconds",
        "Per-batch estimate-query latency inside one matrix read cell",
        LATENCY_BUCKETS_S,
    )
    store = HistogramStore(metrics=registry)
    store.create("hot", "dc", memory_kb=0.5)
    rng = np.random.default_rng(5)
    store.insert("hot", bench_cluster.stream_values(rng, 4_000).tolist())

    stop = threading.Event()
    errors: list = []
    written = [0] * n_writers
    served = [0] * n_readers
    chunk = sizes["read_write_chunk"]

    def writer(index: int) -> None:
        wrng = np.random.default_rng(100 + index)
        batches = [
            bench_cluster.stream_values(wrng, chunk).tolist() for _ in range(8)
        ]
        calls = 0
        try:
            while not stop.is_set():
                store.insert("hot", batches[calls % len(batches)])
                calls += 1
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)
        written[index] = calls * chunk

    def reader(index: int) -> None:
        rrng = np.random.default_rng(200 + index)
        lows = rrng.uniform(0.0, 4000.0, size=256)
        count = 0
        try:
            while not stop.is_set():
                low = float(lows[count % len(lows)])
                queries = [
                    {"op": "range", "low": low, "high": low + 500.0},
                    {"op": "total"},
                ]
                t0 = time.perf_counter()
                if locked:
                    store._query_locked("hot", queries)
                else:
                    store.query("hot", queries)
                lat.observe(time.perf_counter() - t0)
                count += 1
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)
        served[index] = count

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(n_writers)]
    threads += [threading.Thread(target=reader, args=(i,)) for i in range(n_readers)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"store read cell failed: {errors[0]!r}")
    expected = 4_000 + sum(written)
    total = store.total_count("hot")
    if abs(total - expected) > 1e-6 * expected:
        raise AssertionError(f"read cell lost values: {total} != {expected}")
    store.close()
    return {
        "ops_per_sec": round(sum(served) / elapsed, 1),
        **_quantile_block(registry, "matrix_read_query_seconds"),
        "detail": {
            "read_path": config["read_path"],
            "reads_served": int(sum(served)),
            "writer_values_per_sec": round(sum(written) / elapsed, 1),
            "duration_s": round(elapsed, 3),
        },
    }


def run_cluster_read_cell(config: dict, sizes: dict) -> dict:
    """The bench_cluster read-QPS-under-ingest body (knob: shard count)."""
    registry = MetricsRegistry()
    result = bench_cluster.run_read_qps_config(
        config["shards"],
        sizes["read_duration_s"],
        sizes["read_writers"],
        sizes["read_readers"],
        sizes["catalog_chunk"],
        sizes["hot_chunk"],
        metrics=registry,
    )
    quantiles = _quantile_block(registry, "repro_cluster_fanout_seconds", shard="shard-0")
    return {
        "ops_per_sec": result["read_qps"],
        **quantiles,
        "detail": {
            "shards": config["shards"],
            "reads_served": result["reads_served"],
            "ingest_per_sec_during_window": result["ingest_per_sec"],
            "duration_s": result["duration_s"],
        },
    }


#: The ablation matrix: cell name -> (runner kind, config).  Each config dict
#: flips exactly one knob relative to that kind's base cell.
CELLS: dict[str, dict[str, Any]] = {
    "hist_dc": {"kind": "histogram", "klass": "dc"},
    "hist_dvo": {"kind": "histogram", "klass": "dvo"},
    "hist_dado": {"kind": "histogram", "klass": "dado"},
    "wal_off": {"kind": "service", "wal": "off", "max_batch": 1024},
    "wal_on": {"kind": "service", "wal": "on", "max_batch": 1024},
    "wal_fsync": {"kind": "service", "wal": "fsync", "max_batch": 1024},
    "batch_64": {"kind": "service", "wal": "off", "max_batch": 64},
    "batch_256": {"kind": "service", "wal": "off", "max_batch": 256},
    "shards_1": {"kind": "cluster_scaling", "shards": 1},
    "shards_2": {"kind": "cluster_scaling", "shards": 2},
    "shards_4": {"kind": "cluster_scaling", "shards": 4},
    "spawned_shards_1": {"kind": "cluster_spawned", "shards": 1},
    "spawned_shards_4": {"kind": "cluster_spawned", "shards": 4},
    "rf_1": {"kind": "cluster_rf", "replication_factor": 1},
    "rf_2": {"kind": "cluster_rf", "replication_factor": 2},
    "rf_3": {"kind": "cluster_rf", "replication_factor": 3},
    "read_locked_single": {"kind": "store_read", "read_path": "locked"},
    "read_published_single": {"kind": "store_read", "read_path": "published"},
    "read_qps_shards_1": {"kind": "cluster_read", "shards": 1},
    "read_qps_shards_4": {"kind": "cluster_read", "shards": 4},
}

RUNNERS: dict[str, Callable[[dict, dict], dict]] = {
    "histogram": run_histogram_cell,
    "service": run_service_cell,
    "cluster_scaling": run_cluster_scaling_cell,
    "cluster_spawned": run_cluster_spawned_cell,
    "cluster_rf": run_cluster_rf_cell,
    "store_read": run_store_read_cell,
    "cluster_read": run_cluster_read_cell,
}

#: Derived ratios: name -> (numerator cell, denominator cell).  Each reads
#: ``ops_per_sec`` from two cells of the finished matrix.
DERIVED: dict[str, tuple[str, str]] = {
    "wal_overhead_on_vs_off": ("wal_on", "wal_off"),
    "fsync_overhead_vs_wal_on": ("wal_fsync", "wal_on"),
    "batch_scaling_1024_vs_64": ("wal_off", "batch_64"),
    "shard_scaling_4_vs_1": ("shards_4", "shards_1"),
    "spawned_scaling_4_vs_1": ("spawned_shards_4", "spawned_shards_1"),
    "rf_cost_3_vs_1": ("rf_3", "rf_1"),
    "read_unlock_speedup": ("read_published_single", "read_locked_single"),
    "read_scaling_4_vs_1": ("read_qps_shards_4", "read_qps_shards_1"),
}


def matrix_sizes(smoke: bool) -> dict[str, float]:
    if smoke:
        return {
            "hist_values": 20_000,
            "service_values": 6_000,
            "cluster_calls": 8,
            "catalog_chunk": 128,
            "hot_chunk": 512,
            "cluster_writers": 2,
            "cluster_readers": 1,
            "spawned_calls": 8,
            "rf_calls": 8,
            "rf_chunk": 256,
            "repeats": 2,
            "read_duration_s": 0.5,
            "read_write_chunk": 4_000,
            "read_writers": 2,
            "read_readers": 4,
        }
    return {
        "hist_values": 80_000,
        "service_values": 30_000,
        "cluster_calls": 32,
        "catalog_chunk": 256,
        "hot_chunk": 1024,
        "cluster_writers": 3,
        "cluster_readers": 2,
        "spawned_calls": 24,
        "rf_calls": 24,
        "rf_chunk": 512,
        "repeats": 3,
        "read_duration_s": 1.5,
        "read_write_chunk": 4_000,
        "read_writers": 2,
        "read_readers": 8,
    }


# ----------------------------------------------------------------------
# matrix runner
# ----------------------------------------------------------------------
def run_cell(
    name: str,
    sizes: dict,
    *,
    profile: bool = False,
    profile_interval_s: float = 0.005,
) -> dict:
    config = CELLS[name]
    runner = RUNNERS[config["kind"]]
    timer = PhaseTimer()
    profiler = SamplingProfiler(profile_interval_s) if profile else None
    if profiler is not None:
        profiler.start()
    try:
        with timer.phase("run"):
            result = runner(config, sizes)
    finally:
        if profiler is not None:
            profiler.stop()
    result["phases"] = timer.report()
    if profiler is not None:
        result["profile"] = profiler.attribution(top=8)
    return result


def bench_profiler_overhead(sizes: dict) -> dict:
    """The sampler's cost on one CPU-bound cell (target: >= 0.95x)."""
    plain = run_cell("hist_dc", sizes)
    profiled = run_cell("hist_dc", sizes, profile=True)
    ratio = profiled["ops_per_sec"] / plain["ops_per_sec"]
    return {
        "cell": "hist_dc",
        "uninstrumented_per_sec": plain["ops_per_sec"],
        "instrumented_per_sec": profiled["ops_per_sec"],
        "instrumented_over_plain_ratio": round(ratio, 3),
        "target_ratio": ">= 0.95",
        "profile_samples": profiled["profile"]["samples"],
    }


def run_matrix(
    *,
    smoke: bool,
    profile: bool = False,
    cells: list[str] | None = None,
    sizes: dict | None = None,
) -> dict:
    sizes = sizes if sizes is not None else matrix_sizes(smoke)
    selected = cells if cells is not None else list(CELLS)
    unknown = sorted(set(selected) - set(CELLS))
    if unknown:
        raise SystemExit(f"unknown matrix cells: {', '.join(unknown)}")
    results: dict[str, dict] = {}
    for name in selected:
        print(f"[matrix] running cell {name} ...", file=sys.stderr)
        results[name] = run_cell(name, sizes, profile=profile)
    derived = {}
    for ratio_name, (numerator, denominator) in DERIVED.items():
        if numerator in results and denominator in results:
            derived[ratio_name] = round(
                results[numerator]["ops_per_sec"]
                / results[denominator]["ops_per_sec"],
                3,
            )
    report: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "matrix",
        "smoke": bool(smoke),
        "fingerprint": host_fingerprint(),
        "fingerprint_id": fingerprint_id(),
        "cells": results,
        "derived": derived,
    }
    if cells is None:
        # The overhead section needs the full hist_dc cell; only meaningful
        # (and comparable) on complete runs.
        report["profiler_overhead"] = bench_profiler_overhead(sizes)
    return report


# ----------------------------------------------------------------------
# regression gate
# ----------------------------------------------------------------------
def gate_compare(current: dict, baseline: dict) -> tuple[list[dict], list[str]]:
    """Diff two matrix reports; returns (delta rows, failure descriptions).

    Every baseline cell must exist in the current run (a vanished cell is a
    regression by definition), and every gated metric must stay inside its
    band relative to the baseline value.
    """
    rows: list[dict] = []
    failures: list[str] = []
    for cell, base in baseline.get("cells", {}).items():
        cur = current.get("cells", {}).get(cell)
        if cur is None:
            failures.append(f"cell {cell}: present in baseline but missing from run")
            continue
        for metric, band in GATE_BANDS.items():
            base_value = base.get(metric)
            cur_value = cur.get(metric)
            if base_value is None or cur_value is None:
                continue
            floor = band.get("floor", 0.0)
            if "max_ratio" in band and base_value <= floor and cur_value <= floor:
                # Both sides below the noise floor: sub-bucket latencies on
                # a fast host carry no regression signal.
                rows.append(_delta_row(cell, metric, base_value, cur_value, band, "ok"))
                continue
            reference = max(base_value, floor) if "max_ratio" in band else base_value
            if reference == 0:
                continue
            ratio = cur_value / reference
            ok = True
            if "min_ratio" in band and ratio < band["min_ratio"]:
                ok = False
            if "max_ratio" in band and ratio > band["max_ratio"]:
                ok = False
            status = "ok" if ok else "FAIL"
            rows.append(_delta_row(cell, metric, base_value, cur_value, band, status))
            if not ok:
                bound = band.get("min_ratio", band.get("max_ratio"))
                kind = "min" if "min_ratio" in band else "max"
                failures.append(
                    f"cell {cell}: {metric} ratio {ratio:.3f} breaches "
                    f"{kind}_ratio {bound} (baseline {base_value}, current {cur_value})"
                )
    return rows, failures


def _delta_row(
    cell: str, metric: str, base: float, cur: float, band: dict, status: str
) -> dict:
    return {
        "cell": cell,
        "metric": metric,
        "baseline": base,
        "current": cur,
        "ratio": round(cur / base, 3) if base else None,
        "band": band,
        "status": status,
    }


def format_delta_table(rows: list[dict]) -> str:
    if not rows:
        return "(no comparable metrics)"
    header = ("cell", "metric", "baseline", "current", "ratio", "status")
    table = [header]
    for row in rows:
        table.append(
            (
                row["cell"],
                row["metric"],
                f"{row['baseline']:g}",
                f"{row['current']:g}",
                "n/a" if row["ratio"] is None else f"{row['ratio']:.3f}",
                row["status"],
            )
        )
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths, strict=True)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def run_gate(current: dict, baseline_dir: pathlib.Path) -> int:
    """Compare ``current`` against the committed baseline for this host.

    Returns the process exit code: 0 on pass or skip, 1 on regression.
    """
    baseline_path = baseline_dir / f"{current['fingerprint_id']}.json"
    if not baseline_path.exists():
        print(
            f"[matrix] GATE SKIPPED: no baseline for fingerprint "
            f"{current['fingerprint_id']!r} under {baseline_dir} -- matrix JSON "
            "recorded but not gated on this host",
            file=sys.stderr,
        )
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("schema_version") != current["schema_version"]:
        print(
            f"[matrix] GATE SKIPPED: baseline schema v{baseline.get('schema_version')}"
            f" != current v{current['schema_version']} -- rewrite the baseline",
            file=sys.stderr,
        )
        return 0
    if bool(baseline.get("smoke")) != bool(current.get("smoke")):
        print(
            "[matrix] GATE SKIPPED: baseline and current runs used different "
            "sizes (smoke flag mismatch)",
            file=sys.stderr,
        )
        return 0
    rows, failures = gate_compare(current, baseline)
    print(format_delta_table(rows), file=sys.stderr)
    if failures:
        print(f"\n[matrix] GATE FAILED ({len(failures)} regression(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\n[matrix] gate passed: all cells within tolerance", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="diff against the committed per-host baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="embed sampling-profiler attribution in every cell",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record this run as the baseline for this host's fingerprint",
    )
    parser.add_argument(
        "--baseline-dir", type=pathlib.Path, default=BASELINE_DIR,
        help="directory of per-fingerprint baseline JSON files",
    )
    parser.add_argument(
        "--cells", nargs="+", metavar="CELL",
        help=f"run only these cells (available: {', '.join(CELLS)})",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    report = run_matrix(smoke=args.smoke, profile=args.profile, cells=args.cells)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))

    if report.get("derived"):
        print("\n[matrix] derived ratios:", file=sys.stderr)
        for name, value in report["derived"].items():
            print(f"  {name}: {value}", file=sys.stderr)
    overhead = report.get("profiler_overhead")
    if overhead is not None:
        print(
            f"[matrix] sampling profiler overhead: "
            f"{overhead['instrumented_over_plain_ratio']:.3f}x uninstrumented "
            f"(target {overhead['target_ratio']})",
            file=sys.stderr,
        )

    if args.write_baseline:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        baseline_path = args.baseline_dir / f"{report['fingerprint_id']}.json"
        baseline_path.write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(f"[matrix] baseline written to {baseline_path}", file=sys.stderr)

    if args.gate:
        return run_gate(report, args.baseline_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
