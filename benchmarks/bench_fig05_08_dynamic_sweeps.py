"""Figures 5-8: dynamic histograms (DC, DADO, AC, DVO) under random insertions.

Each benchmark sweeps one parameter of the reference distribution -- the
centre skew S (Fig. 5), the size skew Z (Fig. 6), the intra-cluster deviation
SD (Fig. 7) and the memory budget (Fig. 8) -- replays the insert stream into
every dynamic histogram and reports the KS statistic against the exact data.

Expected shape (paper, Section 7.1): DADO is the most accurate across the
sweeps; DVO tracks it but is consistently worse; AC is worse than both despite
its backing sample; DC struggles most at intermediate skews.
"""

from repro.experiments import figures


def test_fig05_center_skew(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig05_center_skew(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"DC", "DADO", "AC", "DVO"}


def test_fig06_size_skew(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig06_size_skew(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"DC", "DADO", "AC", "DVO"}


def test_fig07_cluster_sd(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig07_cluster_sd(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"DC", "DADO", "AC", "DVO"}


def test_fig08_memory(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig08_memory(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    # More memory never hurts DADO much: the last point must not be worse than
    # the first.
    dado = result.series["DADO"]
    assert dado[-1] <= dado[0] + 0.01
