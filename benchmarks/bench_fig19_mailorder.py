"""Figure 19: real-world (mail-order) trace, error as a function of memory.

The proprietary trace is replaced by the synthetic spiky dollar-amount
distribution documented in DESIGN.md.  Expected shape (paper, Section 7.4):
DADO captures the outline of the distribution quickly at small memory but
needs considerably more memory to resolve the many spikes, so its error
declines more slowly than 1/n; AC remains the least accurate.
"""

from repro.experiments import figures


def test_fig19_mail_order(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig19_mail_order(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"AC", "DC", "DADO"}
    # The paper's observation: on this spiky trace the error of the dynamic
    # histograms declines much more slowly with memory than 1/n (it is nearly
    # flat here); it must at least not degrade as memory grows.
    dado = result.series["DADO"]
    assert dado[-1] <= dado[0] + 0.02
