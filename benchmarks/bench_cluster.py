"""Cluster benchmark: scatter-gather ingest scaling and merged-estimate accuracy.

Measures the sharding layer added by the cluster PR and records the
trajectory in ``BENCH_cluster.json``:

* **scatter-gather scaling** -- aggregate ingest throughput of the mixed
  catalog (8 attributes placed by consistent hashing) plus one hot
  range-partitioned attribute, at 1 / 2 / 4 shards, with concurrent reader
  threads served throughout.  Each shard's write-apply path is modelled as an
  independent single-threaded apply engine: one batch at a time per shard, at
  a fixed per-batch plus per-value cost held under the shard's apply lock.
  **The apply cost is emulated with a clock sleep** (defaults: 1 ms/batch +
  20 us/value, i.e. a ~50k values/sec apply engine, about what one
  StatisticsServer process sustains over HTTP): CI hosts may expose a single
  core, where no benchmark can demonstrate real CPU parallelism, while the
  quantity under test -- the coordinator's ability to keep N independent
  shard apply engines busy concurrently -- is exactly what the sleep
  emulation isolates.  The raw CPU-bound in-process numbers are recorded
  alongside for transparency (``local_cpu_bound``): on a single-core host
  they sit near 1.0x by construction; real CPU scaling requires
  ``RemoteShard`` process isolation on multi-core hardware.

* **spawned process shards** -- the same CPU-bound workload against REAL
  worker processes launched by the :class:`~repro.cluster.supervisor.\
ShardSupervisor` and reached over the persistent binary transport.  Unlike
  in-process shards (one interpreter, one GIL), each spawned shard applies
  batches on its own core, so on a multi-core host this section shows real
  CPU scaling (target >= 2.5x at 4 shards).  On a single-core host the
  honest number is ~1x -- the section records ``host_cpu_count`` so readers
  can tell which regime a given JSON was measured in.

* **merged-estimate accuracy** -- the hot attribute is range-partitioned over
  4 shards, queried through the coordinator's merged global histogram
  (superimpose + reduce, Section 8), and compared window by window against a
  single unsharded reference store fed the identical stream.  The section
  records the observed maximum deviation as a fraction of the total count and
  asserts it stays within the recorded error bound.

Both sections check that every submitted value is conserved.  Run directly:
``python benchmarks/bench_cluster.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import threading
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.cluster import ClusterCoordinator, LocalShard, ShardSupervisor  # noqa: E402
from repro.service import HistogramStore  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_cluster.json"

#: (name, kind) pairs: the mixed catalog, as a real system would hold.
ATTRIBUTE_MIX = [
    ("age", "dc"),
    ("price", "dc"),
    ("quantity", "dado"),
    ("score", "dvo"),
    ("weight", "dc"),
    ("rating", "dvo"),
    ("views", "dc"),
    ("clicks", "dado"),
]
HOT = "hot"
DOMAIN = (0.0, 5000.0)

#: Emulated shard apply engine: per-batch and per-value apply cost.  20 us per
#: value is a ~50k values/sec engine -- in the range one StatisticsServer
#: process sustains over HTTP with modest batches (34k/s at batch 32, 114k/s
#: at batch 128 on this class of host).
APPLY_PER_BATCH_S = 0.001
APPLY_PER_VALUE_S = 0.000020

#: Emulated shard serve engine: per-query cost on the read path.  200 us per
#: query is a ~5k queries/sec engine per shard -- one StatisticsServer process
#: answering small estimate batches over HTTP.  The serve lock is deliberately
#: SEPARATE from the apply lock: the store's read path is lock-free (published
#: snapshots, REP010), so a shard's reads never wait behind its writes; what
#: remains per-shard is the serving engine's own capacity, which is exactly
#: what this sleep models.
SERVE_PER_QUERY_S = 0.000200

#: Error bound the merged estimates must stay within (fraction of total).
MERGED_ERROR_BOUND = 0.02


class EmulatedApplyStore(HistogramStore):
    """A store whose write path behaves like a remote shard's apply engine.

    Writes serialise on one per-shard apply lock and pay the engine's
    per-batch + per-value cost (a clock sleep) before the real ``insert_many``
    runs.  When a per-query cost is configured, reads likewise serialise on a
    per-shard **serve** lock -- a different lock than the apply lock, because
    the store's read path is lock-free (published snapshots) and a real
    shard's reads never queue behind its apply engine.  This is the per-shard
    serialisation a real deployment has (each shard applies and serves on its
    own hardware) reduced to its timing skeleton, so shard-count scaling can
    be measured on any host.
    """

    def __init__(
        self, per_batch: float, per_value: float, per_query: float = 0.0, **kwargs
    ) -> None:
        super().__init__(**kwargs)
        self._apply_lock = threading.Lock()
        self._serve_lock = threading.Lock()
        self._per_batch = per_batch
        self._per_value = per_value
        self._per_query = per_query

    def insert(self, name, values, *, repartition_interval=None):
        values = list(values)
        with self._apply_lock:
            if self._per_batch or self._per_value:
                time.sleep(self._per_batch + self._per_value * len(values))
            return super().insert(name, values, repartition_interval=repartition_interval)

    def delete(self, name, values):
        values = list(values)
        with self._apply_lock:
            if self._per_batch or self._per_value:
                time.sleep(self._per_batch + self._per_value * len(values))
            return super().delete(name, values)

    def query(self, name, queries):
        if self._per_query:
            with self._serve_lock:
                time.sleep(self._per_query)
        return super().query(name, queries)


def _create_catalog(coordinator: ClusterCoordinator, n_shards: int) -> None:
    for index, (name, kind) in enumerate(ATTRIBUTE_MIX):
        # Deal the catalog round-robin via assignment overrides: the bench
        # measures scatter-gather scaling, which a skewed hash of only 8
        # names would confound (operators balance small catalogs the same
        # way; the hash ring is for populations, not samples of 8).
        coordinator.router.assign(name, f"shard-{index % n_shards}")
        coordinator.create(name, kind, memory_kb=0.5)
    low, high = DOMAIN
    boundaries = [low + (high - low) * piece / n_shards for piece in range(1, n_shards)]
    coordinator.create(HOT, "dc", memory_kb=0.5, partition_boundaries=boundaries)


def build_cluster(
    n_shards: int, *, emulate_apply: bool, emulate_serve: bool = False, metrics=None
) -> ClusterCoordinator:
    per_batch = APPLY_PER_BATCH_S if emulate_apply else 0.0
    per_value = APPLY_PER_VALUE_S if emulate_apply else 0.0
    per_query = SERVE_PER_QUERY_S if emulate_serve else 0.0
    shards = [
        LocalShard(f"shard-{index}", EmulatedApplyStore(per_batch, per_value, per_query))
        for index in range(n_shards)
    ]
    # A roomy fan-out pool so reader-side scatter calls (generation reads,
    # piece snapshots) never convoy behind in-flight write futures.
    coordinator = ClusterCoordinator(
        shards, global_buckets=64, max_workers=16, metrics=metrics
    )
    _create_catalog(coordinator, n_shards)
    return coordinator


def build_spawned_cluster(n_shards: int, *, metrics=None):
    """A fleet of REAL worker processes behind the binary transport.

    Returns ``(coordinator, cleanup)``: the cleanup callable tears down the
    coordinator (closing its persistent connection pools) and then the
    supervisor's worker processes.  No WAL: the section measures the
    transport + multi-process apply path, not disk.
    """
    supervisor = ShardSupervisor(n_shards)
    try:
        shards = supervisor.start()
        coordinator = ClusterCoordinator(
            shards, global_buckets=64, max_workers=16, metrics=metrics
        )
        _create_catalog(coordinator, n_shards)
    except BaseException:
        supervisor.close()
        raise

    def cleanup() -> None:
        coordinator.close()
        supervisor.close()

    return coordinator, cleanup


def stream_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """The paper's cluster-distributed shape (skewed centres + local noise)."""
    centres = rng.choice(np.arange(0, 5000, 250), size=n)
    return np.clip(centres + rng.integers(-40, 41, size=n), *DOMAIN).astype(float)


def _check_conservation(coordinator: ClusterCoordinator, expected: float) -> None:
    total = sum(
        coordinator.total_count(name) for name, _ in ATTRIBUTE_MIX
    ) + coordinator.total_count(HOT)
    if abs(total - expected) > 1e-6 * max(1.0, expected):
        raise AssertionError(f"ingest lost values: cluster holds {total}, expected {expected}")


# ----------------------------------------------------------------------
# section 1: scatter-gather scaling
# ----------------------------------------------------------------------
def run_scaling_config(
    n_shards: int,
    n_calls: int,
    catalog_chunk: int,
    hot_chunk: int,
    n_writers: int,
    n_readers: int,
    *,
    emulate_apply: bool,
    metrics=None,
    factory=None,
) -> dict:
    """One scaling data point.  ``factory(n_shards) -> (coordinator, cleanup)``
    overrides the default in-process emulated-apply cluster -- the spawned
    section passes :func:`build_spawned_cluster` so the identical workload
    body runs against real worker processes."""
    if factory is None:
        coordinator = build_cluster(
            n_shards, emulate_apply=emulate_apply, metrics=metrics
        )
        cleanup = coordinator.close
    else:
        coordinator, cleanup = factory(n_shards)
    calls_per_writer = n_calls // n_writers
    values_per_call = len(ATTRIBUTE_MIX) * catalog_chunk + hot_chunk
    queries_served = [0] * n_readers
    stop = threading.Event()
    errors: list = []

    # Value streams are generated before the clock starts: the benchmark
    # measures the cluster's ingest path, not numpy sampling.
    def make_calls(index: int):
        rng = np.random.default_rng(1000 + index)
        calls = []
        for _ in range(calls_per_writer):
            items = {
                name: stream_values(rng, catalog_chunk).tolist()
                for name, _ in ATTRIBUTE_MIX
            }
            items[HOT] = stream_values(rng, hot_chunk).tolist()
            calls.append(items)
        return calls

    prepared = [make_calls(index) for index in range(n_writers)]

    def writer(index: int) -> None:
        try:
            for items in prepared[index]:
                coordinator.ingest_batch(items)
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    def reader(index: int) -> None:
        rng = np.random.default_rng(2000 + index)
        served = 0
        try:
            while not stop.is_set():
                if served % 10 == 9:
                    # A merged-histogram read of the partitioned attribute
                    # (with writes in flight this is a full rebuild).
                    coordinator.query(HOT, [{"op": "total"}])
                else:
                    name = ATTRIBUTE_MIX[served % len(ATTRIBUTE_MIX)][0]
                    low = float(rng.uniform(0, 4000))
                    coordinator.query(
                        name,
                        [{"op": "range", "low": low, "high": low + 500.0}, {"op": "total"}],
                    )
                served += 1
                time.sleep(0.005)
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)
        queries_served[index] = served

    writers = [threading.Thread(target=writer, args=(i,)) for i in range(n_writers)]
    readers = [threading.Thread(target=reader, args=(i,)) for i in range(n_readers)]
    start = time.perf_counter()
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join()
    elapsed = time.perf_counter() - start
    stop.set()
    for thread in readers:
        thread.join()
    if errors:
        raise AssertionError(f"scaling run failed: {errors[0]!r}")

    ingested = calls_per_writer * n_writers * values_per_call
    _check_conservation(coordinator, ingested)
    cleanup()
    return {
        "shards": n_shards,
        "ingested_values": ingested,
        "elapsed_s": round(elapsed, 3),
        "ingest_per_sec": round(ingested / elapsed, 1),
        "queries_served_during_ingest": int(sum(queries_served)),
        "queries_per_sec": round(sum(queries_served) / elapsed, 1),
    }


#: Offered ingest load for the read-QPS cells, values/sec across all writers.
#: Fixed (writers pace themselves to it) rather than free-running: the cells
#: compare read capacity at 1 vs 4 shards, and a free-running write side would
#: ingest ~4x more at 4 shards -- stealing interpreter time from the readers
#: and confounding the comparison.  16k/s is ~40% of one emulated apply
#: engine, so the load is sustainable at every shard count under test.
READ_BENCH_INGEST_PER_S = 16_000.0


def run_read_qps_config(
    n_shards: int,
    duration_s: float,
    n_writers: int,
    n_readers: int,
    catalog_chunk: int,
    hot_chunk: int,
    *,
    target_ingest_per_sec: float = READ_BENCH_INGEST_PER_S,
    metrics=None,
) -> dict:
    """Read QPS under sustained ingest: the lock-free read path at scale.

    Duration-based (writers and readers both loop until the window closes):
    writers sustain a fixed offered ingest load while readers tight-loop
    estimate batches against the emulated serve engines.  The
    serve lock is independent of the apply lock -- exactly the property the
    published-snapshot read path buys -- so read capacity is N independent
    ~5k QPS serve engines, and the measured quantity is whether the
    coordinator keeps them all busy while ingest never stops.  A small slice
    of reads (1 in 32) is a merged-histogram read of the hot partitioned
    attribute, which exercises the coordinator's incremental merge
    maintenance against a constantly moving generation vector without
    letting the (deliberately expensive, serialised) merge rebuild drown
    the serve-engine scaling signal this cell measures.
    """
    coordinator = build_cluster(
        n_shards, emulate_apply=True, emulate_serve=True, metrics=metrics
    )
    rng = np.random.default_rng(11)
    seeded = 0
    for name, _ in ATTRIBUTE_MIX:
        values = stream_values(rng, 2000)
        coordinator.ingest(name, insert=values.tolist())
        seeded += len(values)
    hot_seed = stream_values(rng, 4000)
    coordinator.ingest(HOT, insert=hot_seed.tolist())
    seeded += len(hot_seed)

    stop = threading.Event()
    errors: list = []
    written = [0] * n_writers
    served = [0] * n_readers
    per_call = len(ATTRIBUTE_MIX) * catalog_chunk + hot_chunk

    # A small pre-generated pool per writer, cycled: the window measures the
    # cluster's ingest+serve paths, not numpy sampling.
    pools = []
    for index in range(n_writers):
        wrng = np.random.default_rng(1000 + index)
        pool = []
        for _ in range(8):
            items = {
                name: stream_values(wrng, catalog_chunk).tolist()
                for name, _ in ATTRIBUTE_MIX
            }
            items[HOT] = stream_values(wrng, hot_chunk).tolist()
            pool.append(items)
        pools.append(pool)

    # Each writer paces itself to its share of the offered load; falling
    # behind resets the deadline instead of bursting to catch up.
    call_interval = per_call / (target_ingest_per_sec / n_writers)

    def writer(index: int) -> None:
        calls = 0
        try:
            deadline = time.perf_counter()
            while not stop.is_set():
                coordinator.ingest_batch(pools[index][calls % len(pools[index])])
                calls += 1
                deadline += call_interval
                delay = deadline - time.perf_counter()
                if delay > 0:
                    stop.wait(delay)
                else:
                    deadline = time.perf_counter()
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)
        written[index] = calls * per_call

    def reader(index: int) -> None:
        rrng = np.random.default_rng(2000 + index)
        lows = rrng.uniform(0.0, 4000.0, size=256)
        count = 0
        try:
            while not stop.is_set():
                if count % 32 == 31:
                    coordinator.query(HOT, [{"op": "total"}])
                else:
                    name = ATTRIBUTE_MIX[(index + count) % len(ATTRIBUTE_MIX)][0]
                    low = float(lows[count % len(lows)])
                    coordinator.query(
                        name,
                        [{"op": "range", "low": low, "high": low + 500.0}, {"op": "total"}],
                    )
                count += 1
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)
        served[index] = count

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(n_writers)]
    threads += [threading.Thread(target=reader, args=(i,)) for i in range(n_readers)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration_s)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"read-qps run failed: {errors[0]!r}")

    _check_conservation(coordinator, seeded + sum(written))
    coordinator.close()
    return {
        "shards": n_shards,
        "duration_s": round(elapsed, 3),
        "reads_served": int(sum(served)),
        "read_qps": round(sum(served) / elapsed, 1),
        "ingested_values_during_window": int(sum(written)),
        "ingest_per_sec": round(sum(written) / elapsed, 1),
    }


def bench_scaling(n_calls: int, catalog_chunk: int, hot_chunk: int) -> dict:
    n_writers, n_readers = 3, 2
    configs = {
        str(n): run_scaling_config(
            n, n_calls, catalog_chunk, hot_chunk, n_writers, n_readers, emulate_apply=True
        )
        for n in (1, 2, 4)
    }
    scaling = round(configs["4"]["ingest_per_sec"] / configs["1"]["ingest_per_sec"], 2)
    return {
        "workload": (
            f"{n_calls} scatter-gather batches from {n_writers} writer threads: "
            f"{len(ATTRIBUTE_MIX)} hashed catalog attributes x {catalog_chunk} values "
            f"+ hot range-partitioned attribute x {hot_chunk} values per batch, "
            f"{n_readers} reader threads served throughout"
        ),
        "apply_engine": {
            "per_batch_ms": APPLY_PER_BATCH_S * 1e3,
            "per_value_us": APPLY_PER_VALUE_S * 1e6,
            "note": (
                "each shard applies one batch at a time at this emulated cost "
                "(a ~50k values/sec apply engine, like one StatisticsServer "
                "process over HTTP); emulation isolates coordinator fan-out "
                "from host core count -- see module docstring"
            ),
        },
        "per_shard_count": configs,
        "scaling_4_vs_1": scaling,
        "target": ">= 2.5x",
    }


def bench_local_cpu_bound(n_calls: int, catalog_chunk: int, hot_chunk: int) -> dict:
    """The same workload with zero emulated apply cost: pure-CPU shards."""
    configs = {
        str(n): run_scaling_config(
            n, n_calls, catalog_chunk, hot_chunk, 3, 1, emulate_apply=False
        )
        for n in (1, 4)
    }
    return {
        "per_shard_count": configs,
        "scaling_4_vs_1": round(
            configs["4"]["ingest_per_sec"] / configs["1"]["ingest_per_sec"], 2
        ),
        "note": (
            "in-process shards share one Python interpreter: CPU-bound ingest "
            "cannot scale with shard count on a single core (the GIL serialises "
            "it on any core count); recorded for transparency -- real CPU "
            "scaling needs process isolation on multi-core hosts (see the "
            "spawned_process_shards section)"
        ),
    }


def bench_spawned_cpu_bound(n_calls: int, catalog_chunk: int, hot_chunk: int) -> dict:
    """The CPU-bound workload against REAL spawned worker processes.

    Each shard is its own OS process (own interpreter, own GIL) reached over
    the persistent binary transport, so this is the one section where
    CPU-bound ingest can genuinely scale with shard count -- if the host has
    the cores.  ``host_cpu_count`` is recorded precisely because the >= 2.5x
    target is only meaningful on a host with >= 4 cores; on one core the
    spawned processes time-slice a single CPU and the honest ratio is ~1x
    (minus transport overhead).
    """
    cpu_count = os.cpu_count() or 1
    configs = {
        str(n): run_scaling_config(
            n,
            n_calls,
            catalog_chunk,
            hot_chunk,
            3,
            1,
            emulate_apply=False,
            factory=build_spawned_cluster,
        )
        for n in (1, 4)
    }
    scaling = round(
        configs["4"]["ingest_per_sec"] / configs["1"]["ingest_per_sec"], 2
    )
    return {
        "transport": (
            "persistent TCP connections, length-prefixed binary frames "
            "(magic+length+crc32+JSON, the WAL framing discipline)"
        ),
        "host_cpu_count": cpu_count,
        "per_shard_count": configs,
        "scaling_4_vs_1": scaling,
        "target": ">= 2.5x on a host with >= 4 cores",
        "note": (
            f"measured on a {cpu_count}-core host: "
            + (
                "expect real CPU scaling at 4 shards"
                if cpu_count >= 4
                else "4 worker processes time-slice the available core(s), so "
                "the ratio reflects transport + scheduling overhead, not the "
                "parallel apply capacity a multi-core host would show"
            )
        ),
    }


# ----------------------------------------------------------------------
# section 2: merged-estimate accuracy
# ----------------------------------------------------------------------
def bench_merged_accuracy(n_values: int, n_queries: int) -> dict:
    rng = np.random.default_rng(42)
    values = stream_values(rng, n_values)

    coordinator = build_cluster(4, emulate_apply=False)
    coordinator.ingest(HOT, insert=values.tolist())

    reference = HistogramStore()
    reference.create(HOT, "dc", memory_kb=0.5)
    reference.insert(HOT, values.tolist())

    total = float(len(values))
    lows = rng.uniform(DOMAIN[0], DOMAIN[1] - 100.0, size=n_queries)
    widths = rng.uniform(50.0, 2000.0, size=n_queries)
    vs_reference, merged_vs_exact, reference_vs_exact = [], [], []
    for low, width in zip(lows, widths, strict=True):
        high = min(low + width, DOMAIN[1])
        merged = coordinator.estimate_range(HOT, low, high)
        single = reference.estimate_range(HOT, low, high)
        exact = float(((values >= low) & (values <= high)).sum())
        vs_reference.append(abs(merged - single) / total)
        merged_vs_exact.append(abs(merged - exact) / total)
        reference_vs_exact.append(abs(single - exact) / total)
    coordinator.close()

    max_vs_reference = float(max(vs_reference))
    within = max_vs_reference <= MERGED_ERROR_BOUND
    result = {
        "workload": (
            f"{n_values} cluster-distributed values into the hot attribute, "
            f"range-partitioned over 4 shards vs one unsharded reference store; "
            f"{n_queries} random range windows"
        ),
        "recorded_error_bound_fraction_of_total": MERGED_ERROR_BOUND,
        "max_error_vs_unsharded_fraction_of_total": round(max_vs_reference, 6),
        "mean_error_vs_unsharded_fraction_of_total": round(
            float(np.mean(vs_reference)), 6
        ),
        "max_error_vs_exact_fraction_of_total": {
            "merged": round(float(max(merged_vs_exact)), 6),
            "unsharded_reference": round(float(max(reference_vs_exact)), 6),
        },
        "within_bound": within,
    }
    if not within:
        raise AssertionError(
            f"merged estimates drifted {max_vs_reference:.4f} of total from the "
            f"unsharded reference (bound {MERGED_ERROR_BOUND})"
        )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_calls, catalog_chunk, hot_chunk = 12, 128, 512
        cpu_calls = 12
        n_accuracy, n_queries = 20_000, 25
    else:
        n_calls, catalog_chunk, hot_chunk = 48, 256, 1024
        cpu_calls = 24
        n_accuracy, n_queries = 80_000, 50

    results = {
        "benchmark": "cluster",
        "smoke": bool(args.smoke),
        "python": sys.version.split()[0],
        "host_cpu_count": os.cpu_count() or 1,
        "sections": {
            "scatter_gather_scaling": bench_scaling(n_calls, catalog_chunk, hot_chunk),
            "local_cpu_bound": bench_local_cpu_bound(cpu_calls, catalog_chunk, hot_chunk),
            "spawned_process_shards": bench_spawned_cpu_bound(
                cpu_calls, catalog_chunk, hot_chunk
            ),
            "merged_estimate_accuracy": bench_merged_accuracy(n_accuracy, n_queries),
        },
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    scaling = results["sections"]["scatter_gather_scaling"]["scaling_4_vs_1"]
    spawned = results["sections"]["spawned_process_shards"]
    accuracy = results["sections"]["merged_estimate_accuracy"]
    print(
        f"\nscatter-gather ingest at 4 shards: {scaling:.2f}x the 1-shard aggregate "
        f"(target: >= 2.5x)\n"
        f"spawned-process ingest at 4 shards: {spawned['scaling_4_vs_1']:.2f}x the "
        f"1-shard aggregate on a {spawned['host_cpu_count']}-core host "
        f"(target: >= 2.5x with >= 4 cores)\n"
        f"merged estimates within {accuracy['max_error_vs_unsharded_fraction_of_total']:.4f} "
        f"of total vs unsharded reference "
        f"(bound: {accuracy['recorded_error_bound_fraction_of_total']})",
        file=sys.stderr,
    )
    if not args.smoke and scaling < 2.5:
        print("FAIL: scaling target missed", file=sys.stderr)
        return 1
    # The spawned-shard CPU-scaling target only binds where the hardware can
    # express it; a single-core host records its honest ~1x and passes.
    if not args.smoke and spawned["host_cpu_count"] >= 4 and spawned["scaling_4_vs_1"] < 2.5:
        print("FAIL: spawned-process scaling target missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
