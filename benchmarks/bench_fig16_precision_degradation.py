"""Figure 16: histogram precision as a function of the fraction of data loaded.

Data is inserted in sorted order; the KS statistic of DADO, AC and a static
Compressed histogram (rebuilt from scratch at every checkpoint) is measured
after 10%, 25%, ... of the stream.

Expected shape (paper, Section 7.2.1): the error grows while distinct values
keep appearing and then stabilises -- DADO reaches a stable plateau instead of
degrading without bound.
"""

from repro.experiments import figures


def test_fig16_precision_vs_inserted_fraction(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig16_precision_vs_inserted_fraction(figure_settings),
        rounds=1,
        iterations=1,
    )
    record_sweep(result)
    dado = result.series["DADO"]
    # Stabilisation: the final error must not be a large multiple of the error
    # at the midpoint of the load.
    midpoint = dado[len(dado) // 2]
    assert dado[-1] <= 3.0 * max(midpoint, 0.005)
