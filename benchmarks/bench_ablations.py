"""Ablation benchmarks for the design choices the paper calls out.

* Sub-bucket count (Section 4): two or three sub-buckets per DVO/DADO bucket
  perform comparably, finer subdivisions are worse.
* Chi-square threshold alpha_min (Section 3): DC is insensitive to the value
  as long as it is much smaller than 1.
* Split-merge trigger bound (Section 4): the paper's most aggressive choice is
  an upper bound of 0 on min delta phi; more negative bounds repartition less.
"""

from repro.experiments import figures


def test_ablation_sub_buckets(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.ablation_sub_buckets(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    series = result.series["DADO"]
    # Two and three sub-buckets are comparable (within a factor).
    assert series[1] <= 2.0 * series[0] + 0.01
    assert series[0] <= 2.0 * series[1] + 0.01


def test_ablation_alpha_min(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.ablation_alpha_min(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    series = result.series["DC"]
    # Insensitivity: the spread across thresholds stays small in absolute terms.
    assert max(series) - min(series) < 0.05


def test_ablation_repartition_threshold(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.ablation_repartition_threshold(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert len(result.series["DADO"]) == len(result.x_values)
