"""Hot-path throughput benchmark: array-native core + vectorised estimation.

Measures the serving-critical paths before and after the hot-path work and
records the trajectory in ``BENCH_hot_paths.json``:

* **sustained inserts/sec** into a DADO histogram -- "before" is a faithful
  in-repo replica of the seed maintenance (a standalone list-of-buckets
  implementation with per-insert border-list rebuilds and a full phi-cache
  recomputation after every split/merge/out-of-range borrow), "after" is the
  array-native incremental implementation, plus the batched ``insert_many``
  fast path;
* **range / equality estimates and cdf_many** against a built histogram --
  "before" replicates the seed's per-call Python loop over freshly
  materialised buckets, "after" is the live-array segment view's
  ``searchsorted`` paths, plus the vectorised batch API;
* **delete-heavy and mixed insert/delete runs** (the paper's Figure 17-18
  regime) -- "before" is the per-value ``delete()`` loop every layer used
  until PR 4, "after" is the batched ``delete_many`` binning pass.

Run directly (``python benchmarks/bench_hot_paths.py [--quick]``); it is not a
pytest benchmark because it must embed the *legacy* implementations to give a
stable before/after comparison regardless of the repo's current state.
"""

from __future__ import annotations

import argparse
import bisect
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.base import DynamicHistogram  # noqa: E402
from repro.core.bucket import Bucket  # noqa: E402
from repro.core.deviation import segments_phi  # noqa: E402
from repro.core.dynamic_vopt import DADOHistogram, _project_segments  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_hot_paths.json"


# ----------------------------------------------------------------------
# legacy (seed) reference implementation
# ----------------------------------------------------------------------
class _LegacyBucket:
    """The seed's mutable bucket: a value range with k sub-range counters."""

    __slots__ = ("left", "right", "counts")

    def __init__(self, left: float, right: float, counts: list[float]) -> None:
        self.left = left
        self.right = right
        self.counts = counts

    @property
    def count(self) -> float:
        return sum(self.counts)

    @property
    def is_point_mass(self) -> bool:
        return self.right == self.left

    def borders(self) -> list[float]:
        k = len(self.counts)
        if self.is_point_mass or k == 1:
            return [self.left, self.right]
        step = (self.right - self.left) / k
        return [self.left + i * step for i in range(k)] + [self.right]

    def segments(self):
        if self.is_point_mass:
            return [(self.left, self.right, self.count)]
        borders = self.borders()
        return [
            (borders[i], borders[i + 1], self.counts[i])
            for i in range(len(self.counts))
        ]

    def sub_bucket_index(self, value: float) -> int:
        k = len(self.counts)
        if self.is_point_mass or k == 1:
            return 0
        position = (value - self.left) / (self.right - self.left)
        return max(0, min(int(position * k), k - 1))


class LegacyDADOHistogram(DynamicHistogram):
    """The seed's DADO maintenance strategy, for the "before" measurements.

    A faithful standalone replica of the pre-optimisation implementation: the
    bucket list is a list of Python objects, locating a bucket rebuilds the
    border list, phi goes through the generic :func:`segments_phi`, and every
    split / merge / out-of-range borrow recomputes *all* bucket and pair phis
    from scratch.  It reproduces the optimised implementation's split/merge
    decisions exactly (the equivalence guard below asserts identical buckets),
    so the before/after comparison isolates the data-structure work.
    """

    metric = "absolute"

    def __init__(self, n_buckets: int, *, sub_buckets: int = 2, value_unit: float = 1.0):
        self._budget = n_buckets
        self._k = sub_buckets
        self._value_unit = value_unit
        self._loading: dict[float, int] | None = {}
        self._buckets: list[_LegacyBucket] = []
        self._phis: list[float] = []
        self._pair_phis: list[float] = []
        self._repartition_count = 0

    # -- read ----------------------------------------------------------
    def buckets(self) -> list[Bucket]:
        if self._loading is not None:
            return [
                Bucket(value, value, float(count))
                for value, count in sorted(self._loading.items())
            ]
        result: list[Bucket] = []
        for bucket in self._buckets:
            width = bucket.right - bucket.left
            if 0 < width <= self._value_unit:
                snapped = round(bucket.left / self._value_unit) * self._value_unit
                result.append(Bucket(snapped, snapped, bucket.count))
                continue
            for left, right, count in bucket.segments():
                result.append(Bucket(left, right, count))
        return result

    # -- update --------------------------------------------------------
    def _insert(self, value: float) -> None:
        value = float(value)
        if self._loading is not None:
            self._loading[value] = self._loading.get(value, 0) + 1
            if len(self._loading) > self._budget:
                self._bootstrap()
            return
        if value < self._buckets[0].left or value > self._buckets[-1].right:
            self._insert_out_of_range(value)
            return
        index = self._locate_bucket(value)
        bucket = self._buckets[index]
        bucket.counts[bucket.sub_bucket_index(value)] += 1.0
        # Seed behaviour: an in-range insert refreshes only the touched
        # bucket's phi and its adjacent pairs (the full-table rebuilds are
        # reserved for split / merge / resize / out-of-range borrow).
        self._refresh_bucket(index)
        self._maybe_repartition()

    def _delete(self, value: float) -> None:  # pragma: no cover - not benchmarked
        raise NotImplementedError("the legacy replica only benchmarks inserts")

    def _bootstrap(self) -> None:
        items = sorted(self._loading.items())
        self._loading = None
        values = [value for value, _ in items]
        if len(values) == 1:
            only_value, only_count = items[0]
            self._buckets = [
                _LegacyBucket(only_value, only_value, [float(only_count)] + [0.0] * (self._k - 1))
            ]
        else:
            self._buckets = [
                _LegacyBucket(values[i], values[i + 1], [0.0] * self._k)
                for i in range(len(values) - 1)
            ]
            for value, count in items:
                index = min(bisect.bisect_right(values, value) - 1, len(self._buckets) - 1)
                index = max(index, 0)
                bucket = self._buckets[index]
                bucket.counts[bucket.sub_bucket_index(value)] += float(count)
        self._rebuild_caches()

    def _locate_bucket(self, value: float) -> int:
        # Seed behaviour: the border list is rebuilt on every location.
        lefts = [bucket.left for bucket in self._buckets]
        index = bisect.bisect_right(lefts, value) - 1
        index = max(0, min(index, len(self._buckets) - 1))
        bucket = self._buckets[index]
        if value > bucket.right and index + 1 < len(self._buckets):
            next_bucket = self._buckets[index + 1]
            if abs(value - bucket.right) <= abs(next_bucket.left - value):
                self._resize_bucket(index, bucket.left, value)
            else:
                self._resize_bucket(index + 1, value, next_bucket.right)
                return index + 1
        return index

    def _resize_bucket(self, index: int, new_left: float, new_right: float) -> None:
        bucket = self._buckets[index]
        resized = _LegacyBucket(new_left, new_right, [0.0] * self._k)
        resized.counts = _project_segments(bucket.segments(), resized.borders())
        self._buckets[index] = resized
        self._rebuild_caches()

    def _insert_out_of_range(self, value: float) -> None:
        new_bucket = _LegacyBucket(value, value, [1.0] + [0.0] * (self._k - 1))
        if value < self._buckets[0].left:
            self._buckets.insert(0, new_bucket)
        else:
            self._buckets.append(new_bucket)
        self._rebuild_caches()
        if len(self._buckets) > self._budget:
            merge_index = self._find_best_merge()
            if merge_index is not None:
                self._merge_pair(merge_index)
                self._repartition_count += 1

    def _bucket_phi(self, bucket: _LegacyBucket) -> float:
        return segments_phi(bucket.segments(), self.metric, value_unit=self._value_unit)

    def _merged_phi(self, first: _LegacyBucket, second: _LegacyBucket) -> float:
        return segments_phi(
            first.segments() + second.segments(), self.metric, value_unit=self._value_unit
        )

    def _rebuild_caches(self) -> None:
        # Seed behaviour: every structural change recomputes the full tables.
        self._phis = [self._bucket_phi(bucket) for bucket in self._buckets]
        self._pair_phis = [
            self._merged_phi(self._buckets[i], self._buckets[i + 1])
            for i in range(len(self._buckets) - 1)
        ]

    def _refresh_bucket(self, index: int) -> None:
        self._phis[index] = self._bucket_phi(self._buckets[index])
        if index > 0:
            self._pair_phis[index - 1] = self._merged_phi(
                self._buckets[index - 1], self._buckets[index]
            )
        if index < len(self._buckets) - 1:
            self._pair_phis[index] = self._merged_phi(
                self._buckets[index], self._buckets[index + 1]
            )

    def _find_best_split(self) -> int | None:
        best_index: int | None = None
        best_phi = 0.0
        for index, phi in enumerate(self._phis):
            if self._buckets[index].right - self._buckets[index].left <= self._value_unit:
                continue
            if phi > best_phi:
                best_phi = phi
                best_index = index
        return best_index

    def _find_best_merge(self, *, exclude: int | None = None) -> int | None:
        best_index: int | None = None
        best_phi = float("inf")
        for index, phi in enumerate(self._pair_phis):
            if exclude is not None and index in (exclude - 1, exclude):
                continue
            if phi < best_phi:
                best_phi = phi
                best_index = index
        return best_index

    def _maybe_repartition(self) -> None:
        if len(self._buckets) < 3:
            return
        split_index = self._find_best_split()
        if split_index is None:
            return
        merge_index = self._find_best_merge(exclude=split_index)
        if merge_index is None:
            return
        if self._pair_phis[merge_index] - self._phis[split_index] > 0.0:
            return
        if merge_index > split_index:
            self._merge_pair(merge_index)
            self._split_bucket(split_index)
        else:
            self._split_bucket(split_index)
            self._merge_pair(merge_index)
        self._repartition_count += 1

    def _merge_pair(self, index: int) -> None:
        first, second = self._buckets[index], self._buckets[index + 1]
        merged = _LegacyBucket(first.left, second.right, [0.0] * self._k)
        merged.counts = _project_segments(
            first.segments() + second.segments(), merged.borders()
        )
        self._buckets[index : index + 2] = [merged]
        self._rebuild_caches()

    def _split_bucket(self, index: int) -> None:
        bucket = self._buckets[index]
        if bucket.is_point_mass:
            return
        borders = bucket.borders()
        k = len(bucket.counts)
        total = bucket.count
        best_border_index = 1
        best_imbalance = float("inf")
        cumulative = 0.0
        for border_index in range(1, k):
            cumulative += bucket.counts[border_index - 1]
            imbalance = abs(cumulative - (total - cumulative))
            if imbalance < best_imbalance:
                best_imbalance = imbalance
                best_border_index = border_index
        split_value = borders[best_border_index]
        left_count = sum(bucket.counts[:best_border_index])
        right_count = total - left_count
        left_bucket = _LegacyBucket(bucket.left, split_value, [left_count / k] * k)
        right_bucket = _LegacyBucket(split_value, bucket.right, [right_count / k] * k)
        self._buckets[index : index + 1] = [left_bucket, right_bucket]
        self._rebuild_caches()


def legacy_estimate_range(histogram, low: float, high: float) -> float:
    """The seed's estimate_range: a Python loop over fresh Bucket objects."""
    if high < low:
        return 0.0
    return float(sum(bucket.count_in_range(low, high) for bucket in histogram.buckets()))


def legacy_estimate_equal(histogram, value: float) -> float:
    """The seed's equality estimate: a Python loop over fresh Bucket objects."""
    estimate = 0.0
    border_bucket = None
    interior_hit = False
    for bucket in histogram.buckets():
        if bucket.is_point_mass:
            if bucket.left == value:
                estimate += bucket.count
        elif bucket.left <= value < bucket.right:
            estimate += bucket.density * min(1.0, bucket.width)
            interior_hit = True
        elif value == bucket.right:
            border_bucket = bucket
    if border_bucket is not None and not interior_hit:
        estimate += border_bucket.density * min(1.0, border_bucket.width)
    return float(estimate)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def insert_stream(n: int, seed: int = 11) -> np.ndarray:
    """A skewed integer stream with occasional out-of-range excursions."""
    rng = np.random.default_rng(seed)
    clusters = rng.choice(np.arange(0, 5000, 250), size=n)
    noise = rng.integers(-40, 41, size=n)
    values = (clusters + noise).astype(float)
    # A slowly growing tail beyond the current maximum: exercises the
    # borrow-a-bucket path the way a timestamp-like attribute would.
    tail = rng.random(size=n) < 0.002
    values[tail] = 6000.0 + np.cumsum(tail)[tail] * 10.0
    return values


def range_queries(n: int, low: float, high: float, seed: int = 13):
    rng = np.random.default_rng(seed)
    lows = rng.uniform(low, high, size=n)
    widths = rng.uniform(0.0, (high - low) / 4.0, size=n)
    return lows, lows + widths


def _throughput(fn, n_ops: int, repeats: int = 3) -> float:
    """Best-of-N ops/sec for ``fn`` (which performs ``n_ops`` operations)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return n_ops / best


# ----------------------------------------------------------------------
# benchmark sections
# ----------------------------------------------------------------------
def bench_inserts(n_values: int, n_buckets: int) -> dict:
    values = insert_stream(n_values)

    def run_legacy():
        histogram = LegacyDADOHistogram(n_buckets)
        insert = histogram.insert
        for value in values:
            insert(value)
        return histogram

    def run_incremental():
        histogram = DADOHistogram(n_buckets)
        insert = histogram.insert
        for value in values:
            insert(value)
        return histogram

    def run_batched():
        histogram = DADOHistogram(n_buckets)
        histogram.insert_many(values, repartition_interval=16)
        return histogram

    # Equivalence guard: the array core must reproduce the seed estimates
    # exactly (same split/merge decisions, same buckets).
    legacy_hist = run_legacy()
    incremental_hist = run_incremental()
    legacy_buckets = [(b.left, b.right, b.count) for b in legacy_hist.buckets()]
    incremental_buckets = [
        (b.left, b.right, b.count) for b in incremental_hist.buckets()
    ]
    if legacy_buckets != incremental_buckets:
        raise AssertionError(
            "array-native maintenance diverged from the seed implementation"
        )

    before = _throughput(run_legacy, n_values)
    after = _throughput(run_incremental, n_values)
    batched = _throughput(run_batched, n_values)
    return {
        "workload": f"{n_values} skewed inserts into DADO({n_buckets})",
        "before_per_sec": round(before, 1),
        "after_per_sec": round(after, 1),
        "after_batched_per_sec": round(batched, 1),
        "speedup": round(after / before, 2),
        "speedup_batched": round(batched / before, 2),
    }


def bench_range_estimates(n_values: int, n_buckets: int, n_queries: int) -> dict:
    values = insert_stream(n_values)
    histogram = DADOHistogram(n_buckets)
    histogram.insert_many(values)
    lows, highs = range_queries(n_queries, float(values.min()), float(values.max()))

    # Equivalence guard: fast path must match the per-bucket loop.
    for low, high in zip(lows[:50], highs[:50], strict=True):
        fast = histogram.estimate_range(low, high)
        slow = legacy_estimate_range(histogram, low, high)
        if abs(fast - slow) > 1e-6 * max(1.0, abs(slow)):
            raise AssertionError(f"estimate_range diverged: {fast} vs {slow}")

    def run_legacy():
        for low, high in zip(lows, highs, strict=True):
            legacy_estimate_range(histogram, low, high)

    def run_fast():
        estimate = histogram.estimate_range
        for low, high in zip(lows, highs, strict=True):
            estimate(low, high)

    def run_vectorised():
        histogram.estimate_ranges(lows, highs)

    before = _throughput(run_legacy, n_queries)
    after = _throughput(run_fast, n_queries)
    batched = _throughput(run_vectorised, n_queries)
    return {
        "workload": (
            f"{n_queries} range estimates against DADO({n_buckets}) "
            f"built from {n_values} points"
        ),
        "before_per_sec": round(before, 1),
        "after_per_sec": round(after, 1),
        "after_vectorised_per_sec": round(batched, 1),
        "speedup": round(after / before, 2),
        "speedup_vectorised": round(batched / before, 2),
    }


def bench_equality_estimates(n_values: int, n_buckets: int, n_queries: int) -> dict:
    values = insert_stream(n_values)
    histogram = DADOHistogram(n_buckets)
    histogram.insert_many(values)
    rng = np.random.default_rng(7)
    points = rng.uniform(float(values.min()), float(values.max()), size=n_queries)

    for point in points[:50]:
        fast = histogram.estimate_equal(float(point))
        slow = legacy_estimate_equal(histogram, float(point))
        if abs(fast - slow) > 1e-6 * max(1.0, abs(slow)):
            raise AssertionError(f"estimate_equal diverged: {fast} vs {slow}")

    def run_legacy():
        for point in points:
            legacy_estimate_equal(histogram, float(point))

    def run_fast():
        estimate = histogram.estimate_equal
        for point in points:
            estimate(point)

    histogram.segment_view()  # warm the view for the "after" runs
    before = _throughput(run_legacy, n_queries)
    after = _throughput(run_fast, n_queries)
    return {
        "workload": f"{n_queries} equality estimates against DADO({n_buckets})",
        "before_per_sec": round(before, 1),
        "after_per_sec": round(after, 1),
        "speedup": round(after / before, 2),
    }


def bench_cdf(n_values: int, n_buckets: int, n_points: int) -> dict:
    values = insert_stream(n_values)
    histogram = DADOHistogram(n_buckets)
    histogram.insert_many(values)
    xs = np.linspace(float(values.min()) - 10, float(values.max()) + 10, n_points)

    def run_legacy():
        # Seed behaviour: every call re-materialises the bucket list and
        # accumulates one numpy pass per bucket.
        buckets = histogram.buckets()
        total = sum(bucket.count for bucket in buckets)
        cumulative = np.zeros(xs.shape, dtype=float)
        for bucket in buckets:
            if bucket.is_point_mass:
                cumulative += np.where(xs >= bucket.left, bucket.count, 0.0)
            else:
                fraction = np.clip((xs - bucket.left) / bucket.width, 0.0, 1.0)
                cumulative += bucket.count * fraction
        return cumulative / total

    def run_fast():
        histogram.cdf_many(xs)

    histogram.segment_view()  # warm the cache for the "after" runs
    before = _throughput(run_legacy, n_points)
    after = _throughput(run_fast, n_points)
    return {
        "workload": f"cdf_many over {n_points} points, DADO({n_buckets})",
        "before_per_sec": round(before, 1),
        "after_per_sec": round(after, 1),
        "speedup": round(after / before, 2),
    }


def _built_histogram(factory, values):
    histogram = factory()
    histogram.insert_many(values, repartition_interval=16)
    return histogram


def bench_deletes(n_values: int, n_buckets: int) -> dict:
    """Delete-heavy run (Figures 17-18): batched vs the per-value loop.

    "Before" is the per-value ``delete()`` loop that every layer (the service
    store included) used until the array core landed; "after" feeds the same
    shuffled stream of previously-inserted values through ``delete_many`` in
    service-sized batches.
    """
    from repro.core.dynamic_compressed import DCHistogram

    values = insert_stream(n_values)
    rng = np.random.default_rng(17)
    deletions = rng.permutation(values)[: n_values // 2]
    batch_size = 1024

    results = {}
    for label, factory in (
        ("dado", lambda: DADOHistogram(n_buckets)),
        ("dc", lambda: DCHistogram(n_buckets)),
    ):
        # Equivalence guard: batched deletes must match the per-value loop.
        per_value = _built_histogram(factory, values)
        batched = _built_histogram(factory, values)
        for value in deletions[:2000]:
            per_value.delete(float(value))
        batched.delete_many(deletions[:2000])
        a = [(b.left, b.right) for b in per_value.buckets()]
        b = [(b.left, b.right) for b in batched.buckets()]
        counts_a = [b_.count for b_ in per_value.buckets()]
        counts_b = [b_.count for b_ in batched.buckets()]
        if a != b or not np.allclose(counts_a, counts_b, rtol=1e-9, atol=1e-9):
            raise AssertionError(f"{label}: delete_many diverged from per-value deletes")

        def apply_per_value(histogram):
            delete = histogram.delete
            for value in deletions:
                delete(value)

        def apply_batched(histogram):
            for start in range(0, len(deletions), batch_size):
                histogram.delete_many(deletions[start : start + batch_size])

        n_deletions = len(deletions)

        def timed(apply, factory=factory):
            # Rebuild outside the timed window; time only the deletes.
            best = float("inf")
            for _ in range(3):
                histogram = _built_histogram(factory, values)
                start = time.perf_counter()
                apply(histogram)
                best = min(best, time.perf_counter() - start)
            return n_deletions / best

        before = timed(apply_per_value)
        after = timed(apply_batched)
        results[label] = {
            "workload": (
                f"{n_deletions} deletes (batches of {batch_size}) from "
                f"{label.upper()}({n_buckets}) built from {n_values} points"
            ),
            "before_per_value_per_sec": round(before, 1),
            "after_batched_per_sec": round(after, 1),
            "speedup_batched": round(after / before, 2),
        }
    return results


def bench_mixed_updates(n_values: int, n_buckets: int) -> dict:
    """Interleaved insert/delete runs, as an ingest pipeline flushes them."""
    values = insert_stream(n_values)
    rng = np.random.default_rng(19)
    run_size = 512
    # Alternate insert and delete runs over a sliding window of the stream so
    # deletes always target previously-inserted values.
    runs = []
    inserted = 0
    position = 0
    while position < n_values:
        chunk = values[position : position + run_size]
        runs.append(("insert", chunk))
        inserted += len(chunk)
        position += len(chunk)
        if inserted >= 2 * run_size:
            window = values[max(0, position - 2 * run_size) : position]
            runs.append(("delete", rng.permutation(window)[: run_size // 2]))

    def run_before():
        histogram = DADOHistogram(n_buckets)
        for kind, chunk in runs:
            if kind == "insert":
                histogram.insert_many(chunk, repartition_interval=16)
            else:
                delete = histogram.delete
                for value in chunk:
                    delete(value)

    def run_after():
        histogram = DADOHistogram(n_buckets)
        for kind, chunk in runs:
            if kind == "insert":
                histogram.insert_many(chunk, repartition_interval=16)
            else:
                histogram.delete_many(chunk)

    n_ops = sum(len(chunk) for _, chunk in runs)
    before = _throughput(run_before, n_ops)
    after = _throughput(run_after, n_ops)
    return {
        "workload": (
            f"{n_ops} interleaved ops ({run_size}-value insert runs, "
            f"{run_size // 2}-value delete runs) on DADO({n_buckets})"
        ),
        "before_per_sec": round(before, 1),
        "after_per_sec": round(after, 1),
        "speedup": round(after / before, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_insert, n_queries, n_cdf = 4_000, 2_000, 20_000
        n_buckets = 32
    else:
        n_insert, n_queries, n_cdf = 40_000, 10_000, 200_000
        n_buckets = 64

    results = {
        "benchmark": "hot_paths",
        "quick": bool(args.quick),
        "python": sys.version.split()[0],
        "sections": {
            "sustained_inserts": bench_inserts(n_insert, n_buckets),
            "range_estimates": bench_range_estimates(n_insert, n_buckets, n_queries),
            "equality_estimates": bench_equality_estimates(
                n_insert, n_buckets, n_queries
            ),
            "cdf_many": bench_cdf(n_insert, n_buckets, n_cdf),
            "delete_heavy": bench_deletes(n_insert, n_buckets),
            "mixed_updates": bench_mixed_updates(n_insert, n_buckets),
        },
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    inserts = results["sections"]["sustained_inserts"]["speedup"]
    ranges = results["sections"]["range_estimates"]["speedup"]
    deletes = results["sections"]["delete_heavy"]["dado"]["speedup_batched"]
    print(
        f"\nsustained inserts: {inserts:.2f}x, range estimates: {ranges:.2f}x, "
        f"batched deletes: {deletes:.2f}x (targets: >= 2x, >= 5x and >= 5x)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
