"""Hot-path throughput benchmark: incremental caches + vectorised estimation.

Measures the two serving-critical paths before and after the hot-path
overhaul and records the trajectory in ``BENCH_hot_paths.json``:

* **sustained inserts/sec** into a DADO histogram -- "before" is a faithful
  in-repo replica of the seed maintenance (per-insert border-list rebuild and
  full ``_rebuild_caches()`` after every split/merge/out-of-range borrow),
  "after" is the incremental implementation (cached ``_lefts`` array and
  O(1)-neighbourhood phi splices), plus the batched ``insert_many`` fast path;
* **range-estimates/sec** against a built histogram -- "before" replicates the
  seed's per-call Python loop over freshly materialised buckets, "after" is
  the cached segment view's ``searchsorted`` path, plus the vectorised batch
  API.

Run directly (``python benchmarks/bench_hot_paths.py [--quick]``); it is not a
pytest benchmark because it must embed the *legacy* implementations to give a
stable before/after comparison regardless of the repo's current state.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.bucket import Bucket  # noqa: E402
from repro.core.dynamic_vopt import DADOHistogram, _VBucket  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_hot_paths.json"


# ----------------------------------------------------------------------
# legacy (seed) reference implementations
# ----------------------------------------------------------------------
class LegacyDADOHistogram(DADOHistogram):
    """The seed's maintenance strategy, for the "before" measurements.

    Restores the seed behaviours the overhaul removed: a border list is
    rebuilt on every bucket location, every merge / split / out-of-range
    borrow recomputes *all* bucket and pair phis from scratch, and phi goes
    through the generic :func:`~repro.core.deviation.segments_phi` path
    (the service PR added an allocation-free specialisation for k=2).
    """

    def _bucket_phi(self, bucket):
        from repro.core.deviation import segments_phi

        return segments_phi(bucket.segments(), self.metric, value_unit=self._value_unit)

    def _merged_phi(self, first, second):
        from repro.core.deviation import segments_phi

        return segments_phi(
            first.segments() + second.segments(), self.metric, value_unit=self._value_unit
        )

    def _locate_bucket(self, value: float) -> int:
        import bisect

        lefts = [bucket.left for bucket in self._buckets]
        index = bisect.bisect_right(lefts, value) - 1
        index = max(0, min(index, len(self._buckets) - 1))
        bucket = self._buckets[index]
        if value > bucket.right and index + 1 < len(self._buckets):
            next_bucket = self._buckets[index + 1]
            if abs(value - bucket.right) <= abs(next_bucket.left - value):
                self._resize_bucket(index, bucket.left, value)
            else:
                self._resize_bucket(index + 1, value, next_bucket.right)
                return index + 1
        return index

    def _merge_pair(self, index: int) -> None:
        from repro.core.dynamic_vopt import _project_segments

        first, second = self._buckets[index], self._buckets[index + 1]
        merged = _VBucket(first.left, second.right, [0.0] * self._k)
        merged.counts = _project_segments(
            first.segments() + second.segments(), merged.borders()
        )
        self._buckets[index : index + 2] = [merged]
        self._rebuild_caches()

    def _split_bucket(self, index: int) -> None:
        bucket = self._buckets[index]
        if bucket.is_point_mass:
            return
        borders = bucket.borders()
        k = len(bucket.counts)
        total = bucket.count
        best_border_index = 1
        best_imbalance = float("inf")
        cumulative = 0.0
        for border_index in range(1, k):
            cumulative += bucket.counts[border_index - 1]
            imbalance = abs(cumulative - (total - cumulative))
            if imbalance < best_imbalance:
                best_imbalance = imbalance
                best_border_index = border_index
        split_value = borders[best_border_index]
        left_count = sum(bucket.counts[:best_border_index])
        right_count = total - left_count
        left_bucket = _VBucket(bucket.left, split_value, [left_count / k] * k)
        right_bucket = _VBucket(split_value, bucket.right, [right_count / k] * k)
        self._buckets[index : index + 1] = [left_bucket, right_bucket]
        self._rebuild_caches()

    def _insert_out_of_range(self, value: float) -> None:
        new_bucket = _VBucket(value, value, [1.0] + [0.0] * (self._k - 1))
        if value < self._buckets[0].left:
            self._buckets.insert(0, new_bucket)
        else:
            self._buckets.append(new_bucket)
        self._rebuild_caches()
        if len(self._buckets) > self._budget:
            merge_index = self._find_best_merge()
            if merge_index is not None:
                self._merge_pair(merge_index)
        self._repartition_count += 1


def legacy_estimate_range(histogram, low: float, high: float) -> float:
    """The seed's estimate_range: a Python loop over fresh Bucket objects."""
    if high < low:
        return 0.0
    return float(sum(bucket.count_in_range(low, high) for bucket in histogram.buckets()))


def legacy_total_count(histogram) -> float:
    return float(sum(bucket.count for bucket in histogram.buckets()))


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def insert_stream(n: int, seed: int = 11) -> np.ndarray:
    """A skewed integer stream with occasional out-of-range excursions."""
    rng = np.random.default_rng(seed)
    clusters = rng.choice(np.arange(0, 5000, 250), size=n)
    noise = rng.integers(-40, 41, size=n)
    values = (clusters + noise).astype(float)
    # A slowly growing tail beyond the current maximum: exercises the
    # borrow-a-bucket path the way a timestamp-like attribute would.
    tail = rng.random(size=n) < 0.002
    values[tail] = 6000.0 + np.cumsum(tail)[tail] * 10.0
    return values


def range_queries(n: int, low: float, high: float, seed: int = 13):
    rng = np.random.default_rng(seed)
    lows = rng.uniform(low, high, size=n)
    widths = rng.uniform(0.0, (high - low) / 4.0, size=n)
    return lows, lows + widths


def _throughput(fn, n_ops: int, repeats: int = 3) -> float:
    """Best-of-N ops/sec for ``fn`` (which performs ``n_ops`` operations)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return n_ops / best


# ----------------------------------------------------------------------
# benchmark sections
# ----------------------------------------------------------------------
def bench_inserts(n_values: int, n_buckets: int) -> dict:
    values = insert_stream(n_values)

    def run_legacy():
        histogram = LegacyDADOHistogram(n_buckets)
        insert = histogram.insert
        for value in values:
            insert(value)
        return histogram

    def run_incremental():
        histogram = DADOHistogram(n_buckets)
        insert = histogram.insert
        for value in values:
            insert(value)
        return histogram

    def run_batched():
        histogram = DADOHistogram(n_buckets)
        histogram.insert_many(values, repartition_interval=16)
        return histogram

    # Equivalence guard: the incremental caches must reproduce the seed
    # estimates exactly (same split/merge decisions, same buckets).
    legacy_hist = run_legacy()
    incremental_hist = run_incremental()
    legacy_buckets = [(b.left, b.right, b.count) for b in legacy_hist.buckets()]
    incremental_buckets = [
        (b.left, b.right, b.count) for b in incremental_hist.buckets()
    ]
    if legacy_buckets != incremental_buckets:
        raise AssertionError(
            "incremental maintenance diverged from the seed implementation"
        )

    before = _throughput(run_legacy, n_values)
    after = _throughput(run_incremental, n_values)
    batched = _throughput(run_batched, n_values)
    return {
        "workload": f"{n_values} skewed inserts into DADO({n_buckets})",
        "before_per_sec": round(before, 1),
        "after_per_sec": round(after, 1),
        "after_batched_per_sec": round(batched, 1),
        "speedup": round(after / before, 2),
        "speedup_batched": round(batched / before, 2),
    }


def bench_range_estimates(n_values: int, n_buckets: int, n_queries: int) -> dict:
    values = insert_stream(n_values)
    histogram = DADOHistogram(n_buckets)
    histogram.insert_many(values)
    lows, highs = range_queries(n_queries, float(values.min()), float(values.max()))

    # Equivalence guard: fast path must match the per-bucket loop.
    for low, high in zip(lows[:50], highs[:50]):
        fast = histogram.estimate_range(low, high)
        slow = legacy_estimate_range(histogram, low, high)
        if abs(fast - slow) > 1e-6 * max(1.0, abs(slow)):
            raise AssertionError(f"estimate_range diverged: {fast} vs {slow}")

    def run_legacy():
        for low, high in zip(lows, highs):
            legacy_estimate_range(histogram, low, high)

    def run_fast():
        estimate = histogram.estimate_range
        for low, high in zip(lows, highs):
            estimate(low, high)

    def run_vectorised():
        histogram.estimate_ranges(lows, highs)

    before = _throughput(run_legacy, n_queries)
    after = _throughput(run_fast, n_queries)
    batched = _throughput(run_vectorised, n_queries)
    return {
        "workload": (
            f"{n_queries} range estimates against DADO({n_buckets}) "
            f"built from {n_values} points"
        ),
        "before_per_sec": round(before, 1),
        "after_per_sec": round(after, 1),
        "after_vectorised_per_sec": round(batched, 1),
        "speedup": round(after / before, 2),
        "speedup_vectorised": round(batched / before, 2),
    }


def bench_cdf(n_values: int, n_buckets: int, n_points: int) -> dict:
    values = insert_stream(n_values)
    histogram = DADOHistogram(n_buckets)
    histogram.insert_many(values)
    xs = np.linspace(float(values.min()) - 10, float(values.max()) + 10, n_points)

    def run_legacy():
        # Seed behaviour: every call re-materialises the bucket list and
        # accumulates one numpy pass per bucket.
        buckets = histogram.buckets()
        total = sum(bucket.count for bucket in buckets)
        cumulative = np.zeros(xs.shape, dtype=float)
        for bucket in buckets:
            if bucket.is_point_mass:
                cumulative += np.where(xs >= bucket.left, bucket.count, 0.0)
            else:
                fraction = np.clip((xs - bucket.left) / bucket.width, 0.0, 1.0)
                cumulative += bucket.count * fraction
        return cumulative / total

    def run_fast():
        histogram.cdf_many(xs)

    histogram.segment_view()  # warm the cache for the "after" runs
    before = _throughput(run_legacy, n_points)
    after = _throughput(run_fast, n_points)
    return {
        "workload": f"cdf_many over {n_points} points, DADO({n_buckets})",
        "before_per_sec": round(before, 1),
        "after_per_sec": round(after, 1),
        "speedup": round(after / before, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_insert, n_queries, n_cdf = 4_000, 2_000, 20_000
        n_buckets = 32
    else:
        n_insert, n_queries, n_cdf = 40_000, 10_000, 200_000
        n_buckets = 64

    results = {
        "benchmark": "hot_paths",
        "quick": bool(args.quick),
        "python": sys.version.split()[0],
        "sections": {
            "sustained_inserts": bench_inserts(n_insert, n_buckets),
            "range_estimates": bench_range_estimates(n_insert, n_buckets, n_queries),
            "cdf_many": bench_cdf(n_insert, n_buckets, n_cdf),
        },
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    inserts = results["sections"]["sustained_inserts"]["speedup"]
    ranges = results["sections"]["range_estimates"]["speedup"]
    print(
        f"\nsustained inserts: {inserts:.2f}x, range estimates: {ranges:.2f}x "
        f"(targets: >= 2x and >= 5x)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
