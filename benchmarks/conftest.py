"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates one figure (or ablation) of the paper: it runs the
corresponding experiment from :mod:`repro.experiments.figures`, records the
sweep table, and reports the wall-clock time through pytest-benchmark.  The
tables are written to ``benchmarks/results/`` and echoed in the terminal
summary, so a plain ``pytest benchmarks/ --benchmark-only`` run shows the same
rows/series the paper plots.

Environment knobs
-----------------
``REPRO_BENCH_SCALE``
    Fraction of the paper's data volume (default 0.06).  Set to 1.0 to run the
    experiments at the paper's full 100,000-point scale.
``REPRO_BENCH_RUNS``
    Number of random seeds averaged per configuration (default 2; the paper
    uses 10).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import ExperimentSettings
from repro.experiments import format_sweep_table, sweep_to_csv
from repro.experiments.config import SweepResult

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Tables recorded during this session, echoed in the terminal summary.
_RECORDED_TABLES: list[str] = []


def _bench_settings() -> ExperimentSettings:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.06"))
    n_runs = int(os.environ.get("REPRO_BENCH_RUNS", "2"))
    return ExperimentSettings(scale=scale, n_runs=n_runs)


@pytest.fixture(scope="session")
def figure_settings() -> ExperimentSettings:
    """Experiment settings shared by all figure benchmarks."""
    return _bench_settings()


@pytest.fixture(scope="session")
def record_sweep():
    """Record a sweep result: persist table + CSV and echo it at session end."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result: SweepResult) -> SweepResult:
        table = format_sweep_table(result)
        _RECORDED_TABLES.append(table)
        (RESULTS_DIR / f"{result.name}.txt").write_text(table + "\n", encoding="utf-8")
        sweep_to_csv(result, path=str(RESULTS_DIR / f"{result.name}.csv"))
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # noqa: D103
    if not _RECORDED_TABLES:
        return
    terminalreporter.section("paper figure reproductions (KS statistic per algorithm)")
    for table in _RECORDED_TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
