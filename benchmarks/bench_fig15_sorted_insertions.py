"""Figure 15: dynamic histograms under sorted insertions.

Sorted insertions are harder for DADO and DC because the distribution of the
received points keeps shifting; the reservoir-based AC histogram is blind to
the input order.  The paper's conclusion -- reproduced here -- is that DADO's
accuracy degrades under sorted input but stays comparable to (or better than)
AC.
"""

from repro.experiments import figures


def test_fig15_sorted_insertions(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig15_sorted_insertions(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"DADO", "AC20X", "DC", "DVO"}
    # DADO stays in the same quality regime as AC under sorted input.
    assert result.mean("DADO") <= 2.0 * result.mean("AC20X") + 0.01
