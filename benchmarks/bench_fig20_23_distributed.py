"""Figures 20-23: global histograms in a shared-nothing environment.

Two strategies are compared while sweeping the histogram memory (Fig. 20), the
intra-site skew Z_Freq (Fig. 21), the number of sites (Fig. 22) and the skew in
site sizes Z_Site (Fig. 23):

* "histogram + union": per-site SSBM histograms, superimposed losslessly and
  reduced back to the memory budget with SSBM merging;
* "union + histogram": pool all the data and build one SSBM histogram.

Expected shape (paper, Section 8): the two alternatives produce histograms of
approximately the same quality across all four sweeps.
"""

from repro.experiments import figures

_SERIES = {"histogram + union", "union + histogram"}


def _assert_strategies_comparable(result):
    for index in range(len(result.x_values)):
        row = result.row(index)
        assert abs(row["histogram + union"] - row["union + histogram"]) < 0.12


def test_fig20_distributed_memory(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig20_distributed_memory(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == _SERIES
    _assert_strategies_comparable(result)


def test_fig21_distributed_intrasite_skew(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig21_distributed_intrasite_skew(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    _assert_strategies_comparable(result)


def test_fig22_distributed_site_count(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig22_distributed_site_count(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    _assert_strategies_comparable(result)


def test_fig23_distributed_site_size_skew(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig23_distributed_site_size_skew(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    _assert_strategies_comparable(result)
