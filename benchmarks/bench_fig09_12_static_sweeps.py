"""Figures 9-12: DADO against the best static histograms (SADO, SVO, SC, SSBM).

The paper fixes a smaller configuration (C = 50 clusters, SD = 1, 0.14 KB of
memory) and sweeps the centre skew, size skew, cluster width and memory.

Expected shape (paper, Section 7.1): the static V-Optimal family (SVO, SADO,
SSBM) and SC are the best; DADO comes close to its static counterpart and is
comparable to SC; SSBM is comparable to SVO at a fraction of the construction
cost.
"""

from repro.experiments import figures


def test_fig09_static_center_skew(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig09_static_center_skew(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"SADO", "SVO", "SC", "DADO", "SSBM"}


def test_fig10_static_size_skew(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig10_static_size_skew(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"SADO", "SVO", "SC", "DADO", "SSBM"}


def test_fig11_static_cluster_sd(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig11_static_cluster_sd(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"SADO", "SVO", "SC", "DADO", "SSBM"}


def test_fig12_static_memory(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig12_static_memory(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"SADO", "SVO", "SC", "DADO", "SSBM"}
