"""Figures 17 and 18: accuracy under heavy deletions.

Figure 17 deletes a growing random fraction of the data after random inserts;
Figure 18 does the same after *sorted* inserts (the hardest case the paper
identifies for DADO's closest-bucket spill policy).

Expected shape (paper, Section 7.3): random deletions barely hurt DADO, while
they degrade AC because the backing sample shrinks; after sorted inserts the
heavy-deletion end of the sweep is harder for DADO.
"""

from repro.experiments import figures


def test_fig17_random_deletions(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig17_random_deletions(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert set(result.series) == {"DADO", "AC"}
    # Random deletions do not blow up DADO's error.
    dado = result.series["DADO"]
    assert max(dado) <= max(5.0 * dado[0], 0.1)


def test_fig18_deletions_after_sorted_inserts(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig18_deletions_after_sorted_inserts(figure_settings),
        rounds=1,
        iterations=1,
    )
    record_sweep(result)
    assert set(result.series) == {"DADO", "AC"}
