"""Figure 14: sensitivity of the Approximate Compressed histogram to disk space.

AC histograms with backing samples worth 20x, 40x and 60x the main-memory
budget are compared against SC and DADO while sweeping the centre skew.

Expected shape (paper, Section 7.1): AC improves as the disk factor grows and
slowly converges towards SC, but remains worse than DADO even at 60x.
"""

from repro.experiments import figures


def test_fig14_ac_disk_space(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig14_ac_disk_space(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    assert {"AC20X", "AC40X", "AC60X", "SC", "DADO"} <= set(result.series)
    # A larger backing sample must not hurt on average.
    assert result.mean("AC60X") <= result.mean("AC20X") + 0.01
