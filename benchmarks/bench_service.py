"""Statistics service throughput benchmark: batched vs naive multi-attribute ingest.

Measures the serving layer added by the service PR and records the trajectory
in ``BENCH_service.json``:

* **naive per-value ingest** -- one ``HistogramStore.insert`` call per value
  with strict per-value maintenance (``repartition_interval=1``): every value
  pays a registry lookup, a lock round-trip, template-method dispatch and a
  maintenance check;
* **batched pipeline ingest** -- the same per-value submission stream routed
  through the :class:`~repro.service.ingest.IngestPipeline`, which buffers per
  attribute and flushes through the vectorised ``insert_many`` path with the
  store's maintenance batching interval;
* **concurrent serve** -- writer threads ingesting through the pipeline while
  reader threads run consistent estimate batches against the same store,
  reporting sustained combined throughput;
* **WAL overhead** -- the same batched pipeline ingest with the write-ahead
  log on (``DurabilityConfig``, no fsync) vs off, recording the durable /
  non-durable throughput ratio (target: durable sustains >= 0.5x) plus the
  log bytes written, and verifying that ``HistogramStore.recover`` restores
  the ingested catalog bit-identically;
* **metrics overhead** -- the same batched ingest plus an estimate sweep with
  the full observability layer on (store/pipeline metrics + a fraction=1.0
  accuracy shadow) vs off, recording the instrumented / uninstrumented
  throughput ratio (target: >= 0.95x) and the sampled selectivity error
  distribution (target: mean error <= 0.02).

Both ingest strategies are checked to conserve every submitted value.  Run
directly: ``python benchmarks/bench_service.py [--smoke]``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import threading
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.service import DurabilityConfig, HistogramStore, IngestPipeline  # noqa: E402
from repro.service.wal import WAL_FILE_NAME  # noqa: E402

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: (name, kind) pairs: a mixed catalog, as a real system would hold.
ATTRIBUTE_MIX = [
    ("age", "dc"),
    ("price", "dc"),
    ("quantity", "dado"),
    ("score", "dvo"),
]


def build_store() -> HistogramStore:
    store = HistogramStore()
    for name, kind in ATTRIBUTE_MIX:
        store.create(name, kind, memory_kb=0.5)
    return store


def ingest_stream(n: int, seed: int = 21):
    """Per-value (attribute, value) pairs round-robining over the catalog.

    Values follow the paper's cluster-distributed shape (skewed cluster
    centres plus local noise), the workload every figure experiment uses.
    """
    rng = np.random.default_rng(seed)
    centres = rng.choice(np.arange(0, 5000, 250), size=n)
    values = (centres + rng.integers(-40, 41, size=n)).astype(float)
    names = [ATTRIBUTE_MIX[i % len(ATTRIBUTE_MIX)][0] for i in range(n)]
    return list(zip(names, values, strict=True))


def _check_conservation(store: HistogramStore, n_values: int) -> None:
    total = sum(store.total_count(name) for name, _ in ATTRIBUTE_MIX)
    if abs(total - n_values) > 1e-6 * max(1.0, n_values):
        raise AssertionError(
            f"ingest lost values: store holds {total}, expected {n_values}"
        )


# ----------------------------------------------------------------------
# benchmark sections
# ----------------------------------------------------------------------
def bench_ingest(n_values: int, max_batch: int) -> dict:
    stream = ingest_stream(n_values)

    def run_naive() -> HistogramStore:
        store = build_store()
        insert = store.insert
        for name, value in stream:
            insert(name, (value,), repartition_interval=1)
        return store

    def run_batched() -> HistogramStore:
        store = build_store()
        pipeline = IngestPipeline(store, max_batch=max_batch, repartition_interval=64)
        with pipeline:
            submit = pipeline.submit
            for name, value in stream:
                submit(name, (value,))
        return store

    # Both strategies must conserve every submitted value.
    _check_conservation(run_naive(), n_values)
    _check_conservation(run_batched(), n_values)

    def throughput(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return n_values / best

    naive = throughput(run_naive)
    batched = throughput(run_batched)
    return {
        "workload": (
            f"{n_values} per-value ingests round-robined over "
            f"{len(ATTRIBUTE_MIX)} attributes ({'/'.join(k for _, k in ATTRIBUTE_MIX)})"
        ),
        "naive_per_value_per_sec": round(naive, 1),
        "batched_pipeline_per_sec": round(batched, 1),
        "max_batch": max_batch,
        "speedup": round(batched / naive, 2),
    }


def bench_wal_overhead(n_values: int, max_batch: int) -> dict:
    """Durable vs non-durable batched pipeline ingest on the mixed catalog."""
    stream = ingest_stream(n_values, seed=33)

    def run(durable: bool, wal_dir=None):
        store = HistogramStore(
            durability=DurabilityConfig(wal_dir) if durable else None
        )
        for name, kind in ATTRIBUTE_MIX:
            store.create(name, kind, memory_kb=0.5)
        with IngestPipeline(store, max_batch=max_batch, repartition_interval=64) as p:
            submit = p.submit
            for name, value in stream:
                submit(name, (value,))
        store.close()
        return store

    # Correctness first: the durable run conserves values and recovers
    # bit-identically from its log.
    with tempfile.TemporaryDirectory(prefix="repro-wal-bench-") as wal_dir:
        store = run(durable=True, wal_dir=wal_dir)
        _check_conservation(store, n_values)
        recovered = HistogramStore.recover(wal_dir)
        if recovered.snapshot_all() != store.snapshot_all():
            raise AssertionError("recovered store differs from the ingested one")
        recovered.close()
        wal_bytes = (pathlib.Path(wal_dir) / WAL_FILE_NAME).stat().st_size

    def throughput(durable: bool, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            with tempfile.TemporaryDirectory(prefix="repro-wal-bench-") as wal_dir:
                start = time.perf_counter()
                run(durable, wal_dir=wal_dir if durable else None)
                best = min(best, time.perf_counter() - start)
        return n_values / best

    plain = throughput(durable=False)
    durable = throughput(durable=True)
    return {
        "workload": (
            f"{n_values} per-value ingests round-robined over "
            f"{len(ATTRIBUTE_MIX)} attributes, batched pipeline, WAL on vs off"
        ),
        "batched_per_sec_wal_off": round(plain, 1),
        "batched_per_sec_wal_on": round(durable, 1),
        "durable_over_plain_ratio": round(durable / plain, 3),
        "target_ratio": ">= 0.5",
        "wal_bytes_written": int(wal_bytes),
        "fsync": False,
        "recover_bit_identical": True,
    }


def bench_metrics_overhead(n_values: int, max_batch: int) -> dict:
    """Instrumented vs uninstrumented batched ingest + estimate sweep.

    The whole observability layer (store op metrics, pipeline counters and
    an always-on accuracy shadow at ``fraction=1.0``) rides along on the
    instrumented run; the target is that it keeps >= 0.95x of the
    uninstrumented throughput.  The same run doubles as the accuracy-telemetry
    check: with an exact shadow, the sampled selectivity error distribution
    must stay within 0.02 on the paper's cluster workload.
    """
    from repro.obs import AccuracySampler, MetricsRegistry

    stream = ingest_stream(n_values, seed=55)
    query_names = [ATTRIBUTE_MIX[i % len(ATTRIBUTE_MIX)][0] for i in range(200)]
    #: Sampling fraction the timed runs use: the opt-in deployment shape
    #: (``--accuracy-sample``), where the exact shadow replays a few percent
    #: of estimate batches.  The accuracy *check* below runs fraction=1.0 so
    #: every query is verified, but that exhaustive mode is a verification
    #: tool, not the steady-state cost the overhead target is about.
    sample_fraction = 0.05

    def run(
        registry: MetricsRegistry | None, fraction: float = sample_fraction
    ) -> HistogramStore:
        sampler = (
            AccuracySampler(registry, fraction=fraction, max_values=2 * n_values)
            if registry is not None
            else None
        )
        store = HistogramStore(metrics=registry, accuracy_sampler=sampler)
        for name, kind in ATTRIBUTE_MIX:
            store.create(name, kind, memory_kb=0.5)
        pipeline = IngestPipeline(
            store, max_batch=max_batch, repartition_interval=64, metrics=registry
        )
        with pipeline:
            submit = pipeline.submit
            for name, value in stream:
                submit(name, (value,))
        rng = np.random.default_rng(77)
        for name in query_names:
            low = float(rng.uniform(0, 4000))
            store.query(
                name,
                [
                    {"op": "range", "low": low, "high": low + 300.0},
                    {"op": "selectivity", "low": low, "high": low + 300.0},
                    {"op": "total"},
                ],
            )
        return store

    # Correctness + accuracy telemetry first (exhaustive shadow), timing second.
    registry = MetricsRegistry()
    store = run(registry, fraction=1.0)
    _check_conservation(store, n_values)
    error_metric = registry.get("repro_estimate_selectivity_error")
    summaries = {
        name: error_metric.summary(attribute=name) for name, _ in ATTRIBUTE_MIX
    }
    checks = sum(summary["count"] for summary in summaries.values())
    worst = max(summary["max"] for summary in summaries.values())
    mean = (
        sum(summary["sum"] for summary in summaries.values()) / checks
        if checks
        else 0.0
    )
    if checks == 0:
        raise AssertionError("accuracy sampler observed no estimate errors")
    # Tail errors are the histograms' approximation error (0.5 KB budgets),
    # which the telemetry reports faithfully; the accuracy bar is the mean.
    if mean > 0.02:
        raise AssertionError(
            f"mean selectivity error {mean:.4f} exceeds the 0.02 accuracy target"
        )

    def throughput(instrumented: bool, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run(MetricsRegistry() if instrumented else None)
            best = min(best, time.perf_counter() - start)
        return n_values / best

    plain = throughput(instrumented=False)
    instrumented = throughput(instrumented=True)
    return {
        "workload": (
            f"{n_values} batched pipeline ingests + {len(query_names)} 3-op "
            f"estimate batches, full metrics + fraction={sample_fraction} "
            "accuracy sampling vs no instrumentation (accuracy checked "
            "separately at fraction=1.0)"
        ),
        "uninstrumented_per_sec": round(plain, 1),
        "instrumented_per_sec": round(instrumented, 1),
        "instrumented_over_plain_ratio": round(instrumented / plain, 3),
        "target_ratio": ">= 0.95",
        "accuracy_checks": int(checks),
        "selectivity_error_mean": round(mean, 5),
        "selectivity_error_max": round(worst, 5),
        "accuracy_target": "mean error <= 0.02",
    }


def bench_concurrent_serve(
    n_values: int, max_batch: int, n_writers: int, n_readers: int
) -> dict:
    store = build_store()
    per_writer = n_values // n_writers
    queries_served = [0] * n_readers
    stop = threading.Event()
    errors: list = []

    def writer(index: int, pipeline: IngestPipeline) -> None:
        rng = np.random.default_rng(100 + index)
        try:
            name = ATTRIBUTE_MIX[index % len(ATTRIBUTE_MIX)][0]
            centres = rng.choice(np.arange(0, 5000, 250), size=per_writer)
            values = (centres + rng.integers(-40, 41, size=per_writer)).astype(float)
            for value in values:
                pipeline.submit(name, (value,))
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    def reader(index: int) -> None:
        rng = np.random.default_rng(200 + index)
        served = 0
        try:
            while not stop.is_set():
                name = ATTRIBUTE_MIX[served % len(ATTRIBUTE_MIX)][0]
                low = float(rng.uniform(0, 1500))
                store.query(
                    name,
                    [
                        {"op": "range", "low": low, "high": low + 200.0},
                        {"op": "total"},
                    ],
                )
                served += 1
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)
        queries_served[index] = served

    start = time.perf_counter()
    with IngestPipeline(store, max_batch=max_batch, repartition_interval=64) as pipeline:
        writers = [
            threading.Thread(target=writer, args=(index, pipeline))
            for index in range(n_writers)
        ]
        readers = [
            threading.Thread(target=reader, args=(index,)) for index in range(n_readers)
        ]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
    ingest_elapsed = time.perf_counter() - start
    stop.set()
    for thread in readers:
        thread.join()

    if errors:
        raise AssertionError(f"concurrent serve failed: {errors[0]!r}")
    ingested = per_writer * n_writers
    _check_conservation(store, ingested)
    return {
        "workload": (
            f"{n_writers} writer threads ({ingested} values through the pipeline) "
            f"+ {n_readers} reader threads (consistent 2-op estimate batches)"
        ),
        "ingest_per_sec": round(ingested / ingest_elapsed, 1),
        "queries_per_sec": round(sum(queries_served) / ingest_elapsed, 1),
        "queries_served_during_ingest": int(sum(queries_served)),
        "note": (
            "queries_per_sec is reader-thread scheduling under GIL contention "
            "with the writers and varies several-fold between runs on small "
            "shared hosts; compare it only against same-host, same-file runs"
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUTPUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_ingest, max_batch = 6_000, 512
        n_concurrent, n_writers, n_readers = 8_000, 2, 1
    else:
        n_ingest, max_batch = 40_000, 1024
        n_concurrent, n_writers, n_readers = 60_000, 4, 2

    results = {
        "benchmark": "service",
        "smoke": bool(args.smoke),
        "python": sys.version.split()[0],
        "sections": {
            "multi_attribute_ingest": bench_ingest(n_ingest, max_batch),
            "concurrent_serve": bench_concurrent_serve(
                n_concurrent, max_batch, n_writers, n_readers
            ),
            "wal_overhead": bench_wal_overhead(n_ingest, max_batch),
            "metrics_overhead": bench_metrics_overhead(n_ingest, max_batch),
        },
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(results, indent=2))

    speedup = results["sections"]["multi_attribute_ingest"]["speedup"]
    print(
        f"\nbatched pipeline ingest: {speedup:.2f}x naive per-value (target: >= 5x)",
        file=sys.stderr,
    )
    ratio = results["sections"]["wal_overhead"]["durable_over_plain_ratio"]
    print(
        f"durable (WAL) batched ingest: {ratio:.3f}x non-durable (target: >= 0.5x)",
        file=sys.stderr,
    )
    metrics = results["sections"]["metrics_overhead"]
    print(
        f"instrumented ingest+query: {metrics['instrumented_over_plain_ratio']:.3f}x "
        "uninstrumented (target: >= 0.95x); selectivity error mean "
        f"{metrics['selectivity_error_mean']:.5f} (target: <= 0.02)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
