"""Figure 13: construction / maintenance cost of SVO, SSBM, SC and DADO.

The paper reports wall-clock construction times on its 1999 testbed; this
benchmark reports the times of this pure-Python implementation.  Absolute
numbers differ, but the *ordering* is the reproducible claim: the V-Optimal
dynamic program is by far the most expensive, SSBM and SC are cheap, and the
incremental DADO maintenance is in the same ballpark as the cheap static
builds (its cost is spread over the insertions).
"""

from repro.experiments import figures


def test_fig13_construction_time(benchmark, figure_settings, record_sweep):
    result = benchmark.pedantic(
        lambda: figures.fig13_construction_time(figure_settings), rounds=1, iterations=1
    )
    record_sweep(result)
    # The headline claim: SSBM is much cheaper to construct than SVO.
    assert sum(result.series["SSBM"]) < sum(result.series["SVO"])
    # SC (sort + quantiles) is also far cheaper than the SVO dynamic program.
    assert sum(result.series["SC"]) < sum(result.series["SVO"])
