#!/usr/bin/env python
"""Compare every histogram in the library on one evolving data set.

Builds the full line-up -- static baselines (Equi-Width, Equi-Depth, SC, SVO,
SADO, SSBM) and dynamic histograms (DC, DVO, DADO, AC) -- on the paper's
reference distribution, gives every algorithm the same memory, and prints a
leaderboard of KS statistics together with construction / maintenance times.

Run with::

    python examples/compare_histograms.py [memory_kb]
"""

from __future__ import annotations

import sys
import time

from repro import (
    DataDistribution,
    build_dynamic_histogram,
    build_static_histogram,
    generate_cluster_values,
    ks_statistic,
    random_insertions,
    reference_config,
)

STATIC_KINDS = ("equi_width", "equi_depth", "sc", "ssbm", "svo", "sado")
DYNAMIC_KINDS = ("dc", "dvo", "dado", "ac")


def main() -> None:
    memory_kb = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    config = reference_config(n_clusters=200, scale=0.05, seed=3)
    values = generate_cluster_values(config)
    truth = DataDistribution(values)
    stream = random_insertions(values, seed=3)
    print(
        f"data: {truth.total_count} points, {truth.distinct_count} distinct values; "
        f"memory budget: {memory_kb} KB\n"
    )

    rows = []
    for kind in STATIC_KINDS:
        start = time.perf_counter()
        histogram = build_static_histogram(kind, truth, memory_kb)
        elapsed = time.perf_counter() - start
        error = ks_statistic(truth, histogram, value_unit=1.0)
        rows.append((kind.upper(), "static", error, elapsed))

    for kind in DYNAMIC_KINDS:
        start = time.perf_counter()
        histogram = build_dynamic_histogram(kind, memory_kb, disk_factor=2.0, seed=3)
        live = DataDistribution()
        for op in stream:
            histogram.insert(op.value)
            live.add(op.value)
        elapsed = time.perf_counter() - start
        error = ks_statistic(live, histogram, value_unit=1.0)
        rows.append((kind.upper(), "dynamic", error, elapsed))

    rows.sort(key=lambda row: row[2])
    print(f"{'histogram':<12} {'kind':<8} {'KS statistic':>12} {'build/maintain [s]':>20}")
    print("-" * 56)
    for name, kind, error, elapsed in rows:
        print(f"{name:<12} {kind:<8} {error:>12.5f} {elapsed:>20.3f}")

    print(
        "\nExpected ordering (paper): the V-Optimal family and SC lead among static\n"
        "histograms, DADO is the best dynamic histogram and comes close to them,\n"
        "and Equi-Width trails everything."
    )


if __name__ == "__main__":
    main()
