#!/usr/bin/env python
"""Quickstart: maintain a dynamic histogram over an evolving data stream.

This example builds a DADO histogram (the paper's best dynamic histogram) with
1 KB of memory, feeds it an evolving stream of insertions and deletions drawn
from the paper's synthetic cluster distribution, and compares its accuracy
against the exact data at several points in time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DataDistribution,
    build_dynamic_histogram,
    generate_cluster_values,
    insertions_with_interleaved_deletions,
    ks_statistic,
    reference_config,
)


def main() -> None:
    # 1. Generate an evolving workload: the paper's reference distribution at a
    #    small scale, presented as random insertions with 25% interleaved
    #    random deletions (Section 7.3.1 of the paper).
    config = reference_config(scale=0.05, seed=42)
    values = generate_cluster_values(config)
    stream = insertions_with_interleaved_deletions(
        values, delete_probability=0.25, seed=42
    )
    print(f"workload: {stream.insert_count} insertions, {stream.delete_count} deletions")

    # 2. Build a Dynamic Average-Deviation Optimal histogram with 1 KB of
    #    memory.  The factory converts the memory budget into a bucket count
    #    using the paper's cost model (12 bytes per DADO bucket).
    histogram = build_dynamic_histogram("dado", memory_kb=1.0)
    print(f"DADO histogram with {histogram.bucket_budget} buckets in 1 KB")

    # 3. Replay the stream, keeping the exact distribution on the side so we
    #    can measure the approximation error as the data evolves.
    truth = DataDistribution()
    checkpoints = {len(stream) // 4, len(stream) // 2, len(stream) - 1}
    for index, op in enumerate(stream):
        if op.is_insert:
            histogram.insert(op.value)
            truth.add(op.value)
        else:
            histogram.delete(op.value)
            truth.remove(op.value)
        if index in checkpoints:
            error = ks_statistic(truth, histogram, value_unit=1.0)
            print(
                f"  after {index + 1:>6} updates: live tuples = {truth.total_count:>6}, "
                f"KS error = {error:.4f}"
            )

    # 4. Use the histogram the way a query optimizer would: estimate the
    #    selectivity of a range predicate and compare it with the exact answer.
    low, high = 1000, 2000
    estimated = histogram.estimate_selectivity(low, high)
    actual = truth.range_selectivity(low, high)
    print(f"selectivity of {low} <= X <= {high}: estimated {estimated:.4f}, actual {actual:.4f}")


if __name__ == "__main__":
    main()
