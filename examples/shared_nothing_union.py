#!/usr/bin/env python
"""Global histograms over a shared-nothing union of tables (Section 8).

A parallel database (or a federation of web sources) partitions one logical
table across several sites.  The coordinator needs a *global* histogram for
planning, but shipping all the data to build one is expensive.  This example
compares the two strategies the paper evaluates:

* ``histogram + union``: each site builds a small local SSBM histogram; the
  coordinator superimposes them (lossless) and reduces the result back to the
  memory budget;
* ``union + histogram``: the coordinator pools all raw data and builds a
  single SSBM histogram directly.

Run with::

    python examples/shared_nothing_union.py
"""

from __future__ import annotations

from repro import (
    GlobalHistogramCoordinator,
    GlobalStrategy,
    SiteGenerationConfig,
    generate_sites,
    ks_statistic,
    superimpose,
)

MEMORY_KB = 250.0 / 1024.0  # the paper's default: 250 bytes per histogram


def main() -> None:
    # 1. Generate five sites, each holding a Zipf-distributed slice of the
    #    global attribute range (the paper's Section 8 setup).
    config = SiteGenerationConfig(
        n_sites=5, total_points=25_000, intrasite_skew=1.0, site_size_skew=0.5, seed=7
    )
    sites = generate_sites(config)
    for site in sites:
        low, high = site.value_range
        print(
            f"site {site.site_id}: {site.size:>6} tuples over [{low:7.1f}, {high:7.1f}]"
        )

    coordinator = GlobalHistogramCoordinator(sites, MEMORY_KB)
    pooled = coordinator.pooled_data()
    print(f"\nglobal relation: {pooled.total_count} tuples, {pooled.distinct_count} distinct values")

    # 2. The lossless superposition of the local histograms: as precise as the
    #    members, but with many more buckets than the budget allows.
    local_histograms = [site.build_local_histogram(MEMORY_KB) for site in sites]
    union = superimpose(local_histograms)
    print(
        f"superimposed union histogram: {union.bucket_count} buckets "
        f"(budget per histogram is {local_histograms[0].bucket_count})"
    )
    print(f"  KS of the raw superposition: {ks_statistic(pooled, union, value_unit=1.0):.4f}")

    # 3. Compare the two strategies at the same memory budget.
    print("\nglobal histograms within the memory budget:")
    for strategy in GlobalStrategy:
        histogram = coordinator.build(strategy)
        error = ks_statistic(pooled, histogram, value_unit=1.0)
        print(f"  {strategy.value:<22} buckets = {histogram.bucket_count:>3}   KS = {error:.4f}")

    print(
        "\nBoth strategies land in the same quality regime (the paper's conclusion),\n"
        "so the cheap 'histogram + union' path -- which never moves raw data -- is the\n"
        "practical choice for a shared-nothing system."
    )


if __name__ == "__main__":
    main()
