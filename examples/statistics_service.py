#!/usr/bin/env python
"""Statistics service: a concurrent multi-attribute catalog over HTTP.

This example runs the full service stack in one process:

1. a :class:`~repro.service.store.HistogramStore` managing three attributes
   with different dynamic histogram classes,
2. an :class:`~repro.service.ingest.IngestPipeline` batching a simulated
   update stream into the vectorised ``insert_many`` path,
3. a :class:`~repro.service.server.StatisticsServer` (stdlib
   ``ThreadingHTTPServer``) exposing the JSON API, driven through the
   matching :class:`~repro.service.client.StatisticsClient`,
4. a snapshot/restore cycle, the catalog persistence a real optimizer
   would rely on across restarts,
5. write-ahead-log durability: a store that logs every mutation before
   applying it, "crashes", and is recovered bit-identically by
   ``HistogramStore.recover`` -- torn log tails included.

Run with::

    python examples/statistics_service.py

The same server can be started standalone with
``repro-experiments serve -a age:dc:1.0 -a price:dado:1.0 --wal-dir ./wal``
and inspected with ``repro-experiments store-stats``.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import (
    HistogramStore,
    IngestPipeline,
    StatisticsClient,
    StatisticsServer,
)
from repro.service import DurabilityConfig


def main() -> None:
    # 1. A store with one histogram per attribute, each 1 KB of memory.
    store = HistogramStore()
    store.create("age", "dc", memory_kb=1.0)
    store.create("price", "dado", memory_kb=1.0)
    store.create("quantity", "dvo", memory_kb=1.0)

    # 2. Stream updates through the batching pipeline: submissions arrive one
    #    value at a time (as an operational stream would), the pipeline
    #    buffers them per attribute and flushes 1024-value batches through
    #    insert_many.
    rng = np.random.default_rng(7)
    with IngestPipeline(store, max_batch=1024) as pipeline:
        for value in rng.normal(40, 12, 20_000):
            pipeline.submit("age", (float(value),))
        for value in rng.lognormal(3.0, 0.6, 20_000):
            pipeline.submit("price", (float(value),))
        for value in rng.integers(1, 50, 20_000):
            pipeline.submit("quantity", (float(value),))
    print("ingested:", {name: round(store.total_count(name)) for name in store.names()})

    # 3. Serve estimates over HTTP while more updates stream in.
    with StatisticsServer(store) as server:
        host, port = server.address
        client = StatisticsClient(host, port)
        print(f"server: http://{host}:{port}  health={client.health()['status']}")

        # A consistent batch: every result describes one histogram state.
        response = client.query(
            "age",
            [
                {"op": "total"},
                {"op": "range", "low": 30, "high": 50},
                {"op": "selectivity", "low": 30, "high": 50},
                {"op": "equal", "value": 40},
            ],
        )
        total, in_range, selectivity, equal = response["results"]
        print(
            f"age: total={total:.0f}, range[30,50]={in_range:.0f} "
            f"(selectivity {selectivity:.1%}), equal(40)={equal:.1f}"
        )

        # Updates over HTTP hit the same store the estimates come from.
        client.ingest("price", insert=[19.99] * 500)
        print(f"price total after HTTP ingest: {client.total_count('price'):.0f}")

        # 4. Snapshot one attribute, lose it, restore it -- catalog persistence.
        snapshot = client.snapshot("price")
        client.drop("price")
        client.restore("price", snapshot)
        print(f"price total after drop + restore: {client.total_count('price'):.0f}")

        for stats in store.stats_all():
            print(
                f"  {stats.name:<9} {stats.kind:<5} buckets={stats.bucket_count:<3} "
                f"gen={stats.generation:<3} repartitions={stats.repartition_count}"
            )

    # 5. Durability: every mutation is appended to a write-ahead log before
    #    it is applied, so a process crash loses nothing that was flushed.
    wal_dir = tempfile.mkdtemp(prefix="repro-wal-")
    durable = HistogramStore(durability=DurabilityConfig(wal_dir))
    durable.create("age", "dc", memory_kb=1.0)
    with IngestPipeline(durable, max_batch=1024) as pipeline:
        for value in rng.normal(40, 12, 10_000):
            pipeline.submit("age", (float(value),))
    durable.close()  # the process "crashes" here; only the WAL dir survives

    recovered = HistogramStore.recover(wal_dir)
    identical = recovered.snapshot_all() == durable.snapshot_all()
    print(
        f"recovered from WAL at {wal_dir}: total={recovered.total_count('age'):.0f}, "
        f"bit-identical={identical}"
    )


if __name__ == "__main__":
    main()
