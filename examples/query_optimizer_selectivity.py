#!/usr/bin/env python
"""Selectivity estimation for a query optimizer, with and without maintenance.

The motivation of the paper (Section 1): a query optimizer's cost estimates are
only as good as its statistics, and a *stale* static histogram on a changing
table silently degrades them.  This example simulates that situation on a
"orders" table whose dollar-amount column drifts over time (new promotions move
the popular price points), and compares three strategies:

* a static Compressed histogram built once and never refreshed (what most
  systems did at the time of the paper);
* the same static histogram rebuilt from scratch at the end (the expensive
  ideal);
* a DADO dynamic histogram maintained incrementally as the table changes.

Run with::

    python examples/query_optimizer_selectivity.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Between,
    CompressedHistogram,
    DataDistribution,
    MailOrderConfig,
    MemoryModel,
    SelectivityEstimator,
    build_dynamic_histogram,
    generate_mail_order_values,
    ks_statistic,
)
from repro.workloads import data_distributed_range_queries

MEMORY_KB = 1.0
VALUE_UNIT = 0.01  # dollar amounts have cent precision


def build_initial_table(seed: int) -> np.ndarray:
    """The orders table as it looks when statistics are first collected."""
    return generate_mail_order_values(MailOrderConfig(n_records=15_000, seed=seed))


def build_drifted_batch(seed: int) -> np.ndarray:
    """A later batch of orders with different popular price points."""
    config = MailOrderConfig(
        n_records=15_000,
        n_price_points=80,
        spike_fraction=0.6,
        body_median=120.0,  # the catalog moved up-market
        seed=seed,
    )
    return generate_mail_order_values(config)


def report(name: str, estimator: SelectivityEstimator, truth: DataDistribution) -> None:
    queries = data_distributed_range_queries(truth, 200, seed=7)
    errors = []
    for query in queries:
        result = estimator.report(Between(query.low, query.high), truth=truth)
        errors.append(abs(result.estimated_selectivity - result.true_selectivity))
    ks = ks_statistic(truth, estimator.histogram, value_unit=VALUE_UNIT)
    print(
        f"  {name:<28} KS = {ks:.4f}   "
        f"mean |selectivity error| = {np.mean(errors):.4f}   "
        f"max = {np.max(errors):.4f}"
    )


def main() -> None:
    initial = build_initial_table(seed=1)
    drifted = build_drifted_batch(seed=2)

    # The table starts with the initial orders; statistics are collected now.
    table = DataDistribution(initial)
    n_buckets = MemoryModel().buckets_for_kb("sc", MEMORY_KB)
    stale_static = CompressedHistogram.build(table, n_buckets, value_unit=VALUE_UNIT)

    dynamic = build_dynamic_histogram("dado", MEMORY_KB, value_unit=VALUE_UNIT)
    for value in initial:
        dynamic.insert(float(value))

    # The table evolves: half of the old orders are archived (deleted) and the
    # drifted batch arrives.  The static histogram is NOT rebuilt; the dynamic
    # histogram absorbs every change.
    rng = np.random.default_rng(3)
    archived = rng.choice(initial, size=len(initial) // 2, replace=False)
    for value in archived:
        table.remove(float(value))
        dynamic.delete(float(value))
    for value in drifted:
        table.add(float(value))
        dynamic.insert(float(value))

    fresh_static = CompressedHistogram.build(table, n_buckets, value_unit=VALUE_UNIT)

    print("estimation quality after the table has drifted:")
    report("stale static Compressed", SelectivityEstimator(stale_static, value_unit=VALUE_UNIT), table)
    report("DADO (maintained online)", SelectivityEstimator(dynamic, value_unit=VALUE_UNIT), table)
    report("rebuilt static Compressed", SelectivityEstimator(fresh_static, value_unit=VALUE_UNIT), table)
    print(
        "\nThe dynamic histogram tracks the drifted table almost as well as a full\n"
        "rebuild, without ever rescanning the data -- the stale histogram does not."
    )


if __name__ == "__main__":
    main()
