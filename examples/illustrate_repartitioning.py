#!/usr/bin/env python
"""Reproduce the paper's illustrative examples (Figures 1, 4 and 24) as text.

* Figure 1: how a DC histogram redistributes bucket borders so that all regular
  buckets carry the same count while the total stays fixed.
* Figure 4: a DADO split & merge -- the high-variance bucket is split at its
  sub-bucket border and the two most similar neighbours are merged.
* Figure 24: the same small data distribution summarised by an Equi-Depth and a
  V-Optimal histogram, showing how the partition constraint changes the buckets.

Run with::

    python examples/illustrate_repartitioning.py
"""

from __future__ import annotations

from repro import (
    DataDistribution,
    DCHistogram,
    DADOHistogram,
    EquiDepthHistogram,
    VOptimalHistogram,
)


def show(title: str, histogram) -> None:
    print(f"\n{title}")
    for bucket in histogram.buckets():
        if bucket.is_point_mass:
            print(f"  value {bucket.left:6.1f}            count {bucket.count:7.2f}  (singular)")
        else:
            print(
                f"  [{bucket.left:6.1f}, {bucket.right:6.1f})  count {bucket.count:7.2f}"
            )


def figure_1_dc_redistribution() -> None:
    print("=" * 72)
    print("Figure 1: DC bucket redistribution (equalising regular bucket counts)")
    histogram = DCHistogram(4, alpha_min=1e-3)
    # Load four seed points, then hammer one region so the counts diverge and
    # the Chi-square test forces a repartition.
    for value in (1, 4, 7, 10):
        histogram.insert(value)
    for _ in range(60):
        histogram.insert(5)
        histogram.insert(6)
    show(f"after {histogram.total_count:.0f} insertions "
         f"({histogram.repartition_count} repartitions)", histogram)
    counts = [bucket.count for bucket in histogram.buckets() if not bucket.is_point_mass]
    print(f"  regular bucket counts after redistribution: {[round(c, 1) for c in counts]}")


def figure_4_dado_split_merge() -> None:
    print("\n" + "=" * 72)
    print("Figure 4: DADO split & merge around a high-variance bucket")
    histogram = DADOHistogram(5)
    for value in (0, 2, 4, 6, 8, 10):
        histogram.insert(value)
    before = histogram.repartition_count
    # Pile points onto one spot: its bucket's sub-bucket counters diverge, the
    # bucket is split, and the two most similar neighbours are merged.
    for _ in range(40):
        histogram.insert(3)
    show(
        f"after inserting 40 copies of value 3 "
        f"({histogram.repartition_count - before} split-merge repartitions)",
        histogram,
    )


def figure_24_partition_constraints() -> None:
    print("\n" + "=" * 72)
    print("Figure 24: Equi-Depth vs V-Optimal buckets on the same distribution")
    data = DataDistribution.from_frequencies(
        [(1, 1), (2, 1), (3, 4), (4, 4), (5, 1), (6, 1), (7, 1), (8, 4), (9, 4), (10, 1)]
    )
    show("Equi-Depth (equal counts per bucket)", EquiDepthHistogram.build(data, 4))
    show("V-Optimal (minimal within-bucket frequency variance)", VOptimalHistogram.build(data, 4))


def main() -> None:
    figure_1_dc_redistribution()
    figure_4_dado_split_merge()
    figure_24_partition_constraints()


if __name__ == "__main__":
    main()
