#!/usr/bin/env python
"""Sharded statistics cluster: scatter-gather ingest and merged estimates.

This example runs a 4-shard cluster in one process and walks through every
cluster-level behaviour:

1. a :class:`~repro.cluster.coordinator.ClusterCoordinator` over four
   in-process :class:`~repro.cluster.protocol.LocalShard` members, with a
   mixed catalog placed by consistent hashing and one hot attribute
   *value-range partitioned* across all shards,
2. scatter-gather ingest -- per-attribute batches routed to home shards,
   the hot attribute split per value and fanned out concurrently,
3. merged global estimates for the partitioned attribute, built with the
   paper's Section 8 union operators (superimpose + reduce) and cached on
   the sum of the piece shards' generation counters,
4. a rebalance (snapshot/restore move) and a drain, the cluster's
   operational primitives,
5. the HTTP face: a :class:`~repro.cluster.server.ClusterServer` driven
   through the :class:`~repro.cluster.server.ClusterClient`,
6. N-way replication: a ``replication_factor=2`` cluster that keeps serving
   reads and writes with a shard killed, then heals the revived shard with
   ``resync`` (snapshot/restore from a live replica -- exactly-once by
   construction).

Run with::

    python examples/statistics_cluster.py

The same cluster can be started standalone with
``repro-experiments serve-cluster --shards 4 -a age:dc:1.0 -p hot:1250,2500,3750``
and inspected with ``repro-experiments cluster-stats``.
"""

from __future__ import annotations

import numpy as np

from repro import HistogramStore
from repro.cluster import ClusterClient, ClusterCoordinator, ClusterServer, LocalShard


def main() -> None:
    # 1. Four in-process shards behind one coordinator.
    shards = [LocalShard(f"shard-{index}") for index in range(4)]
    coordinator = ClusterCoordinator(shards, global_buckets=64)

    for name, kind in (("age", "dc"), ("price", "dado"), ("quantity", "dvo")):
        placed = coordinator.create(name, kind, memory_kb=1.0)
        print(f"created {name:<9} -> {placed['shard']} (consistent hashing)")

    # The hot attribute is split across all four shards by value range.
    created = coordinator.create(
        "hot", "dc", memory_kb=1.0, partition_boundaries=[1250.0, 2500.0, 3750.0]
    )
    print(f"created hot       -> range-partitioned over {created['partition']['shard_ids']}")

    # 2. Scatter-gather ingest: one concurrent stream per shard.
    rng = np.random.default_rng(7)
    hot_values = rng.uniform(0.0, 5000.0, 40_000)
    report = coordinator.ingest_batch(
        {
            "age": rng.normal(40.0, 12.0, 10_000).tolist(),
            "price": rng.lognormal(3.0, 0.6, 10_000).tolist(),
            "quantity": rng.integers(1, 50, 10_000).astype(float).tolist(),
            "hot": hot_values.tolist(),
        }
    )
    print(f"ingest_batch applied {report['inserted']} values: {report['per_shard']}")

    # 3. Merged global estimates: no single shard can answer these.
    reference = HistogramStore()
    reference.create("hot", "dc", memory_kb=1.0)
    reference.insert("hot", hot_values)
    for low, high in ((0.0, 5000.0), (1000.0, 3000.0), (2400.0, 2600.0)):
        merged = coordinator.estimate_range("hot", low, high)
        single = reference.estimate_range("hot", low, high)
        exact = float(((hot_values >= low) & (hot_values <= high)).sum())
        print(
            f"hot in [{low:6.0f}, {high:6.0f}]: merged={merged:9.1f}  "
            f"unsharded={single:9.1f}  exact={exact:9.0f}"
        )
    generation = coordinator.query("hot", [{"op": "total"}])["generation"]
    print(f"merge cache keyed on piece generation sum {generation} "
          "(rebuilt only after shard writes)")

    # 4. Rebalance: move an attribute, then drain a whole shard.
    home = coordinator.router.shard_for("age")
    target = next(s for s in coordinator.shard_ids if s != home)
    move = coordinator.rebalance("age", target)
    print(f"rebalanced age: {move['from']} -> {move['to']} "
          f"(total preserved: {coordinator.total_count('age'):.0f})")
    drained = coordinator.drain(move["to"])
    print(f"drained {move['to']}: moved {sorted(drained['moved'])} "
          f"(partitioned pieces stay: {drained['skipped_partitioned']})")

    # 5. The same cluster over HTTP.
    with ClusterServer(coordinator) as server:
        host, port = server.address
        client = ClusterClient(host, port)
        health = client.health()
        print(f"cluster server at http://{host}:{port}: "
              f"{health['shards']} shards, {health['attributes']} attributes")
        batch = client.query(
            "hot",
            [{"op": "total"}, {"op": "range", "low": 0, "high": 2500},
             {"op": "selectivity", "low": 0, "high": 2500}],
        )
        total, below, fraction = batch["results"]
        print(f"via HTTP: total={total:.0f}, range[0,2500]={below:.0f}, "
              f"selectivity={fraction:.3f} (merged={batch['merged']})")

    # 6. Replication + failover + resync: a fresh 3-shard cluster where every
    #    attribute lives on two shards.
    from repro.cluster import ShardRouter

    replicas = [LocalShard(f"replica-{index}") for index in range(3)]
    router = ShardRouter([s.shard_id for s in replicas], replication_factor=2)
    with ClusterCoordinator(replicas, router=router) as replicated:
        replicated.create("latency", "dc", memory_kb=1.0)
        replicated.ingest("latency", insert=rng.exponential(20.0, 20_000).tolist())
        primary_id, follower_id = replicated.router.replicas_for("latency")
        print(f"latency replicated on {primary_id} + {follower_id}")

        # Both replicas hold the full copy; reads prefer the primary and
        # fail over to the follower on ShardUnavailableError (an in-process
        # LocalShard cannot die -- tests/fault_injection.py scripts that).
        served = replicated.query("latency", [{"op": "total"}])
        per_replica = {
            sid: replicated.shard(sid).store.total_count("latency")
            for sid in (primary_id, follower_id)
        }
        print(f"total={served['results'][0]:.0f} served by {served['shard']}; "
              f"each replica holds the full copy: {per_replica}")

        # Heal-by-copy: resync re-seeds a shard's replicas from live siblings.
        report = replicated.resync(follower_id)
        print(f"resync {follower_id}: re-seeded {sorted(report['resynced'])} "
              f"from {sorted(set(report['resynced'].values()))}")


if __name__ == "__main__":
    main()
