"""Setuptools shim.

The build environment used for this reproduction has no ``wheel`` package and
no network access, so PEP 660 editable installs (which build a wheel) are not
available.  Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` code path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
