"""Approximate Compressed (AC) histogram of Gibbons, Matias and Poosala [10].

The AC histogram is the comparator the paper evaluates its dynamic histograms
against.  It couples two structures:

* a large *backing sample* (reservoir sample) notionally kept on disk, sized
  as a multiple of the in-memory budget (20x by default in the paper's
  experiments, varied in Figure 14); and
* a small in-memory approximate Compressed histogram over the sampled values,
  scaled up to the relation size.

Maintenance follows the ``gamma`` policy of [10]: bucket counts are allowed to
drift until one exceeds the threshold ``T = (2 + gamma) * N / B``; then the
histogram tries to split the offending bucket and merge the neighbouring pair
with the smallest combined count, and falls back to a full recomputation from
the backing sample when no such pair exists.  Setting ``gamma = -1`` (the
paper's choice, which gives the best accuracy and the worst speed) makes every
update trigger recomputation; this implementation performs those
recomputations lazily -- the histogram is rebuilt from the backing sample the
next time it is read after the sample has changed, which produces exactly the
same answers as eager recomputation.
"""

from __future__ import annotations


from .._validation import require_positive_int
from ..core.base import DynamicHistogram
from ..core.bucket import Bucket
from ..exceptions import DeletionError
from ..metrics.distribution import DataDistribution
from .backing_sample import BackingSample

__all__ = ["ApproximateCompressedHistogram"]


class ApproximateCompressedHistogram(DynamicHistogram):
    """Sampling-based Approximate Compressed histogram (the paper's "AC").

    Parameters
    ----------
    n_buckets:
        In-memory bucket budget.
    sample_size:
        Capacity of the backing sample (the disk budget), e.g. from
        :meth:`repro.core.memory.MemoryModel.backing_sample_size`.
    gamma:
        Split/merge slack parameter of [10]; ``-1`` (default) recomputes from
        the backing sample at every change of the sample, which is the paper's
        best-quality setting.
    seed:
        Seed of the backing sample's random generator.
    """

    def __init__(
        self,
        n_buckets: int,
        sample_size: int,
        *,
        gamma: float = -1.0,
        seed: int | None = 0,
    ) -> None:
        require_positive_int(n_buckets, "n_buckets")
        require_positive_int(sample_size, "sample_size")
        if gamma < -1.0:
            raise ValueError(f"gamma must be >= -1, got {gamma}")
        self._budget = n_buckets
        self._gamma = gamma
        self._backing = BackingSample(sample_size, seed=seed)

        self._buckets: list[Bucket] = []
        self._built_version = -1
        self._recompute_count = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def bucket_budget(self) -> int:
        return self._budget

    @property
    def gamma(self) -> float:
        return self._gamma

    @property
    def backing_sample(self) -> BackingSample:
        """The underlying backing sample (exposed for inspection and tests)."""
        return self._backing

    @property
    def recompute_count(self) -> int:
        """Number of full recomputations from the backing sample so far."""
        return self._recompute_count

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------
    def buckets(self) -> list[Bucket]:
        if self._gamma <= -1.0 or not self._buckets:
            self._refresh_if_needed()
        return list(self._buckets)

    # ------------------------------------------------------------------
    # update API
    # ------------------------------------------------------------------
    def _insert(self, value: float) -> None:
        value = float(value)
        self._backing.insert(value)
        if self._gamma <= -1.0:
            # Lazy recomputation: the histogram is rebuilt on next read.
            return
        if not self._buckets:
            self._rebuild_from_sample()
        if not self._buckets:
            return
        index = self._locate(value)
        bucket = self._buckets[index]
        left = min(bucket.left, value)
        right = max(bucket.right, value)
        self._buckets[index] = Bucket(left, right, bucket.count + 1.0)
        # Sum the bucket list directly: total_count would build a segment
        # view mid-mutation that the insert() template immediately discards.
        total = sum(bucket.count for bucket in self._buckets)
        threshold = (2.0 + self._gamma) * total / self._budget
        if self._buckets[index].count > threshold:
            self._split_and_merge(index, threshold)

    def _delete(self, value: float) -> None:
        value = float(value)
        self._backing.delete(value)
        if self._gamma <= -1.0:
            return
        if not self._buckets:
            self._rebuild_from_sample()
        if not self._buckets:
            return
        # Bucket counts are scaled sample counts and may be fractional; take
        # one unit of mass from the closest non-empty buckets.
        remaining = 1.0
        index = self._locate(value)
        order = sorted(
            range(len(self._buckets)),
            key=lambda i: min(
                abs(self._buckets[i].left - value), abs(self._buckets[i].right - value)
            ),
        )
        for candidate in [index] + order:
            if remaining <= 1e-12:
                break
            bucket = self._buckets[candidate]
            if bucket.count <= 0:
                continue
            taken = min(bucket.count, remaining)
            self._buckets[candidate] = bucket.with_count(bucket.count - taken)
            remaining -= taken
        if remaining > 1e-9:
            raise DeletionError("all buckets are empty; nothing to delete")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _refresh_if_needed(self) -> None:
        if self._built_version == self._backing.version:
            return
        self._rebuild_from_sample()

    def _rebuild_from_sample(self) -> None:
        """Recompute the in-memory histogram from the backing sample."""
        # Imported lazily to avoid a circular import at package load time.
        from ..static.compressed import CompressedHistogram

        sample_values = self._backing.values()
        self._built_version = self._backing.version
        self._recompute_count += 1
        if not sample_values:
            self._buckets = []
            return
        sample_distribution = DataDistribution(sample_values)
        sample_histogram = CompressedHistogram.build(sample_distribution, self._budget)
        scale = self._backing.scale_factor
        self._buckets = [
            bucket.with_count(bucket.count * scale) for bucket in sample_histogram.buckets()
        ]

    def _locate(self, value: float) -> int:
        """Index of the bucket responsible for ``value`` (closest if outside)."""
        for index, bucket in enumerate(self._buckets):
            if bucket.left <= value <= bucket.right:
                return index
        distances = [
            min(abs(value - bucket.left), abs(value - bucket.right))
            for bucket in self._buckets
        ]
        return distances.index(min(distances))

    def _split_and_merge(self, index: int, threshold: float) -> None:
        """Split an overflowing bucket if a cheap neighbouring merge exists."""
        best_pair = None
        best_count = float("inf")
        for pair_index in range(len(self._buckets) - 1):
            if pair_index in (index - 1, index):
                continue
            combined = self._buckets[pair_index].count + self._buckets[pair_index + 1].count
            if combined < best_count:
                best_count = combined
                best_pair = pair_index
        if best_pair is None or best_count > threshold:
            self._rebuild_from_sample()
            return

        bucket = self._buckets[index]
        midpoint = (bucket.left + bucket.right) / 2.0
        first_half = Bucket(bucket.left, midpoint, bucket.count / 2.0)
        second_half = Bucket(midpoint, bucket.right, bucket.count / 2.0)

        left_of_pair = self._buckets[best_pair]
        right_of_pair = self._buckets[best_pair + 1]
        merged = Bucket(left_of_pair.left, right_of_pair.right, best_count)

        rebuilt: list[Bucket] = []
        for i, existing in enumerate(self._buckets):
            if i == index:
                rebuilt.extend([first_half, second_half])
            elif i == best_pair:
                rebuilt.append(merged)
            elif i == best_pair + 1:
                continue
            else:
                rebuilt.append(existing)
        rebuilt.sort(key=lambda b: (b.left, b.right))
        self._buckets = rebuilt
