"""The backing sample of the Approximate Histograms of Gibbons et al. [10].

The backing sample is a reservoir sample of the relation that is kept on disk
(it is allowed to be much larger than the in-memory histogram; the paper gives
it twenty times the histogram's memory by default).  Insertions feed the
reservoir; deletions remove the tuple from the sample if it happens to be
sampled, and when deletions have shrunk the sample below a low-water mark the
relation is rescanned to refill it.

In this reproduction the "relation on disk" is simulated by an in-memory
multiset of the live tuples, which is exactly what a rescan of the real
relation would observe (see DESIGN.md, substitution 3).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .._validation import require_positive_int, require_probability
from ..exceptions import DeletionError
from .reservoir import ReservoirSampler

__all__ = ["BackingSample"]


class BackingSample:
    """A reservoir sample maintained under insertions and deletions.

    Parameters
    ----------
    capacity:
        Maximum number of sampled tuples (the disk budget divided by the size
        of one value).
    low_water_fraction:
        When deletions shrink the sample below ``low_water_fraction *
        capacity`` (and the relation still has at least that many tuples), the
        relation is rescanned to refill the sample.
    seed:
        Seed of the private random generator.
    """

    def __init__(
        self,
        capacity: int,
        *,
        low_water_fraction: float = 0.8,
        seed: int | None = 0,
    ) -> None:
        require_positive_int(capacity, "capacity")
        require_probability(low_water_fraction, "low_water_fraction")
        self._capacity = capacity
        self._low_water = low_water_fraction
        self._rng = np.random.default_rng(seed)
        self._reservoir = ReservoirSampler(capacity, rng=self._rng)
        self._relation: Counter = Counter()
        self._relation_size = 0
        self._rescan_count = 0
        self._version = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def sample_size(self) -> int:
        """Current number of sampled tuples."""
        return self._reservoir.size

    @property
    def relation_size(self) -> int:
        """Number of live tuples in the (simulated) relation."""
        return self._relation_size

    @property
    def rescan_count(self) -> int:
        """How many times the relation had to be rescanned."""
        return self._rescan_count

    @property
    def version(self) -> int:
        """Monotonic counter bumped whenever the sample content changes."""
        return self._version

    @property
    def scale_factor(self) -> float:
        """Factor by which sample counts must be scaled to estimate the relation."""
        if self.sample_size == 0:
            return 0.0
        return self._relation_size / self.sample_size

    def values(self) -> list[float]:
        """A copy of the sampled values."""
        return self._reservoir.values()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Insert a tuple into the relation and offer it to the reservoir."""
        value = float(value)
        self._relation[value] += 1
        self._relation_size += 1
        if self._reservoir.offer(value):
            self._version += 1

    def delete(self, value: float) -> None:
        """Delete a tuple from the relation, updating the sample as needed."""
        value = float(value)
        if self._relation[value] <= 0:
            raise DeletionError(f"value {value!r} is not present in the relation")
        self._relation[value] -= 1
        if self._relation[value] == 0:
            del self._relation[value]
        self._relation_size -= 1

        if self._reservoir.discard_value(value):
            self._version += 1
            threshold = self._low_water * min(self._capacity, self._relation_size)
            if self._reservoir.size < threshold:
                self.rescan()

    def rescan(self) -> None:
        """Refill the sample with a fresh uniform draw from the live relation."""
        self._rescan_count += 1
        population: list[float] = []
        for value, count in self._relation.items():
            population.extend([value] * count)
        if len(population) <= self._capacity:
            new_sample = population
        else:
            indices = self._rng.choice(len(population), size=self._capacity, replace=False)
            new_sample = [population[i] for i in indices]
        self._reservoir.reset(new_sample, self._relation_size)
        self._version += 1
