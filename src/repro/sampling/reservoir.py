"""Reservoir sampling (Vitter's algorithm R) [1].

A reservoir sampler maintains, in one pass over a stream of unknown length, a
uniform random sample of fixed capacity: after ``N`` insertions every element
of the stream is present in the reservoir with probability
``min(1, capacity / N)``.  This is the building block of the backing sample
used by the Approximate Compressed histogram.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .._validation import require_positive_int

__all__ = ["ReservoirSampler"]


class ReservoirSampler:
    """Fixed-capacity uniform sample of a stream (algorithm R).

    Parameters
    ----------
    capacity:
        Maximum number of elements retained.
    seed:
        Seed of the sampler's private random generator (or a generator).
    """

    def __init__(self, capacity: int, *, seed: int | None = 0,
                 rng: np.random.Generator | None = None) -> None:
        require_positive_int(capacity, "capacity")
        self._capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._sample: list[float] = []
        self._seen = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained elements."""
        return self._capacity

    @property
    def seen_count(self) -> int:
        """Number of stream elements offered so far."""
        return self._seen

    @property
    def size(self) -> int:
        """Current number of retained elements."""
        return len(self._sample)

    @property
    def is_full(self) -> bool:
        return len(self._sample) >= self._capacity

    def values(self) -> list[float]:
        """A copy of the retained sample values."""
        return list(self._sample)

    def offer(self, value: float) -> bool:
        """Offer one stream element; return True if it was retained.

        While the reservoir has free capacity every element is retained;
        afterwards the element replaces a uniformly random slot with
        probability ``capacity / seen``.
        """
        self._seen += 1
        value = float(value)
        if len(self._sample) < self._capacity:
            self._sample.append(value)
            return True
        slot = int(self._rng.integers(self._seen))
        if slot < self._capacity:
            self._sample[slot] = value
            return True
        return False

    def offer_many(self, values: Iterable[float]) -> int:
        """Offer every element of an iterable; return how many were retained."""
        retained = 0
        for value in values:
            if self.offer(value):
                retained += 1
        return retained

    def discard_value(self, value: float) -> bool:
        """Remove one occurrence of ``value`` from the reservoir if present.

        Used by the backing sample to mirror deletions of sampled tuples.
        Returns True when an occurrence was removed.  The count of seen
        elements is decremented either way, because the deleted tuple no
        longer belongs to the underlying relation.
        """
        self._seen = max(self._seen - 1, 0)
        value = float(value)
        try:
            self._sample.remove(value)
        except ValueError:
            return False
        return True

    def reset(self, values: Iterable[float], population_size: int) -> None:
        """Replace the reservoir content after a rescan of the relation.

        ``values`` must be an unbiased sample (at most ``capacity`` elements)
        of a relation of ``population_size`` tuples.
        """
        new_values = [float(v) for v in values]
        if len(new_values) > self._capacity:
            raise ValueError(
                f"reset with {len(new_values)} values exceeds capacity {self._capacity}"
            )
        if population_size < len(new_values):
            raise ValueError("population_size cannot be smaller than the sample size")
        self._sample = new_values
        self._seen = population_size
