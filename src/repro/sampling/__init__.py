"""Reservoir sampling and the Approximate Compressed histogram comparator.

The paper compares its dynamic histograms against the Approximate Histograms
of Gibbons, Matias and Poosala [10], which maintain a large *backing sample*
on disk via reservoir sampling [1] plus a small approximate Equi-Depth /
Compressed histogram in memory.  This package implements the whole stack from
scratch:

* :class:`~repro.sampling.reservoir.ReservoirSampler` -- Vitter's algorithm R;
* :class:`~repro.sampling.backing_sample.BackingSample` -- a reservoir that
  also supports deletions (with a simulated relation rescan when it shrinks
  too far);
* :class:`~repro.sampling.approximate.ApproximateCompressedHistogram` -- the
  in-memory approximate histogram with split/merge maintenance and
  recomputation from the backing sample.
"""

from .reservoir import ReservoirSampler
from .backing_sample import BackingSample
from .approximate import ApproximateCompressedHistogram

__all__ = ["ReservoirSampler", "BackingSample", "ApproximateCompressedHistogram"]
