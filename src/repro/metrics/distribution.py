"""Exact data distributions (value -> frequency maps) with CDF support.

A :class:`DataDistribution` is the ground truth against which histograms are
evaluated.  It supports incremental insertion and deletion so the evaluation
harness can keep it in sync with an update stream while a dynamic histogram
processes the same stream, and it exposes vectorised CDF evaluation used by the
Kolmogorov-Smirnov metric.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import DeletionError, EmptyHistogramError

__all__ = ["DataDistribution"]


class DataDistribution:
    """An exact frequency distribution over numeric attribute values.

    The distribution is a multiset of numeric values stored as a mapping from
    distinct value to its (positive integer) frequency.  Sorted-array views
    used for CDF evaluation are rebuilt lazily after updates.

    Parameters
    ----------
    values:
        Optional iterable of initial values; duplicates accumulate frequency.
    """

    def __init__(self, values: Iterable[float] | None = None) -> None:
        self._freq: dict[float, int] = {}
        self._total = 0
        self._dirty = True
        self._sorted_values = np.empty(0, dtype=float)
        self._cum_counts = np.empty(0, dtype=float)
        if values is not None:
            self.add_many(values)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_frequencies(cls, pairs: Iterable[tuple[float, int]]) -> DataDistribution:
        """Build a distribution from ``(value, frequency)`` pairs.

        Frequencies must be non-negative; zero-frequency pairs are ignored.
        """
        dist = cls()
        for value, freq in pairs:
            if freq < 0:
                raise ValueError(f"frequency must be non-negative, got {freq} for value {value}")
            if freq:
                dist._freq[float(value)] = dist._freq.get(float(value), 0) + int(freq)
                dist._total += int(freq)
        dist._dirty = True
        return dist

    def copy(self) -> DataDistribution:
        """Return an independent copy of this distribution."""
        clone = DataDistribution()
        clone._freq = dict(self._freq)
        clone._total = self._total
        clone._dirty = True
        return clone

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add(self, value: float, count: int = 1) -> None:
        """Insert ``count`` occurrences of ``value``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        key = float(value)
        self._freq[key] = self._freq.get(key, 0) + count
        self._total += count
        self._dirty = True

    def add_many(self, values: Iterable[float]) -> None:
        """Insert every value from an iterable (duplicates accumulate)."""
        freq = self._freq
        added = 0
        for value in values:
            key = float(value)
            freq[key] = freq.get(key, 0) + 1
            added += 1
        self._total += added
        if added:
            self._dirty = True

    def remove(self, value: float, count: int = 1) -> None:
        """Remove ``count`` occurrences of ``value``.

        Raises
        ------
        DeletionError
            If the value is not present with at least ``count`` occurrences.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        key = float(value)
        present = self._freq.get(key, 0)
        if present < count:
            raise DeletionError(
                f"cannot remove {count} occurrence(s) of {value!r}: only {present} present"
            )
        if present == count:
            del self._freq[key]
        else:
            self._freq[key] = present - count
        self._total -= count
        self._dirty = True

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def total_count(self) -> int:
        """Total number of points (sum of all frequencies)."""
        return self._total

    @property
    def distinct_count(self) -> int:
        """Number of distinct values with non-zero frequency."""
        return len(self._freq)

    @property
    def min_value(self) -> float:
        """Smallest value present; raises if the distribution is empty."""
        self._ensure_arrays()
        if self._total == 0:
            raise EmptyHistogramError("distribution is empty")
        return float(self._sorted_values[0])

    @property
    def max_value(self) -> float:
        """Largest value present; raises if the distribution is empty."""
        self._ensure_arrays()
        if self._total == 0:
            raise EmptyHistogramError("distribution is empty")
        return float(self._sorted_values[-1])

    def frequency(self, value: float) -> int:
        """Frequency of a single value (0 if absent)."""
        return self._freq.get(float(value), 0)

    def __len__(self) -> int:
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0

    def __contains__(self, value: float) -> bool:
        return float(value) in self._freq

    def __iter__(self) -> Iterator[float]:
        """Iterate over distinct values in ascending order."""
        self._ensure_arrays()
        return iter(self._sorted_values.tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataDistribution):
            return NotImplemented
        return self._freq == other._freq

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DataDistribution(total={self._total}, distinct={self.distinct_count})"
        )

    # ------------------------------------------------------------------
    # vectorised views
    # ------------------------------------------------------------------
    def _ensure_arrays(self) -> None:
        if not self._dirty:
            return
        if self._freq:
            values = np.array(sorted(self._freq), dtype=float)
            counts = np.array([self._freq[v] for v in values], dtype=float)
            self._sorted_values = values
            self._cum_counts = np.cumsum(counts)
        else:
            self._sorted_values = np.empty(0, dtype=float)
            self._cum_counts = np.empty(0, dtype=float)
        self._dirty = False

    @property
    def values(self) -> np.ndarray:
        """Sorted array of distinct values (read-only view)."""
        self._ensure_arrays()
        return self._sorted_values.copy()

    @property
    def frequencies(self) -> np.ndarray:
        """Frequencies aligned with :attr:`values`."""
        self._ensure_arrays()
        if len(self._cum_counts) == 0:
            return np.empty(0, dtype=float)
        return np.diff(np.concatenate(([0.0], self._cum_counts)))

    def to_pairs(self) -> list[tuple[float, int]]:
        """Return ``(value, frequency)`` pairs sorted by value."""
        self._ensure_arrays()
        freqs = self.frequencies
        return [(float(v), int(f)) for v, f in zip(self._sorted_values, freqs, strict=True)]

    def expand(self) -> np.ndarray:
        """Materialise the multiset as a sorted array of individual values.

        Useful for feeding static-construction algorithms or samplers that
        expect raw tuples rather than a frequency map.
        """
        self._ensure_arrays()
        freqs = self.frequencies.astype(int)
        if len(freqs) == 0:
            return np.empty(0, dtype=float)
        return np.repeat(self._sorted_values, freqs)

    # ------------------------------------------------------------------
    # CDF / range counts
    # ------------------------------------------------------------------
    def count_at_most(self, x: float) -> float:
        """Number of points with value <= x."""
        self._ensure_arrays()
        if self._total == 0:
            return 0.0
        idx = int(np.searchsorted(self._sorted_values, x, side="right"))
        if idx == 0:
            return 0.0
        return float(self._cum_counts[idx - 1])

    def cdf(self, x: float) -> float:
        """Empirical cumulative distribution function at ``x``.

        Returns 0 for an empty distribution so that comparisons against an
        empty histogram are well defined.
        """
        if self._total == 0:
            return 0.0
        return self.count_at_most(x) / self._total

    def cdf_many(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorised CDF evaluation at each point of ``xs``."""
        self._ensure_arrays()
        xs_arr = np.asarray(xs, dtype=float)
        if self._total == 0:
            return np.zeros(xs_arr.shape, dtype=float)
        idx = np.searchsorted(self._sorted_values, xs_arr, side="right")
        cum = np.concatenate(([0.0], self._cum_counts))
        return cum[idx] / self._total

    def range_count(self, low: float, high: float, *, include_low: bool = True,
                    include_high: bool = True) -> float:
        """Number of points in the interval between ``low`` and ``high``.

        Both endpoints are inclusive by default, matching the closed range
        predicates (``a <= X <= b``) discussed with Eq. (7) in the paper.
        """
        if high < low:
            return 0.0
        self._ensure_arrays()
        if self._total == 0:
            return 0.0
        left_side = "left" if include_low else "right"
        right_side = "right" if include_high else "left"
        lo_idx = int(np.searchsorted(self._sorted_values, low, side=left_side))
        hi_idx = int(np.searchsorted(self._sorted_values, high, side=right_side))
        cum = np.concatenate(([0.0], self._cum_counts))
        return float(cum[hi_idx] - cum[lo_idx])

    def range_selectivity(self, low: float, high: float, **kwargs: bool) -> float:
        """Fraction of points in the (by default closed) interval [low, high]."""
        if self._total == 0:
            return 0.0
        return self.range_count(low, high, **kwargs) / self._total

    # ------------------------------------------------------------------
    # evaluation support
    # ------------------------------------------------------------------
    def breakpoints(self) -> np.ndarray:
        """Sorted array of distinct values: natural CDF evaluation points."""
        self._ensure_arrays()
        return self._sorted_values.copy()
