"""Average relative range-query error (Eq. 7 of the paper).

The paper also evaluated histograms with the metric of Poosala et al. [9]: the
average, over a workload of range queries, of the relative error between the
true and estimated result sizes, scaled by 100.  The paper ultimately prefers
the KS statistic (it does not depend on an arbitrary query workload), but the
metric is included here both for completeness and because it gives the same
relative ordering of algorithms, which is a useful cross-check.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol, runtime_checkable

from .distribution import DataDistribution

__all__ = ["average_relative_error", "RangeEstimator"]


@runtime_checkable
class RangeEstimator(Protocol):
    """Anything that can estimate the number of points in a closed range."""

    def estimate_range(self, low: float, high: float) -> float:  # pragma: no cover
        ...


def average_relative_error(
    truth: DataDistribution,
    approx: RangeEstimator,
    queries: Sequence[tuple[float, float]],
    *,
    minimum_true_size: float = 1.0,
) -> float:
    """Average relative error of ``approx`` on a range-query workload.

    Parameters
    ----------
    truth:
        The exact data distribution.
    approx:
        A histogram exposing ``estimate_range(low, high)``.
    queries:
        Closed range queries as ``(low, high)`` pairs.
    minimum_true_size:
        Queries whose true result size is smaller than this are normalised by
        this floor instead, so empty ranges do not produce infinite relative
        errors.  The default of 1 follows common practice.

    Returns
    -------
    float
        ``100 / |Q| * sum_q |S_q - S'_q| / max(S_q, minimum_true_size)``.
    """
    if not queries:
        raise ValueError("queries must be a non-empty sequence of (low, high) pairs")
    if minimum_true_size <= 0:
        raise ValueError(f"minimum_true_size must be positive, got {minimum_true_size}")

    total_error = 0.0
    for low, high in queries:
        if high < low:
            low, high = high, low
        true_size = truth.range_count(low, high)
        estimated_size = float(approx.estimate_range(low, high))
        denominator = max(true_size, minimum_true_size)
        total_error += abs(true_size - estimated_size) / denominator
    return 100.0 * total_error / len(queries)
