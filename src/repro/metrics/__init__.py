"""Goodness-of-fit metrics and the canonical data-distribution representation.

The paper evaluates histogram quality by comparing the *true* data distribution
with the approximate distribution represented by a histogram, primarily using
the Kolmogorov-Smirnov statistic (Section 6.2).  This package provides:

* :class:`~repro.metrics.distribution.DataDistribution` -- an exact,
  incrementally updateable value -> frequency map with CDF support; this is the
  ground truth every metric compares against.
* :func:`~repro.metrics.ks.ks_statistic` and
  :func:`~repro.metrics.ks.ks_statistic_between` -- Eq. (6).
* :func:`~repro.metrics.chi_square.chi_square_statistic` and
  :func:`~repro.metrics.chi_square.chi_square_probability` -- Eq. (1) and the
  survival function used by the DC repartitioning trigger.
* :func:`~repro.metrics.error.average_relative_error` -- Eq. (7).
"""

from .distribution import DataDistribution
from .ks import ks_statistic, ks_statistic_between
from .chi_square import chi_square_probability, chi_square_statistic, chi_square_uniform_statistic
from .error import average_relative_error

__all__ = [
    "DataDistribution",
    "ks_statistic",
    "ks_statistic_between",
    "chi_square_statistic",
    "chi_square_uniform_statistic",
    "chi_square_probability",
    "average_relative_error",
]
