"""Chi-square statistic and probability function (Eq. 1 of the paper).

The Dynamic Compressed histogram uses a Chi-square test to decide when the
counts in its regular buckets deviate enough from uniformity that
repartitioning is warranted (Section 3).  The test needs two pieces:

* the statistic ``sum_i (N_i - n_i)^2 / n_i`` over observed counts ``N_i`` and
  expected counts ``n_i`` (here the expected count is the average count); and
* the significance ``Q(chi^2 | dof)`` -- the probability of observing a
  statistic at least this large under the null hypothesis -- computed from the
  regularized incomplete gamma function, following the paper's reference to
  Numerical Recipes [7].

The incomplete gamma function is implemented from scratch (series expansion and
continued fraction), so the library has no dependency beyond numpy.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "chi_square_statistic",
    "chi_square_uniform_statistic",
    "chi_square_probability",
    "regularized_gamma_p",
    "regularized_gamma_q",
]

_MAX_ITERATIONS = 400
_EPSILON = 3.0e-12
_TINY = 1.0e-300


def chi_square_statistic(observed: Sequence[float], expected: Sequence[float]) -> float:
    """Chi-square statistic of observed counts against expected counts.

    Categories with a non-positive expected count are skipped: they carry no
    information for the uniformity test (this situation arises transiently in a
    DC histogram when all regular buckets are still empty).
    """
    observed_arr = np.asarray(observed, dtype=float)
    expected_arr = np.asarray(expected, dtype=float)
    if observed_arr.shape != expected_arr.shape:
        raise ConfigurationError(
            f"observed and expected must have the same shape, "
            f"got {observed_arr.shape} and {expected_arr.shape}"
        )
    mask = expected_arr > 0
    if not np.any(mask):
        return 0.0
    diffs = observed_arr[mask] - expected_arr[mask]
    return float(np.sum(diffs * diffs / expected_arr[mask]))


def chi_square_uniform_statistic(counts: Sequence[float]) -> float:
    """Chi-square statistic of counts against the hypothesis of uniform counts.

    This is the exact form used by the DC histogram: the expected count of each
    regular bucket is the average count over all regular buckets.
    """
    counts_arr = np.asarray(counts, dtype=float)
    if counts_arr.size == 0:
        return 0.0
    mean = counts_arr.mean()
    if mean <= 0:
        return 0.0
    diffs = counts_arr - mean
    return float(np.sum(diffs * diffs) / mean)


def chi_square_probability(chi2: float, dof: int) -> float:
    """Significance ``Q(chi^2 | dof)`` of a chi-square statistic.

    This is the probability that a chi-square-distributed variable with ``dof``
    degrees of freedom exceeds ``chi2``; small values mean the null hypothesis
    (uniform bucket counts) is unlikely.  ``dof`` must be positive.
    """
    if dof <= 0:
        raise ConfigurationError(f"degrees of freedom must be positive, got {dof}")
    if chi2 < 0:
        raise ConfigurationError(f"chi-square statistic must be non-negative, got {chi2}")
    return regularized_gamma_q(dof / 2.0, chi2 / 2.0)


# ----------------------------------------------------------------------
# Regularized incomplete gamma functions (Numerical Recipes style)
# ----------------------------------------------------------------------
def regularized_gamma_p(a: float, x: float) -> float:
    """Lower regularized incomplete gamma function P(a, x)."""
    if a <= 0:
        raise ConfigurationError(f"shape parameter a must be positive, got {a}")
    if x < 0:
        raise ConfigurationError(f"x must be non-negative, got {x}")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        return _gamma_series(a, x)
    return 1.0 - _gamma_continued_fraction(a, x)


def regularized_gamma_q(a: float, x: float) -> float:
    """Upper regularized incomplete gamma function Q(a, x) = 1 - P(a, x)."""
    if a <= 0:
        raise ConfigurationError(f"shape parameter a must be positive, got {a}")
    if x < 0:
        raise ConfigurationError(f"x must be non-negative, got {x}")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _gamma_series(a, x)
    return _gamma_continued_fraction(a, x)


def _gamma_series(a: float, x: float) -> float:
    """Series representation of P(a, x), valid for x < a + 1."""
    log_prefactor = a * math.log(x) - x - math.lgamma(a)
    term = 1.0 / a
    total = term
    denominator = a
    for _ in range(_MAX_ITERATIONS):
        denominator += 1.0
        term *= x / denominator
        total += term
        if abs(term) < abs(total) * _EPSILON:
            break
    return math.exp(log_prefactor) * total


def _gamma_continued_fraction(a: float, x: float) -> float:
    """Continued-fraction representation of Q(a, x), valid for x >= a + 1."""
    log_prefactor = a * math.log(x) - x - math.lgamma(a)
    b = x + 1.0 - a
    c = 1.0 / _TINY
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _TINY:
            d = _TINY
        c = b + an / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    return math.exp(log_prefactor) * h
