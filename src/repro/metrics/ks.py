"""Kolmogorov-Smirnov goodness-of-fit statistic (Eq. 6 of the paper).

The KS statistic between two distributions is the supremum over the domain of
the absolute difference of their cumulative distribution functions.  The paper
uses it as the primary quality metric because it has an intuitive
interpretation: it is the maximum error in the selectivity of a range predicate
answered from the histogram instead of the data (Section 6.2).

Two entry points are provided:

* :func:`ks_statistic` compares an exact :class:`DataDistribution` (the ground
  truth) against any object exposing the histogram read API (``cdf_many`` and,
  optionally, ``cdf_breakpoints``) -- this covers every histogram class in the
  library as well as another :class:`DataDistribution`.
* :func:`ks_statistic_between` compares two exact distributions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from .distribution import DataDistribution

__all__ = ["ks_statistic", "ks_statistic_between", "CDFEstimator"]


@runtime_checkable
class CDFEstimator(Protocol):
    """Anything that can evaluate an approximate CDF at many points."""

    def cdf_many(self, xs: Sequence[float]) -> np.ndarray:  # pragma: no cover - protocol
        ...


def _candidate_points(
    truth: DataDistribution,
    approx: CDFEstimator,
    extra_points: Iterable[float] | None = None,
) -> np.ndarray:
    """Union of CDF breakpoints of both distributions.

    The empirical CDF is a step function with jumps at data values; histogram
    CDFs are piecewise linear with breakpoints at bucket borders.  The supremum
    of their absolute difference is attained at (the left or right limit of)
    one of these breakpoints, so evaluating there is exact.
    """
    pieces = [truth.breakpoints()]
    breakpoint_fn = getattr(approx, "cdf_breakpoints", None)
    if callable(breakpoint_fn):
        pieces.append(np.asarray(breakpoint_fn(), dtype=float))
    if extra_points is not None:
        pieces.append(np.asarray(list(extra_points), dtype=float))
    if not any(len(p) for p in pieces):
        return np.empty(0, dtype=float)
    return np.unique(np.concatenate([p for p in pieces if len(p)]))


def ks_statistic(
    truth: DataDistribution,
    approx: CDFEstimator,
    *,
    extra_points: Iterable[float] | None = None,
    value_unit: float | None = None,
) -> float:
    """Maximum absolute CDF difference between ``truth`` and ``approx``.

    Parameters
    ----------
    truth:
        The exact data distribution.
    approx:
        Any histogram (or distribution) exposing ``cdf_many``.
    extra_points:
        Additional evaluation points (rarely needed; the union of breakpoints
        is already sufficient for exactness).
    value_unit:
        When the data lives on a grid of spacing ``value_unit`` (the paper's
        integer domains), pass it to compare against the *discrete*
        reconstruction of the histogram under the continuous-value assumption:
        the mass a bucket assigns to a domain value ``v`` is whatever falls in
        the value's cell ``(v - unit/2, v + unit/2]``.  This matches how the
        paper derives an approximate distribution from a histogram.  Without
        it, the histogram is treated as a genuinely continuous density, which
        charges a continuous bucket the full CDF jump of any heavy value it
        covers.

    Returns
    -------
    float
        The KS statistic in [0, 1].  Zero when both are empty.
    """
    if value_unit is not None and value_unit <= 0:
        raise ValueError(f"value_unit must be positive, got {value_unit}")

    points = _candidate_points(truth, approx, extra_points)
    if len(points) == 0:
        return 0.0
    if value_unit is not None:
        # The discrete reconstruction only changes at grid points, so snap all
        # candidate points (bucket borders may sit between grid points) onto
        # the grid and add the immediate grid neighbours of the data values,
        # which is where the CDF difference peaks inside empty stretches.
        snapped = np.round(points / value_unit) * value_unit
        data_points = truth.breakpoints()
        points = np.unique(
            np.concatenate(
                [snapped, data_points, data_points - value_unit, data_points + value_unit]
            )
        )

    truth_right = truth.cdf_many(points)
    total = truth.total_count
    jumps = (
        np.array([truth.frequency(p) for p in points], dtype=float) / total
        if total > 0
        else np.zeros(len(points), dtype=float)
    )
    truth_left = truth_right - jumps

    if value_unit is not None:
        half_cell = value_unit / 2.0
        approx_right = np.asarray(approx.cdf_many(points + half_cell), dtype=float)
        approx_left = np.asarray(approx.cdf_many(points - half_cell), dtype=float)
    else:
        approx_right = np.asarray(approx.cdf_many(points), dtype=float)
        approx_left_fn = getattr(approx, "cdf_left_many", None)
        # Histogram CDFs are continuous, so absent a true left-limit method
        # the left limit equals the value.
        approx_left = (
            np.asarray(approx_left_fn(points), dtype=float)
            if callable(approx_left_fn)
            else approx_right
        )

    diff_right = np.abs(truth_right - approx_right)
    diff_left = np.abs(truth_left - approx_left)
    return float(max(diff_right.max(), diff_left.max()))


def ks_statistic_between(first: DataDistribution, second: DataDistribution) -> float:
    """KS statistic between two exact distributions.

    Both CDFs are right-continuous step functions, so the supremum of their
    absolute difference is attained at one of the jump points evaluated
    right-continuously.
    """
    points_first = first.breakpoints()
    points_second = second.breakpoints()
    if len(points_first) == 0 and len(points_second) == 0:
        return 0.0
    points = np.unique(np.concatenate([points_first, points_second]))
    return float(np.max(np.abs(first.cdf_many(points) - second.cdf_many(points))))
