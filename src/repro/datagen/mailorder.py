"""Synthetic substitute for the paper's proprietary mail-order trace (Section 7.4).

The paper measures histogram quality on a real trace of 61,105 order records
(dollar amounts in roughly [0, 500]) collected by a mail-order company.  The
trace is described as very "spiky": a moderate number of catalog price points
carry large frequencies, on top of a smooth, skewed body.

That trace is not publicly available, so this module synthesises a
distribution with the same qualitative character and the same record count:

* a set of *catalog price points* (round dollar amounts and ``x.95`` /
  ``x.99``-style prices) whose popularities follow a Zipf law -- these are the
  spikes;
* a log-normal *body* of ad-hoc order amounts rounded to cents -- this is the
  smooth outline that a small histogram captures quickly;
* a thin uniform tail up to the domain maximum.

The substitution is documented in DESIGN.md; Figure 19 of the paper only
requires a spiky real-world-like distribution in order to show that DADO
captures the outline with little memory but needs much more memory to resolve
every spike, and this generator reproduces exactly that regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_positive_int, require_probability
from ..exceptions import ConfigurationError
from ..metrics.distribution import DataDistribution

__all__ = ["MailOrderConfig", "generate_mail_order_values", "generate_mail_order_distribution"]


@dataclass(frozen=True)
class MailOrderConfig:
    """Parameters of the synthetic mail-order trace.

    Attributes
    ----------
    n_records:
        Number of order records (the paper's trace has 61,105).
    max_amount:
        Largest dollar amount in the domain.
    n_price_points:
        Number of distinct catalog price points (spikes).
    spike_fraction:
        Fraction of records that fall exactly on a catalog price point.
    spike_skew:
        Zipf skew of the popularity of catalog price points.
    body_median:
        Median of the log-normal body of ad-hoc amounts.
    body_sigma:
        Log-space standard deviation of the body.
    tail_fraction:
        Fraction of records drawn uniformly over the whole domain.
    seed:
        Seed for the trace's random generator.
    """

    n_records: int = 61_105
    max_amount: float = 500.0
    n_price_points: int = 120
    spike_fraction: float = 0.55
    spike_skew: float = 1.0
    body_median: float = 45.0
    body_sigma: float = 0.75
    tail_fraction: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive_int(self.n_records, "n_records")
        require_positive_int(self.n_price_points, "n_price_points")
        require_probability(self.spike_fraction, "spike_fraction")
        require_probability(self.tail_fraction, "tail_fraction")
        if self.spike_fraction + self.tail_fraction > 1.0:
            raise ConfigurationError(
                "spike_fraction + tail_fraction must not exceed 1, got "
                f"{self.spike_fraction} + {self.tail_fraction}"
            )
        if self.max_amount <= 0:
            raise ConfigurationError(f"max_amount must be positive, got {self.max_amount}")
        if self.body_median <= 0 or self.body_median >= self.max_amount:
            raise ConfigurationError(
                f"body_median must lie in (0, max_amount), got {self.body_median}"
            )
        if self.body_sigma <= 0:
            raise ConfigurationError(f"body_sigma must be positive, got {self.body_sigma}")


def _catalog_price_points(rng: np.random.Generator, config: MailOrderConfig) -> np.ndarray:
    """Generate the distinct catalog price points (the spikes)."""
    base_dollars = rng.choice(
        np.arange(1, int(config.max_amount)), size=config.n_price_points, replace=False
    ).astype(float)
    cents = rng.choice((0.0, 0.95, 0.99, 0.5), size=config.n_price_points,
                       p=(0.35, 0.3, 0.25, 0.1))
    return np.minimum(base_dollars + cents, config.max_amount)


def generate_mail_order_values(config: MailOrderConfig = MailOrderConfig()) -> np.ndarray:
    """Generate the synthetic mail-order trace as an array of dollar amounts.

    Amounts are rounded to cents, which keeps the distribution "spiky" (many
    exact repeats) the way a real order file is.
    """
    rng = np.random.default_rng(config.seed)

    n_spike = int(round(config.n_records * config.spike_fraction))
    n_tail = int(round(config.n_records * config.tail_fraction))
    n_body = config.n_records - n_spike - n_tail

    price_points = _catalog_price_points(rng, config)
    ranks = np.arange(1, config.n_price_points + 1, dtype=float)
    weights = ranks ** (-config.spike_skew)
    weights /= weights.sum()
    spike_values = rng.choice(price_points, size=n_spike, p=weights)

    mu = np.log(config.body_median)
    body_values = rng.lognormal(mean=mu, sigma=config.body_sigma, size=n_body)
    body_values = np.clip(body_values, 0.0, config.max_amount)

    tail_values = rng.uniform(0.0, config.max_amount, size=n_tail)

    values = np.concatenate([spike_values, body_values, tail_values])
    return np.round(values, 2)


def generate_mail_order_distribution(config: MailOrderConfig = MailOrderConfig()) -> DataDistribution:
    """Exact :class:`DataDistribution` of the synthetic mail-order trace."""
    return DataDistribution(generate_mail_order_values(config))
