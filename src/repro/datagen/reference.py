"""The paper's reference parameter settings (Sections 6.1, 7 and 8).

The evaluation fixes a *reference distribution* -- ``S = 1, Z = 1, SD = 2,
C = 2000, N = 100,000`` points over the integer domain ``[0, 5000]`` with 1 KB
of histogram memory -- and varies one parameter at a time.  The comparison with
static histograms (Figures 9-12) uses a smaller configuration (``C = 50,
SD = 1, M = 0.14 KB``), and the shared-nothing experiments (Figures 20-23) use
per-site Zipf data with intra-site skew ``Z_Freq``, site-size skew ``Z_Site``
and ``N_Site`` sites.

These helpers return the corresponding configuration objects, optionally scaled
down for laptop-sized benchmark runs (skews and the domain are never scaled).
"""

from __future__ import annotations


from .clusters import ClusterDistributionConfig

__all__ = [
    "PAPER_DOMAIN",
    "PAPER_NUM_POINTS",
    "PAPER_REFERENCE_MEMORY_KB",
    "reference_config",
    "static_comparison_config",
    "distributed_site_config",
]

#: Integer attribute domain used throughout the paper's synthetic experiments.
PAPER_DOMAIN: tuple[int, int] = (0, 5000)

#: Number of points in the synthetic test file (Section 7).
PAPER_NUM_POINTS: int = 100_000

#: Default histogram memory for the dynamic-histogram experiments (Section 7).
PAPER_REFERENCE_MEMORY_KB: float = 1.0


def reference_config(
    *,
    center_skew: float = 1.0,
    size_skew: float = 1.0,
    cluster_sd: float = 2.0,
    n_clusters: int = 2000,
    seed: int = 0,
    scale: float = 1.0,
) -> ClusterDistributionConfig:
    """The reference distribution of Section 7 (Figures 5-8, 14-18).

    Parameters mirror the paper's knobs: ``center_skew`` is ``S``,
    ``size_skew`` is ``Z``, ``cluster_sd`` is ``SD`` and ``n_clusters`` is
    ``C``.  ``scale`` shrinks the number of points and clusters proportionally
    for fast benchmark runs.
    """
    config = ClusterDistributionConfig(
        n_points=PAPER_NUM_POINTS,
        n_clusters=n_clusters,
        center_skew=center_skew,
        size_skew=size_skew,
        cluster_sd=cluster_sd,
        shape="normal",
        correlation="none",
        domain=PAPER_DOMAIN,
        seed=seed,
    )
    if scale != 1.0:
        config = config.scaled(scale)
    return config


def static_comparison_config(
    *,
    center_skew: float = 1.0,
    size_skew: float = 1.0,
    cluster_sd: float = 1.0,
    seed: int = 0,
    scale: float = 1.0,
) -> ClusterDistributionConfig:
    """The smaller configuration of the static-histogram comparison (Figs. 9-12).

    The paper fixes ``C = 50`` clusters and gives every histogram 0.14 KB of
    memory; the distribution otherwise matches the reference family.
    """
    config = ClusterDistributionConfig(
        n_points=PAPER_NUM_POINTS,
        n_clusters=50,
        center_skew=center_skew,
        size_skew=size_skew,
        cluster_sd=cluster_sd,
        shape="normal",
        correlation="none",
        domain=PAPER_DOMAIN,
        seed=seed,
    )
    if scale != 1.0:
        # Keep the cluster count at the paper's value; only shrink the points.
        config = ClusterDistributionConfig(
            n_points=max(1, int(round(config.n_points * scale))),
            n_clusters=config.n_clusters,
            center_skew=config.center_skew,
            size_skew=config.size_skew,
            cluster_sd=config.cluster_sd,
            shape=config.shape,
            correlation=config.correlation,
            domain=config.domain,
            seed=config.seed,
        )
    return config


def distributed_site_config(
    *,
    n_points: int,
    intrasite_skew: float,
    domain: tuple[int, int],
    seed: int,
    n_clusters: int = 50,
    cluster_sd: float = 1.0,
) -> ClusterDistributionConfig:
    """Configuration of a single union member in the shared-nothing experiments.

    Each site holds data distributed within a sub-range of the global domain
    according to a Zipf law parameterised by ``Z_Freq`` (``intrasite_skew``).
    """
    return ClusterDistributionConfig(
        n_points=n_points,
        n_clusters=min(n_clusters, max(1, domain[1] - domain[0])),
        center_skew=1.0,
        size_skew=intrasite_skew,
        cluster_sd=cluster_sd,
        shape="normal",
        correlation="none",
        domain=domain,
        seed=seed,
    )
