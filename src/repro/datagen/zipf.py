"""Zipf-law utilities.

The paper's synthetic data family (Section 6.1) uses Zipf distributions in two
roles: the sizes of clusters and the spreads (gaps) between cluster centres are
both governed by Zipf laws with independent skew parameters (Z and S).  A skew
of 0 degenerates to the uniform distribution; larger skews concentrate mass in
a few ranks.
"""

from __future__ import annotations


import numpy as np

from .._validation import require_non_negative_float, require_positive_int

__all__ = ["zipf_weights", "zipf_counts", "sample_zipf"]


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalised Zipf weights for ``n`` ranks with the given skew.

    The weight of rank ``i`` (1-based) is proportional to ``1 / i**skew``.
    ``skew = 0`` yields uniform weights.

    Parameters
    ----------
    n:
        Number of ranks; must be positive.
    skew:
        Zipf skew parameter; must be non-negative.
    """
    require_positive_int(n, "n")
    require_non_negative_float(skew, "skew")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def zipf_counts(total: int, n: int, skew: float) -> np.ndarray:
    """Split ``total`` items into ``n`` groups with Zipf-distributed sizes.

    The result is an integer array of length ``n`` that sums exactly to
    ``total``.  Rounding residues are assigned to the groups with the largest
    fractional parts (largest-remainder method), so the allocation is as close
    to the real-valued Zipf proportions as an integer split can be.
    """
    require_positive_int(n, "n")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    weights = zipf_weights(n, skew)
    ideal = weights * total
    counts = np.floor(ideal).astype(int)
    remainder = int(total - counts.sum())
    if remainder > 0:
        fractional = ideal - counts
        top_up = np.argsort(-fractional)[:remainder]
        counts[top_up] += 1
    return counts


def sample_zipf(
    rng: np.random.Generator,
    n_samples: int,
    n_ranks: int,
    skew: float,
    *,
    shuffle_ranks: bool = False,
) -> np.ndarray:
    """Draw ``n_samples`` rank indices (0-based) from a Zipf distribution.

    Parameters
    ----------
    rng:
        Numpy random generator.
    n_samples:
        Number of samples to draw; may be zero.
    n_ranks:
        Number of distinct ranks.
    skew:
        Zipf skew; 0 is uniform.
    shuffle_ranks:
        When True, the mapping from probability rank to returned index is a
        random permutation, so the most popular index is not always 0.
    """
    if n_samples < 0:
        raise ValueError(f"n_samples must be non-negative, got {n_samples}")
    weights = zipf_weights(n_ranks, skew)
    if shuffle_ranks:
        permutation = rng.permutation(n_ranks)
        weights = weights[np.argsort(permutation)]
    if n_samples == 0:
        return np.empty(0, dtype=int)
    return rng.choice(n_ranks, size=n_samples, p=weights)


def zipf_gaps(
    rng: np.random.Generator | None,
    n_gaps: int,
    skew: float,
    total_span: float,
    *,
    shuffle: bool = True,
) -> np.ndarray:
    """Zipf-distributed gap widths that sum to ``total_span``.

    Used to place cluster centres: the distances between consecutive centres
    follow a Zipf law with skew ``skew``.  When ``shuffle`` is True (the
    paper's "random spread-frequency correlation") the gaps are randomly
    permuted so large and small gaps are interleaved.
    """
    require_positive_int(n_gaps, "n_gaps")
    if total_span <= 0:
        raise ValueError(f"total_span must be positive, got {total_span}")
    gaps = zipf_weights(n_gaps, skew) * total_span
    if shuffle:
        if rng is None:
            raise ValueError("rng is required when shuffle is True")
        gaps = rng.permutation(gaps)
    return gaps
