"""Synthetic and real-world-like data generators used by the paper's evaluation.

Section 6.1 of the paper describes a parameterisable family of distributions:
clusters of data whose positions and sizes follow Zipf laws, with a
configurable shape and width.  This package implements that family, the
paper's reference parameter settings, and a synthetic substitute for the
proprietary mail-order trace of Section 7.4.
"""

from .zipf import zipf_weights, zipf_counts, sample_zipf
from .clusters import ClusterDistributionConfig, generate_cluster_distribution, generate_cluster_values
from .mailorder import MailOrderConfig, generate_mail_order_values
from .reference import (
    reference_config,
    static_comparison_config,
    distributed_site_config,
    PAPER_DOMAIN,
    PAPER_NUM_POINTS,
)

__all__ = [
    "zipf_weights",
    "zipf_counts",
    "sample_zipf",
    "ClusterDistributionConfig",
    "generate_cluster_distribution",
    "generate_cluster_values",
    "MailOrderConfig",
    "generate_mail_order_values",
    "reference_config",
    "static_comparison_config",
    "distributed_site_config",
    "PAPER_DOMAIN",
    "PAPER_NUM_POINTS",
]
