"""Cluster-based synthetic data distributions (Section 6.1 of the paper).

The paper evaluates histograms on a parameterisable family of distributions:
data is organised in clusters whose *centres* and *sizes* follow Zipf laws
(with skews ``S`` and ``Z`` respectively), whose *shape* is uniform, normal or
exponential, and whose *width* is controlled by a standard deviation ``SD``.
The correlation between cluster sizes and the gaps separating them can be
none, positive or negative.

:class:`ClusterDistributionConfig` captures all of these knobs;
:func:`generate_cluster_values` produces the raw integer attribute values and
:func:`generate_cluster_distribution` the corresponding exact
:class:`~repro.metrics.distribution.DataDistribution`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .._validation import (
    require_non_negative_float,
    require_positive_int,
)
from ..exceptions import ConfigurationError
from ..metrics.distribution import DataDistribution
from .zipf import zipf_counts, zipf_gaps

__all__ = [
    "ClusterDistributionConfig",
    "generate_cluster_values",
    "generate_cluster_distribution",
]

_VALID_SHAPES = ("normal", "uniform", "exponential")
_VALID_CORRELATIONS = ("none", "positive", "negative")


@dataclass(frozen=True)
class ClusterDistributionConfig:
    """Parameters of the paper's synthetic cluster distribution family.

    Attributes
    ----------
    n_points:
        Total number of data points (the paper uses 100,000).
    n_clusters:
        Number of clusters ``C`` (the paper uses 2000 or 50).
    center_skew:
        ``S`` -- Zipf skew of the gaps between cluster centres.
    size_skew:
        ``Z`` -- Zipf skew of the cluster sizes.
    cluster_sd:
        ``SD`` -- standard deviation of values within a cluster; 0 collapses
        each cluster to a single value.
    shape:
        Shape of each cluster: ``"normal"`` (paper default), ``"uniform"`` or
        ``"exponential"``.
    correlation:
        Correlation between cluster sizes and the gaps that separate them:
        ``"none"`` (paper default, called "random"), ``"positive"`` or
        ``"negative"``.
    domain:
        Closed integer interval ``(low, high)`` the values are drawn from; the
        paper uses ``(0, 5000)``.
    seed:
        Seed for the dataset's random generator.
    """

    n_points: int = 100_000
    n_clusters: int = 2000
    center_skew: float = 1.0
    size_skew: float = 1.0
    cluster_sd: float = 2.0
    shape: str = "normal"
    correlation: str = "none"
    domain: tuple[int, int] = (0, 5000)
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive_int(self.n_points, "n_points")
        require_positive_int(self.n_clusters, "n_clusters")
        require_non_negative_float(self.center_skew, "center_skew")
        require_non_negative_float(self.size_skew, "size_skew")
        require_non_negative_float(self.cluster_sd, "cluster_sd")
        if self.shape not in _VALID_SHAPES:
            raise ConfigurationError(
                f"shape must be one of {_VALID_SHAPES}, got {self.shape!r}"
            )
        if self.correlation not in _VALID_CORRELATIONS:
            raise ConfigurationError(
                f"correlation must be one of {_VALID_CORRELATIONS}, got {self.correlation!r}"
            )
        low, high = self.domain
        if high <= low:
            raise ConfigurationError(
                f"domain must satisfy low < high, got {self.domain!r}"
            )

    @property
    def domain_low(self) -> int:
        return int(self.domain[0])

    @property
    def domain_high(self) -> int:
        return int(self.domain[1])

    def with_seed(self, seed: int) -> ClusterDistributionConfig:
        """Return a copy of this configuration with a different seed."""
        return replace(self, seed=seed)

    def scaled(self, factor: float) -> ClusterDistributionConfig:
        """Return a copy with the point and cluster counts scaled by ``factor``.

        Used by the benchmark harness to run paper experiments at laptop scale
        while keeping skews, shapes and the domain untouched.
        """
        if factor <= 0:
            raise ConfigurationError(f"factor must be positive, got {factor}")
        return replace(
            self,
            n_points=max(1, int(round(self.n_points * factor))),
            n_clusters=max(1, int(round(self.n_clusters * factor))),
        )


def _cluster_centers(
    rng: np.random.Generator, config: ClusterDistributionConfig
) -> np.ndarray:
    """Place cluster centres with Zipf-distributed gaps over the domain."""
    low, high = config.domain_low, config.domain_high
    span = float(high - low)
    if config.n_clusters == 1:
        return np.array([low + span / 2.0])
    gaps = zipf_gaps(rng, config.n_clusters - 1, config.center_skew, span, shuffle=True)
    centers = low + np.concatenate(([0.0], np.cumsum(gaps)))
    return centers


def _cluster_sizes(
    rng: np.random.Generator,
    config: ClusterDistributionConfig,
    centers: np.ndarray,
) -> np.ndarray:
    """Assign Zipf-distributed sizes to clusters, honouring the correlation mode."""
    sizes = zipf_counts(config.n_points, config.n_clusters, config.size_skew)
    if config.n_clusters == 1:
        return sizes

    # "Gap" of a cluster: space to its right neighbour (the last cluster gets
    # the average gap so every cluster has a comparable notion of spread).
    gaps = np.empty(config.n_clusters, dtype=float)
    gaps[:-1] = np.diff(centers)
    gaps[-1] = gaps[:-1].mean() if config.n_clusters > 1 else 0.0

    if config.correlation == "none":
        return rng.permutation(sizes)
    order_by_gap = np.argsort(gaps)
    sorted_sizes = np.sort(sizes)
    assigned = np.empty_like(sizes)
    if config.correlation == "positive":
        assigned[order_by_gap] = sorted_sizes
    else:  # negative: largest clusters sit in the smallest gaps
        assigned[order_by_gap] = sorted_sizes[::-1]
    return assigned


def _cluster_offsets(
    rng: np.random.Generator, config: ClusterDistributionConfig, size: int
) -> np.ndarray:
    """Draw value offsets around a cluster centre according to the shape."""
    if size == 0:
        return np.empty(0, dtype=float)
    sd = config.cluster_sd
    if sd == 0:
        return np.zeros(size, dtype=float)
    if config.shape == "normal":
        return rng.normal(0.0, sd, size)
    if config.shape == "uniform":
        half_width = sd * np.sqrt(3.0)  # uniform on [-w, w] has sd = w / sqrt(3)
        return rng.uniform(-half_width, half_width, size)
    # exponential: centred two-sided exponential with the requested sd
    scale = sd / np.sqrt(2.0)
    magnitudes = rng.exponential(scale, size)
    signs = rng.choice((-1.0, 1.0), size)
    return magnitudes * signs


def generate_cluster_values(config: ClusterDistributionConfig) -> np.ndarray:
    """Generate the raw integer attribute values of a cluster distribution.

    The returned array has exactly ``config.n_points`` entries, each an integer
    inside the configured domain.  The order of the array is arbitrary (grouped
    by cluster); workload generators decide the presentation order.
    """
    rng = np.random.default_rng(config.seed)
    centers = _cluster_centers(rng, config)
    sizes = _cluster_sizes(rng, config, centers)

    pieces = []
    for center, size in zip(centers, sizes, strict=True):
        if size == 0:
            continue
        offsets = _cluster_offsets(rng, config, int(size))
        pieces.append(center + offsets)
    if not pieces:
        return np.empty(0, dtype=int)
    values = np.concatenate(pieces)
    values = np.rint(values).astype(int)
    return np.clip(values, config.domain_low, config.domain_high)


def generate_cluster_distribution(config: ClusterDistributionConfig) -> DataDistribution:
    """Generate the exact :class:`DataDistribution` of a cluster configuration."""
    return DataDistribution(generate_cluster_values(config))
