"""Union members (sites) of the shared-nothing experiments (Section 8).

Each site holds data distributed over a random sub-range of the global
attribute domain according to a Zipf law with intra-site skew ``Z_Freq``; the
amount of data per site follows a Zipf law with skew ``Z_Site``.  A site can
build a local histogram from its data (the paper uses SSBM(V, F) histograms
for both the members and the merge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_non_negative_float, require_positive_int
from ..core.memory import MemoryModel
from ..datagen.clusters import generate_cluster_values
from ..datagen.reference import distributed_site_config
from ..datagen.zipf import zipf_counts
from ..exceptions import ConfigurationError
from ..metrics.distribution import DataDistribution
from ..static.ssbm import SSBMHistogram

__all__ = ["Site", "SiteGenerationConfig", "generate_sites"]

_DEFAULT_MEMORY_MODEL = MemoryModel()


@dataclass(frozen=True)
class SiteGenerationConfig:
    """Parameters of the shared-nothing data layout.

    Attributes
    ----------
    n_sites:
        Number of union members (``N_Site``; the paper's default is 5).
    total_points:
        Total number of tuples across all sites.
    intrasite_skew:
        ``Z_Freq`` -- skew of the value distribution within each site
        (default 1 in the paper).
    site_size_skew:
        ``Z_Site`` -- skew of the distribution of data volume across sites
        (default 0, i.e. equal volumes).
    domain:
        Global attribute domain.
    min_range_fraction:
        Smallest fraction of the global domain a site's sub-range may span.
    seed:
        Seed for placing site ranges and generating site data.
    """

    n_sites: int = 5
    total_points: int = 50_000
    intrasite_skew: float = 1.0
    site_size_skew: float = 0.0
    domain: tuple[int, int] = (0, 5000)
    min_range_fraction: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        require_positive_int(self.n_sites, "n_sites")
        require_positive_int(self.total_points, "total_points")
        require_non_negative_float(self.intrasite_skew, "intrasite_skew")
        require_non_negative_float(self.site_size_skew, "site_size_skew")
        if not 0 < self.min_range_fraction <= 1:
            raise ConfigurationError(
                f"min_range_fraction must be in (0, 1], got {self.min_range_fraction}"
            )
        if self.domain[1] <= self.domain[0]:
            raise ConfigurationError(f"domain must satisfy low < high, got {self.domain!r}")


@dataclass(frozen=True)
class Site:
    """One union member: an identifier, its value sub-range and its data."""

    site_id: int
    value_range: tuple[float, float]
    data: DataDistribution

    @property
    def size(self) -> int:
        """Number of tuples held by the site."""
        return self.data.total_count

    def build_local_histogram(
        self,
        memory_kb: float,
        *,
        memory_model: MemoryModel = _DEFAULT_MEMORY_MODEL,
    ) -> SSBMHistogram:
        """Build this site's local SSBM(V, F) histogram for a memory budget."""
        n_buckets = memory_model.buckets_for_kb("ssbm", memory_kb)
        return SSBMHistogram.build(self.data, n_buckets)


def generate_sites(config: SiteGenerationConfig) -> list[Site]:
    """Generate the union members of a shared-nothing experiment."""
    rng = np.random.default_rng(config.seed)
    domain_low, domain_high = config.domain
    span = domain_high - domain_low
    min_width = max(1.0, config.min_range_fraction * span)

    site_sizes = zipf_counts(config.total_points, config.n_sites, config.site_size_skew)
    site_sizes = rng.permutation(site_sizes)

    sites: list[Site] = []
    for site_id, size in enumerate(site_sizes):
        low = float(rng.uniform(domain_low, domain_high - min_width))
        width = float(rng.uniform(min_width, domain_high - low))
        high = low + width
        site_domain = (int(round(low)), int(round(high)))
        if site_domain[1] <= site_domain[0]:
            site_domain = (site_domain[0], site_domain[0] + 1)

        site_points = max(int(size), 1)
        site_config = distributed_site_config(
            n_points=site_points,
            intrasite_skew=config.intrasite_skew,
            domain=site_domain,
            seed=config.seed * 10_007 + site_id,
        )
        values = generate_cluster_values(site_config)
        sites.append(
            Site(
                site_id=site_id,
                value_range=(float(site_domain[0]), float(site_domain[1])),
                data=DataDistribution(values),
            )
        )
    return sites
