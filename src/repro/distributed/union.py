"""Superposition and reduction of histograms (Section 8).

*Superposition* builds a union histogram whose borders are the union of the
member histograms' borders; every member bucket is sliced at those borders
under the uniform assumption, so no information beyond what the members
already lost is discarded -- the union histogram is exactly as precise as the
member histograms.  The price is a bucket count that grows with the number of
members, so the paper *reduces* the union histogram back to the memory budget
by treating it as a data set and merging similar neighbouring buckets with the
SSBM technique.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

import numpy as np

from ..core.base import Histogram
from ..core.bucket import Bucket
from ..core.bucket_array import BucketArray
from ..core.deviation import DeviationMetric, segments_phi
from ..exceptions import ConfigurationError
from ..static.base import StaticHistogram

__all__ = ["UnionHistogram", "superimpose", "reduce_segments"]

Segment = tuple[float, float, float]


class UnionHistogram(StaticHistogram):
    """A histogram produced by superimposing (and optionally reducing) members.

    Unlike other static histograms, a union may be *empty*: a live cluster
    legitimately superimposes shards that have not received data yet, and the
    merged global histogram must still answer estimates (all zero) rather than
    fail.  Every derived read path handles the empty case already.
    """

    def __init__(self, buckets: Sequence[Bucket]) -> None:
        if buckets:
            super().__init__(buckets)
        else:
            self._array = BucketArray.empty(1)
            self.segment_view()


def superimpose(histograms: Sequence[Histogram]) -> UnionHistogram:
    """Superimpose member histograms into one union histogram.

    The result has a bucket border wherever any member has one; member bucket
    mass is split across the finer borders under the uniform assumption and
    added up.  Total count equals the sum of the member totals.
    """
    if not histograms:
        raise ConfigurationError("superimpose requires at least one histogram")

    border_values: list[float] = []
    point_masses: list[Bucket] = []
    interval_buckets: list[Bucket] = []
    for histogram in histograms:
        for bucket in histogram.buckets():
            if bucket.is_point_mass:
                point_masses.append(bucket)
            else:
                interval_buckets.append(bucket)
                border_values.extend((bucket.left, bucket.right))

    merged: list[Bucket] = []
    if interval_buckets:
        borders = np.unique(np.asarray(border_values, dtype=float))
        # Vectorised overlap computation: every member bucket's borders are in
        # the union border array, so each slot it covers is covered fully and
        # receives slot_width * bucket_density mass.  Accumulate per-bucket
        # densities as +density at the bucket's first slot and -density one
        # past its last; the running sum is then the stacked density of every
        # slot, without any per-bucket inner loop over slots.
        lefts = np.asarray([bucket.left for bucket in interval_buckets], dtype=float)
        rights = np.asarray([bucket.right for bucket in interval_buckets], dtype=float)
        bucket_counts = np.asarray(
            [bucket.count for bucket in interval_buckets], dtype=float
        )
        densities = bucket_counts / (rights - lefts)
        starts = np.searchsorted(borders, lefts, side="left")
        ends = np.searchsorted(borders, rights, side="left")
        density_deltas = np.zeros(len(borders), dtype=float)
        np.add.at(density_deltas, starts, densities)
        np.add.at(density_deltas, ends, -densities)
        # Cancellation in the running sum can leave slots covered by no bucket
        # at a tiny negative density instead of exactly zero; clamp them.
        counts = np.maximum(np.cumsum(density_deltas[:-1]) * np.diff(borders), 0.0)
        merged.extend(
            Bucket(float(borders[i]), float(borders[i + 1]), float(counts[i]))
            for i in range(len(counts))
        )

    # Combine point masses that share the same value.
    if point_masses:
        by_value: dict = {}
        for bucket in point_masses:
            by_value[bucket.left] = by_value.get(bucket.left, 0.0) + bucket.count
        merged.extend(Bucket(value, value, count) for value, count in by_value.items())

    merged.sort(key=lambda bucket: (bucket.left, bucket.right))
    # All members empty (freshly created shards): the union is empty too.
    return UnionHistogram(merged)


def reduce_segments(
    histogram: Histogram,
    n_buckets: int,
    *,
    metric: DeviationMetric | str = DeviationMetric.VARIANCE,
    value_unit: float = 1.0,
) -> UnionHistogram:
    """Reduce a histogram to ``n_buckets`` buckets by SSBM-style merging.

    The histogram's segments are treated as the data set to be partitioned:
    neighbouring groups of segments are successively merged, always choosing
    the pair of adjacent groups whose combined phi (Eq. 4) is smallest, until
    the target bucket count is reached.
    """
    if n_buckets < 1:
        raise ConfigurationError(f"n_buckets must be positive, got {n_buckets}")
    metric = DeviationMetric.coerce(metric)
    segments: list[Segment] = [
        (bucket.left, bucket.right, bucket.count) for bucket in histogram.buckets()
    ]
    # Degenerate inputs a live cluster routinely produces -- handled by
    # explicit early returns rather than trusting the merge loop's behaviour:
    if not segments:
        # An empty union (every shard still empty) reduces to an empty union.
        return UnionHistogram([])
    if len(segments) <= n_buckets:
        # Target budget at or above the current segment count (which covers
        # any single-bucket union): nothing to merge, return a copy unchanged.
        return UnionHistogram(
            [Bucket(left, right, count) for left, right, count in segments]
        )

    # Each group is a contiguous run of segments, tracked as index ranges into
    # the segment list, linked into a doubly linked list for neighbour lookup.
    n_segments = len(segments)
    start_of = list(range(n_segments))
    end_of = list(range(n_segments))
    next_group: list[int] = [i + 1 for i in range(n_segments)]
    prev_group: list[int] = [i - 1 for i in range(n_segments)]
    alive = [True] * n_segments
    version = [0] * n_segments

    def group_cost(left_group: int, right_group: int) -> float:
        merged_segments = segments[start_of[left_group] : end_of[right_group] + 1]
        return segments_phi(merged_segments, metric, value_unit=value_unit)

    heap: list[tuple[float, int, int, int, int]] = []
    for group in range(n_segments - 1):
        heapq.heappush(heap, (group_cost(group, group + 1), group, group + 1, 0, 0))

    remaining = n_segments
    while remaining > n_buckets and heap:
        _, left_group, right_group, left_version, right_version = heapq.heappop(heap)
        if not (alive[left_group] and alive[right_group]):
            continue
        if version[left_group] != left_version or version[right_group] != right_version:
            continue
        if next_group[left_group] != right_group:
            continue

        end_of[left_group] = end_of[right_group]
        alive[right_group] = False
        version[left_group] += 1
        successor = next_group[right_group]
        next_group[left_group] = successor
        if successor < n_segments:
            prev_group[successor] = left_group
        remaining -= 1

        predecessor = prev_group[left_group]
        if predecessor >= 0:
            heapq.heappush(
                heap,
                (
                    group_cost(predecessor, left_group),
                    predecessor,
                    left_group,
                    version[predecessor],
                    version[left_group],
                ),
            )
        if successor < n_segments:
            heapq.heappush(
                heap,
                (
                    group_cost(left_group, successor),
                    left_group,
                    successor,
                    version[left_group],
                    version[successor],
                ),
            )

    buckets: list[Bucket] = []
    group = 0
    while group < n_segments:
        if alive[group]:
            covered = segments[start_of[group] : end_of[group] + 1]
            left = covered[0][0]
            right = max(segment[1] for segment in covered)
            count = sum(segment[2] for segment in covered)
            buckets.append(Bucket(left, right, count))
            group = next_group[group]
        else:
            group += 1
    return UnionHistogram(buckets)
