"""Coordinator for building global histograms over a union of sites (Section 8).

Two strategies are compared in Figures 20-23 of the paper:

* ``HISTOGRAM_THEN_UNION`` -- every site builds a local SSBM histogram within
  the memory budget, the coordinator superimposes them (lossless) and reduces
  the result back to the budget with SSBM merging;
* ``UNION_THEN_HISTOGRAM`` -- the coordinator pools all site data and builds a
  single SSBM histogram directly.

The paper concludes both yield histograms of approximately the same quality;
the coordinator exposes both so the experiment can verify that.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence

from ..core.base import Histogram
from ..core.memory import MemoryModel
from ..exceptions import ConfigurationError
from ..metrics.distribution import DataDistribution
from ..metrics.ks import ks_statistic
from ..static.ssbm import SSBMHistogram
from .site import Site
from .union import reduce_segments, superimpose

__all__ = ["GlobalStrategy", "GlobalHistogramCoordinator"]


class GlobalStrategy(enum.Enum):
    """How the global histogram is assembled."""

    #: Build local histograms first, then superimpose and reduce.
    HISTOGRAM_THEN_UNION = "histogram_then_union"
    #: Pool all data first, then build one histogram.
    UNION_THEN_HISTOGRAM = "union_then_histogram"


class GlobalHistogramCoordinator:
    """Builds and evaluates global histograms over a set of sites.

    Parameters
    ----------
    sites:
        The union members.
    memory_kb:
        Memory budget of every histogram involved (local histograms, the
        reduced global histogram and the directly-built global histogram all
        get the same budget, as in the paper).
    memory_model:
        Byte cost model used to convert the budget into bucket counts.
    """

    def __init__(
        self,
        sites: Sequence[Site],
        memory_kb: float,
        *,
        memory_model: MemoryModel = MemoryModel(),
    ) -> None:
        if not sites:
            raise ConfigurationError("the coordinator needs at least one site")
        if memory_kb <= 0:
            raise ConfigurationError(f"memory_kb must be positive, got {memory_kb}")
        self._sites = list(sites)
        self._memory_kb = memory_kb
        self._memory_model = memory_model

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def sites(self) -> list[Site]:
        return list(self._sites)

    @property
    def memory_kb(self) -> float:
        return self._memory_kb

    def pooled_data(self) -> DataDistribution:
        """The exact union of all site data (the evaluation ground truth)."""
        pooled = DataDistribution()
        for site in self._sites:
            for value, frequency in site.data.to_pairs():
                pooled.add(value, frequency)
        return pooled

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def build(self, strategy: GlobalStrategy) -> Histogram:
        """Build the global histogram with the requested strategy."""
        if strategy is GlobalStrategy.HISTOGRAM_THEN_UNION:
            return self._build_histogram_then_union()
        if strategy is GlobalStrategy.UNION_THEN_HISTOGRAM:
            return self._build_union_then_histogram()
        raise ConfigurationError(f"unknown strategy {strategy!r}")

    def _global_bucket_budget(self) -> int:
        return self._memory_model.buckets_for_kb("ssbm", self._memory_kb)

    def _build_histogram_then_union(self) -> Histogram:
        local_histograms = [
            site.build_local_histogram(self._memory_kb, memory_model=self._memory_model)
            for site in self._sites
        ]
        union = superimpose(local_histograms)
        return reduce_segments(union, self._global_bucket_budget())

    def _build_union_then_histogram(self) -> Histogram:
        pooled = self.pooled_data()
        return SSBMHistogram.build(pooled, self._global_bucket_budget())

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        strategies: Iterable[GlobalStrategy] = tuple(GlobalStrategy),
        *,
        value_unit: float = 1.0,
    ) -> dict:
        """KS statistic of each strategy's global histogram against the pooled data."""
        pooled = self.pooled_data()
        return {
            strategy.value: ks_statistic(pooled, self.build(strategy), value_unit=value_unit)
            for strategy in strategies
        }
