"""Global histograms in a shared-nothing environment (Section 8 of the paper).

Large unions of tables -- across web sources or the partitions of a
shared-nothing parallel database -- need a *global* histogram built from
per-member information.  The paper evaluates two strategies:

* **histogram + union**: each member builds a local histogram; the global
  histogram is the (lossless) superposition of the local ones, reduced back to
  the memory budget with the SSBM merging technique;
* **union + histogram**: all member data is pooled first and a single
  histogram is built directly.

This package provides the member (:class:`~repro.distributed.site.Site`), the
superposition and reduction operators, and a coordinator implementing both
strategies so Figures 20-23 can be reproduced.
"""

from .site import Site, generate_sites, SiteGenerationConfig
from .union import superimpose, reduce_segments, UnionHistogram
from .coordinator import GlobalHistogramCoordinator, GlobalStrategy

__all__ = [
    "Site",
    "SiteGenerationConfig",
    "generate_sites",
    "superimpose",
    "reduce_segments",
    "UnionHistogram",
    "GlobalHistogramCoordinator",
    "GlobalStrategy",
]
