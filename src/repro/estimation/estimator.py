"""Selectivity estimation of predicates against a histogram.

The estimator clamps a predicate's interval to the histogram's value range,
estimates the number of qualifying tuples under the uniform + continuous-value
assumptions, and -- when an exact :class:`DataDistribution` is available --
reports the estimation error, which is how the cost of a bad histogram shows
up in a query optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from ..core.base import Histogram
from ..exceptions import EmptyHistogramError
from ..metrics.distribution import DataDistribution
from .predicates import Equals, Predicate

__all__ = ["SelectivityEstimator", "EstimationReport"]


@dataclass(frozen=True)
class EstimationReport:
    """Result of estimating one predicate, optionally with the true answer."""

    predicate: Predicate
    estimated_count: float
    estimated_selectivity: float
    true_count: float | None = None
    true_selectivity: float | None = None

    @property
    def absolute_error(self) -> float | None:
        """Absolute count error (None when the truth is unknown)."""
        if self.true_count is None:
            return None
        return abs(self.estimated_count - self.true_count)

    @property
    def relative_error(self) -> float | None:
        """Relative count error, with a floor of one tuple in the denominator."""
        if self.true_count is None:
            return None
        return self.absolute_error / max(self.true_count, 1.0)


class SelectivityEstimator:
    """Estimate predicate selectivities from a histogram.

    Parameters
    ----------
    histogram:
        Any histogram of the library.
    value_unit:
        Granularity of a single domain value, used for equality predicates
        (1 for integer domains).
    """

    def __init__(self, histogram: Histogram, *, value_unit: float = 1.0) -> None:
        if value_unit <= 0:
            raise ValueError(f"value_unit must be positive, got {value_unit}")
        self._histogram = histogram
        self._value_unit = value_unit

    @property
    def histogram(self) -> Histogram:
        return self._histogram

    def estimate_count(self, predicate: Predicate) -> float:
        """Estimated number of tuples satisfying ``predicate``."""
        try:
            domain_low = self._histogram.min_value
            domain_high = self._histogram.max_value
        except EmptyHistogramError:
            return 0.0
        if isinstance(predicate, Equals):
            return self._histogram.estimate_equal(
                predicate.value, value_granularity=self._value_unit
            )
        low, high = predicate.interval()
        low = max(low, domain_low)
        high = min(high, domain_high)
        if high < low:
            return 0.0
        return self._histogram.estimate_range(low, high)

    def estimate_selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of tuples satisfying ``predicate``."""
        total = self._histogram.total_count
        if total <= 0:
            return 0.0
        return self.estimate_count(predicate) / total

    def estimate_counts(self, predicates: Sequence[Predicate]) -> np.ndarray:
        """Vectorised :meth:`estimate_count` over a batch of predicates.

        Interval predicates are clamped and evaluated in one pass against the
        histogram's cached segment view; equality predicates (already O(log B)
        each) are filled in individually.
        """
        predicate_list = list(predicates)
        results = np.zeros(len(predicate_list), dtype=float)
        if not predicate_list:
            return results
        try:
            domain_low = self._histogram.min_value
            domain_high = self._histogram.max_value
        except EmptyHistogramError:
            return results

        lows = np.empty(len(predicate_list), dtype=float)
        highs = np.empty(len(predicate_list), dtype=float)
        interval_mask = np.zeros(len(predicate_list), dtype=bool)
        for index, predicate in enumerate(predicate_list):
            if isinstance(predicate, Equals):
                results[index] = self._histogram.estimate_equal(
                    predicate.value, value_granularity=self._value_unit
                )
                continue
            low, high = predicate.interval()
            lows[index] = max(low, domain_low)
            highs[index] = min(high, domain_high)
            interval_mask[index] = True
        if np.any(interval_mask):
            results[interval_mask] = self._histogram.estimate_ranges(
                lows[interval_mask], highs[interval_mask]
            )
        return results

    @staticmethod
    def _truth_for(predicate: Predicate, truth: DataDistribution | None):
        """Exact count and selectivity of ``predicate``, or ``(None, None)``."""
        if truth is None:
            return None, None
        if isinstance(predicate, Equals):
            true_count = float(truth.frequency(predicate.value))
        else:
            low, high = predicate.interval()
            true_count = truth.range_count(low, high)
        true_selectivity = true_count / truth.total_count if truth.total_count else 0.0
        return true_count, true_selectivity

    def report(
        self,
        predicate: Predicate,
        *,
        truth: DataDistribution | None = None,
    ) -> EstimationReport:
        """Estimate one predicate and, if the truth is supplied, its error."""
        estimated_count = self.estimate_count(predicate)
        estimated_selectivity = self.estimate_selectivity(predicate)
        true_count, true_selectivity = self._truth_for(predicate, truth)
        return EstimationReport(
            predicate=predicate,
            estimated_count=estimated_count,
            estimated_selectivity=estimated_selectivity,
            true_count=true_count,
            true_selectivity=true_selectivity,
        )

    def report_many(
        self,
        predicates: Iterable[Predicate],
        *,
        truth: DataDistribution | None = None,
    ) -> list[EstimationReport]:
        """Estimate a batch of predicates (vectorised over the batch)."""
        predicate_list = list(predicates)
        estimated_counts = self.estimate_counts(predicate_list)
        total = self._histogram.total_count
        reports: list[EstimationReport] = []
        for predicate, estimated_count in zip(predicate_list, estimated_counts, strict=True):
            estimated_count = float(estimated_count)
            true_count, true_selectivity = self._truth_for(predicate, truth)
            reports.append(
                EstimationReport(
                    predicate=predicate,
                    estimated_count=estimated_count,
                    estimated_selectivity=estimated_count / total if total > 0 else 0.0,
                    true_count=true_count,
                    true_selectivity=true_selectivity,
                )
            )
        return reports
