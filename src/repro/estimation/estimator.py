"""Selectivity estimation of predicates against a histogram.

The estimator clamps a predicate's interval to the histogram's value range,
estimates the number of qualifying tuples under the uniform + continuous-value
assumptions, and -- when an exact :class:`DataDistribution` is available --
reports the estimation error, which is how the cost of a bad histogram shows
up in a query optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..core.base import Histogram
from ..exceptions import EmptyHistogramError
from ..metrics.distribution import DataDistribution
from .predicates import Equals, Predicate

__all__ = ["SelectivityEstimator", "EstimationReport"]


@dataclass(frozen=True)
class EstimationReport:
    """Result of estimating one predicate, optionally with the true answer."""

    predicate: Predicate
    estimated_count: float
    estimated_selectivity: float
    true_count: Optional[float] = None
    true_selectivity: Optional[float] = None

    @property
    def absolute_error(self) -> Optional[float]:
        """Absolute count error (None when the truth is unknown)."""
        if self.true_count is None:
            return None
        return abs(self.estimated_count - self.true_count)

    @property
    def relative_error(self) -> Optional[float]:
        """Relative count error, with a floor of one tuple in the denominator."""
        if self.true_count is None:
            return None
        return self.absolute_error / max(self.true_count, 1.0)


class SelectivityEstimator:
    """Estimate predicate selectivities from a histogram.

    Parameters
    ----------
    histogram:
        Any histogram of the library.
    value_unit:
        Granularity of a single domain value, used for equality predicates
        (1 for integer domains).
    """

    def __init__(self, histogram: Histogram, *, value_unit: float = 1.0) -> None:
        if value_unit <= 0:
            raise ValueError(f"value_unit must be positive, got {value_unit}")
        self._histogram = histogram
        self._value_unit = value_unit

    @property
    def histogram(self) -> Histogram:
        return self._histogram

    def estimate_count(self, predicate: Predicate) -> float:
        """Estimated number of tuples satisfying ``predicate``."""
        try:
            domain_low = self._histogram.min_value
            domain_high = self._histogram.max_value
        except EmptyHistogramError:
            return 0.0
        if isinstance(predicate, Equals):
            return self._histogram.estimate_equal(
                predicate.value, value_granularity=self._value_unit
            )
        low, high = predicate.interval()
        low = max(low, domain_low)
        high = min(high, domain_high)
        if high < low:
            return 0.0
        return self._histogram.estimate_range(low, high)

    def estimate_selectivity(self, predicate: Predicate) -> float:
        """Estimated fraction of tuples satisfying ``predicate``."""
        total = self._histogram.total_count
        if total <= 0:
            return 0.0
        return self.estimate_count(predicate) / total

    def report(
        self,
        predicate: Predicate,
        *,
        truth: Optional[DataDistribution] = None,
    ) -> EstimationReport:
        """Estimate one predicate and, if the truth is supplied, its error."""
        estimated_count = self.estimate_count(predicate)
        estimated_selectivity = self.estimate_selectivity(predicate)
        true_count = None
        true_selectivity = None
        if truth is not None:
            if isinstance(predicate, Equals):
                true_count = float(truth.frequency(predicate.value))
            else:
                low, high = predicate.interval()
                true_count = truth.range_count(low, high)
            true_selectivity = (
                true_count / truth.total_count if truth.total_count else 0.0
            )
        return EstimationReport(
            predicate=predicate,
            estimated_count=estimated_count,
            estimated_selectivity=estimated_selectivity,
            true_count=true_count,
            true_selectivity=true_selectivity,
        )

    def report_many(
        self,
        predicates: Iterable[Predicate],
        *,
        truth: Optional[DataDistribution] = None,
    ) -> List[EstimationReport]:
        """Estimate a batch of predicates."""
        return [self.report(predicate, truth=truth) for predicate in predicates]
