"""Selectivity estimation on top of histograms.

This is the database use case that motivates the paper (Section 1): a query
optimizer needs the selectivities of predicates over numeric attributes, and a
histogram answers them approximately.  The package provides a small predicate
algebra (equality, ranges, open ranges and conjunctions over one attribute)
and a :class:`~repro.estimation.estimator.SelectivityEstimator` that evaluates
predicates against any histogram of the library, along with an error report
against the exact distribution.
"""

from .predicates import (
    Predicate,
    Equals,
    LessThan,
    LessOrEqual,
    GreaterThan,
    GreaterOrEqual,
    Between,
    And,
)
from .estimator import SelectivityEstimator, EstimationReport

__all__ = [
    "Predicate",
    "Equals",
    "LessThan",
    "LessOrEqual",
    "GreaterThan",
    "GreaterOrEqual",
    "Between",
    "And",
    "SelectivityEstimator",
    "EstimationReport",
]
