"""A small predicate algebra over a single numeric attribute.

Every predicate normalises itself to a closed interval ``[low, high]`` over
the attribute domain (possibly unbounded on one side), which is exactly what a
histogram can estimate under the uniform and continuous-value assumptions.
Conjunctions intersect intervals.  The algebra is deliberately minimal -- it
exists to give the selectivity-estimation examples realistic predicate inputs,
not to be a full expression language.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from collections.abc import Sequence

from ..exceptions import ConfigurationError

__all__ = [
    "Predicate",
    "Equals",
    "LessThan",
    "LessOrEqual",
    "GreaterThan",
    "GreaterOrEqual",
    "Between",
    "And",
]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class Predicate(abc.ABC):
    """Base class: a predicate over one numeric attribute."""

    @abc.abstractmethod
    def interval(self) -> tuple[float, float]:
        """The closed interval of attribute values satisfying the predicate.

        Open comparisons are tightened by an infinitesimal amount only at
        evaluation time; the interval representation keeps the exact bounds
        and flags, so the estimator can decide how to treat them.
        """

    @abc.abstractmethod
    def matches(self, value: float) -> bool:
        """Exact evaluation of the predicate on a single value."""

    def __and__(self, other: Predicate) -> And:
        return And((self, other))


@dataclass(frozen=True)
class Equals(Predicate):
    """``X = value``."""

    value: float

    def interval(self) -> tuple[float, float]:
        return (self.value, self.value)

    def matches(self, value: float) -> bool:
        return value == self.value


@dataclass(frozen=True)
class LessOrEqual(Predicate):
    """``X <= bound``."""

    bound: float

    def interval(self) -> tuple[float, float]:
        return (_NEG_INF, self.bound)

    def matches(self, value: float) -> bool:
        return value <= self.bound


@dataclass(frozen=True)
class LessThan(Predicate):
    """``X < bound`` (treated as ``X <= bound`` minus the point mass at the bound)."""

    bound: float

    def interval(self) -> tuple[float, float]:
        return (_NEG_INF, math.nextafter(self.bound, _NEG_INF))

    def matches(self, value: float) -> bool:
        return value < self.bound


@dataclass(frozen=True)
class GreaterOrEqual(Predicate):
    """``X >= bound``."""

    bound: float

    def interval(self) -> tuple[float, float]:
        return (self.bound, _POS_INF)

    def matches(self, value: float) -> bool:
        return value >= self.bound


@dataclass(frozen=True)
class GreaterThan(Predicate):
    """``X > bound`` (treated as ``X >= bound`` minus the point mass at the bound)."""

    bound: float

    def interval(self) -> tuple[float, float]:
        return (math.nextafter(self.bound, _POS_INF), _POS_INF)

    def matches(self, value: float) -> bool:
        return value > self.bound


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= X <= high``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ConfigurationError(
                f"Between requires low <= high, got [{self.low}, {self.high}]"
            )

    def interval(self) -> tuple[float, float]:
        return (self.low, self.high)

    def matches(self, value: float) -> bool:
        return self.low <= value <= self.high


class And(Predicate):
    """Conjunction of predicates over the same attribute (interval intersection)."""

    def __init__(self, parts: Sequence[Predicate]) -> None:
        if not parts:
            raise ConfigurationError("And requires at least one predicate")
        self._parts = tuple(parts)

    @property
    def parts(self) -> tuple[Predicate, ...]:
        return self._parts

    def interval(self) -> tuple[float, float]:
        low = _NEG_INF
        high = _POS_INF
        for part in self._parts:
            part_low, part_high = part.interval()
            low = max(low, part_low)
            high = min(high, part_high)
        return (low, high)

    def matches(self, value: float) -> bool:
        return all(part.matches(value) for part in self._parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return " AND ".join(repr(part) for part in self._parts)
