"""Exception hierarchy for the :mod:`repro` dynamic-histogram library.

All library-specific errors derive from :class:`HistogramError`, so callers can
catch a single base class.  More specific subclasses indicate configuration
problems, invalid update operations, or inconsistent internal state.
"""

from __future__ import annotations

__all__ = [
    "HistogramError",
    "ConfigurationError",
    "EmptyHistogramError",
    "DomainError",
    "DeletionError",
    "InsufficientDataError",
    "ServiceError",
    "UnknownAttributeError",
    "DuplicateAttributeError",
    "ClusterError",
    "ShardUnavailableError",
]


class HistogramError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(HistogramError, ValueError):
    """An invalid parameter was supplied when configuring a component.

    Examples: a non-positive bucket budget, a negative memory size, an unknown
    histogram kind passed to a factory, or a Zipf skew below zero.
    """


class EmptyHistogramError(HistogramError):
    """An operation that requires data was invoked on an empty histogram."""


class DomainError(HistogramError, ValueError):
    """A value falls outside the domain a component was configured for."""


class DeletionError(HistogramError):
    """A deletion could not be applied.

    Raised, for instance, when deleting from a histogram that contains no
    points at all (deleting from an empty *bucket* is handled by the
    closest-bucket spill policy described in Section 7.3 of the paper and does
    not raise).
    """


class InsufficientDataError(HistogramError):
    """Not enough data has been observed to perform the requested operation.

    Dynamic histograms raise this when asked to produce estimates before the
    initial loading phase (the first ``n`` distinct points) has completed and
    no buckets exist yet.
    """


class ServiceError(HistogramError):
    """Base class for errors raised by the statistics service layer."""


class UnknownAttributeError(ServiceError, KeyError):
    """An operation referred to an attribute the store does not manage."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"unknown attribute {self.name!r}; create it first"


class DuplicateAttributeError(ServiceError, ValueError):
    """An attribute with the requested name already exists in the store."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"attribute {self.name!r} already exists"


class ClusterError(ServiceError):
    """Base class for errors raised by the sharded statistics cluster layer."""


class ShardUnavailableError(ClusterError):
    """A shard could not be reached (after the client's bounded retries)."""

    def __init__(self, shard_id: str, cause: Exception) -> None:
        super().__init__(shard_id, cause)
        self.shard_id = shard_id
        self.cause = cause

    def __str__(self) -> str:
        return f"shard {self.shard_id!r} is unavailable: {self.cause}"
