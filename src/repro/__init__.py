"""repro: dynamic histograms for evolving data sets.

A from-scratch reproduction of *"Dynamic Histograms: Capturing Evolving Data
Sets"* (Donjerkovic, Ioannidis & Ramakrishnan, ICDE 2000): incrementally
maintained histograms (DC, DVO, DADO), the new static SSBM and SADO
histograms, the classic static baselines, the sampling-based Approximate
Compressed comparator, selectivity estimation, shared-nothing global
histograms, and an experiment harness that regenerates every figure of the
paper's evaluation.

Quickstart
----------

>>> from repro import DADOHistogram, DataDistribution, ks_statistic
>>> histogram = DADOHistogram(n_buckets=32)
>>> truth = DataDistribution()
>>> for value in range(1000):
...     histogram.insert(value % 97)
...     truth.add(value % 97)
>>> ks_statistic(truth, histogram) < 0.1
True
"""

from .exceptions import (
    ClusterError,
    ConfigurationError,
    DeletionError,
    DomainError,
    DuplicateAttributeError,
    EmptyHistogramError,
    HistogramError,
    InsufficientDataError,
    ServiceError,
    ShardUnavailableError,
    UnknownAttributeError,
)
from .metrics import (
    DataDistribution,
    average_relative_error,
    chi_square_probability,
    chi_square_statistic,
    ks_statistic,
    ks_statistic_between,
)
from .core import (
    Bucket,
    SubBucketedBucket,
    Histogram,
    DynamicHistogram,
    MemoryModel,
    buckets_for_memory,
    DeviationMetric,
    DCHistogram,
    DVOHistogram,
    DADOHistogram,
    build_dynamic_histogram,
    build_static_histogram,
)
from .static import (
    CompressedHistogram,
    EquiDepthHistogram,
    EquiWidthHistogram,
    ExactHistogram,
    SADOHistogram,
    SSBMHistogram,
    VOptimalHistogram,
)
from .sampling import ApproximateCompressedHistogram, BackingSample, ReservoirSampler
from .datagen import (
    ClusterDistributionConfig,
    MailOrderConfig,
    generate_cluster_distribution,
    generate_cluster_values,
    generate_mail_order_values,
    reference_config,
    static_comparison_config,
)
from .workloads import (
    UpdateOp,
    UpdateStream,
    random_insertions,
    sorted_insertions,
    insertions_with_interleaved_deletions,
    insertions_then_random_deletions,
    sorted_insertions_then_sorted_deletions,
)
from .estimation import SelectivityEstimator, Between, Equals
from .distributed import (
    GlobalHistogramCoordinator,
    GlobalStrategy,
    Site,
    SiteGenerationConfig,
    generate_sites,
    superimpose,
    reduce_segments,
)
from .experiments import ExperimentSettings, SweepResult, format_sweep_table
from .persistence import (
    FrozenHistogram,
    freeze,
    histogram_from_dict,
    histogram_to_dict,
    load_histogram,
    save_histogram,
)
# The service and cluster layers (HTTP server, threading pipeline, shard
# fan-out) are re-exported lazily via module __getattr__ below, so `import
# repro` for the figure experiments and library users never pays for the
# http.server/http.client stack.
_SERVICE_EXPORTS = frozenset(
    [
        "AttributeStats",
        "DurabilityConfig",
        "HistogramStore",
        "IngestPipeline",
        "StatisticsServer",
        "StatisticsClient",
        "WriteAheadLog",
    ]
)
_CLUSTER_EXPORTS = frozenset(
    [
        "ClusterCoordinator",
        "ClusterClient",
        "ClusterServer",
        "LocalShard",
        "RemoteShard",
        "ShardBackend",
        "ShardRouter",
        "RangePartition",
    ]
)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    if name in _CLUSTER_EXPORTS:
        from . import cluster

        return getattr(cluster, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "HistogramError",
    "ConfigurationError",
    "EmptyHistogramError",
    "DomainError",
    "DeletionError",
    "InsufficientDataError",
    "ServiceError",
    "UnknownAttributeError",
    "DuplicateAttributeError",
    "ClusterError",
    "ShardUnavailableError",
    # metrics
    "DataDistribution",
    "ks_statistic",
    "ks_statistic_between",
    "chi_square_statistic",
    "chi_square_probability",
    "average_relative_error",
    # core
    "Bucket",
    "SubBucketedBucket",
    "Histogram",
    "DynamicHistogram",
    "MemoryModel",
    "buckets_for_memory",
    "DeviationMetric",
    "DCHistogram",
    "DVOHistogram",
    "DADOHistogram",
    "build_dynamic_histogram",
    "build_static_histogram",
    # static
    "ExactHistogram",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "CompressedHistogram",
    "VOptimalHistogram",
    "SADOHistogram",
    "SSBMHistogram",
    # sampling
    "ReservoirSampler",
    "BackingSample",
    "ApproximateCompressedHistogram",
    # data generation
    "ClusterDistributionConfig",
    "MailOrderConfig",
    "generate_cluster_values",
    "generate_cluster_distribution",
    "generate_mail_order_values",
    "reference_config",
    "static_comparison_config",
    # workloads
    "UpdateOp",
    "UpdateStream",
    "random_insertions",
    "sorted_insertions",
    "insertions_with_interleaved_deletions",
    "insertions_then_random_deletions",
    "sorted_insertions_then_sorted_deletions",
    # estimation
    "SelectivityEstimator",
    "Equals",
    "Between",
    # distributed
    "Site",
    "SiteGenerationConfig",
    "generate_sites",
    "superimpose",
    "reduce_segments",
    "GlobalHistogramCoordinator",
    "GlobalStrategy",
    # experiments
    "ExperimentSettings",
    "SweepResult",
    "format_sweep_table",
    # persistence
    "FrozenHistogram",
    "freeze",
    "histogram_to_dict",
    "histogram_from_dict",
    "save_histogram",
    "load_histogram",
    # service
    "AttributeStats",
    "HistogramStore",
    "IngestPipeline",
    "StatisticsServer",
    "StatisticsClient",
    # cluster
    "ClusterCoordinator",
    "ClusterClient",
    "ClusterServer",
    "LocalShard",
    "RemoteShard",
    "ShardBackend",
    "ShardRouter",
    "RangePartition",
]
