"""Range-query workloads for error metrics and selectivity-estimation examples.

The Eq. (7) error metric depends on a set of range queries; the paper discusses
two natural choices for the distribution of query endpoints -- uniform over the
domain and the data distribution itself -- as well as open versus closed
ranges.  All three generators are provided so that users can reproduce that
discussion and so the estimation examples have realistic predicate workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from .._validation import require_positive_int
from ..exceptions import ConfigurationError
from ..metrics.distribution import DataDistribution

__all__ = [
    "RangeQuery",
    "uniform_range_queries",
    "data_distributed_range_queries",
    "open_range_queries",
]


@dataclass(frozen=True)
class RangeQuery:
    """A closed range predicate ``low <= X <= high``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ConfigurationError(
                f"range query must satisfy low <= high, got [{self.low}, {self.high}]"
            )

    def as_tuple(self) -> tuple[float, float]:
        return (self.low, self.high)


def _to_tuples(queries: Sequence[RangeQuery]) -> list[tuple[float, float]]:
    return [q.as_tuple() for q in queries]


def uniform_range_queries(
    domain: tuple[float, float],
    n_queries: int,
    *,
    seed: int = 0,
) -> list[RangeQuery]:
    """Range queries whose endpoints are uniform over the domain."""
    require_positive_int(n_queries, "n_queries")
    low, high = domain
    if high <= low:
        raise ConfigurationError(f"domain must satisfy low < high, got {domain!r}")
    rng = np.random.default_rng(seed)
    a = rng.uniform(low, high, n_queries)
    b = rng.uniform(low, high, n_queries)
    lows = np.minimum(a, b)
    highs = np.maximum(a, b)
    return [RangeQuery(float(lo), float(hi)) for lo, hi in zip(lows, highs, strict=True)]


def data_distributed_range_queries(
    data: DataDistribution,
    n_queries: int,
    *,
    seed: int = 0,
) -> list[RangeQuery]:
    """Range queries whose endpoints are drawn from the data distribution itself."""
    require_positive_int(n_queries, "n_queries")
    if data.total_count == 0:
        raise ConfigurationError("data distribution must be non-empty")
    rng = np.random.default_rng(seed)
    values = data.values
    frequencies = data.frequencies
    probabilities = frequencies / frequencies.sum()
    a = rng.choice(values, size=n_queries, p=probabilities)
    b = rng.choice(values, size=n_queries, p=probabilities)
    lows = np.minimum(a, b)
    highs = np.maximum(a, b)
    return [RangeQuery(float(lo), float(hi)) for lo, hi in zip(lows, highs, strict=True)]


def open_range_queries(
    domain: tuple[float, float],
    n_queries: int,
    *,
    seed: int = 0,
) -> list[RangeQuery]:
    """One-sided range queries ``X <= b`` expressed as ``[domain_low, b]``."""
    require_positive_int(n_queries, "n_queries")
    low, high = domain
    if high <= low:
        raise ConfigurationError(f"domain must satisfy low < high, got {domain!r}")
    rng = np.random.default_rng(seed)
    uppers = rng.uniform(low, high, n_queries)
    return [RangeQuery(float(low), float(b)) for b in uppers]
