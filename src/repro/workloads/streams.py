"""Update streams: sequences of insertions and deletions over attribute values.

An :class:`UpdateStream` is an ordered sequence of :class:`UpdateOp` records.
It can be replayed against any dynamic histogram (and, in parallel, against the
exact :class:`~repro.metrics.distribution.DataDistribution` ground truth) by
the experiment runner.  The factory functions below build the update patterns
evaluated in Section 7 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from .._validation import require_probability
from ..exceptions import ConfigurationError

__all__ = [
    "UpdateOp",
    "UpdateStream",
    "random_insertions",
    "sorted_insertions",
    "insertions_with_interleaved_deletions",
    "insertions_then_random_deletions",
    "sorted_insertions_then_sorted_deletions",
]

INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class UpdateOp:
    """A single update: insert or delete one occurrence of ``value``."""

    kind: str
    value: float

    def __post_init__(self) -> None:
        if self.kind not in (INSERT, DELETE):
            raise ConfigurationError(f"kind must be 'insert' or 'delete', got {self.kind!r}")

    @property
    def is_insert(self) -> bool:
        return self.kind == INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind == DELETE


class UpdateStream:
    """An ordered sequence of update operations.

    The stream is immutable once built; iteration yields :class:`UpdateOp`
    records in order.  Convenience accessors report the number of insertions
    and deletions and the multiset of values that remain live after replaying
    the whole stream.
    """

    def __init__(self, operations: Iterable[UpdateOp]) -> None:
        self._ops: list[UpdateOp] = list(operations)

    def __iter__(self) -> Iterator[UpdateOp]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index: int) -> UpdateOp:
        return self._ops[index]

    @property
    def operations(self) -> list[UpdateOp]:
        """A copy of the operation list."""
        return list(self._ops)

    @property
    def insert_count(self) -> int:
        return sum(1 for op in self._ops if op.is_insert)

    @property
    def delete_count(self) -> int:
        return sum(1 for op in self._ops if op.is_delete)

    def live_values(self) -> list[float]:
        """Values that remain after all insertions and deletions are applied."""
        from collections import Counter

        counts: Counter[float] = Counter()
        for op in self._ops:
            if op.is_insert:
                counts[op.value] += 1
            else:
                counts[op.value] -= 1
        result: list[float] = []
        for value, count in counts.items():
            if count < 0:
                raise ConfigurationError(
                    f"stream deletes value {value!r} more often than it inserts it"
                )
            result.extend([value] * count)
        return result

    def prefix(self, n_operations: int) -> UpdateStream:
        """The stream consisting of the first ``n_operations`` operations."""
        if n_operations < 0:
            raise ConfigurationError(f"n_operations must be non-negative, got {n_operations}")
        return UpdateStream(self._ops[:n_operations])

    @staticmethod
    def inserts(values: Iterable[float]) -> UpdateStream:
        """A stream that inserts each value in the given order."""
        return UpdateStream(UpdateOp(INSERT, float(v)) for v in values)


def _as_array(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(f"values must be one-dimensional, got shape {arr.shape}")
    return arr


def random_insertions(values: Sequence[float], *, seed: int = 0) -> UpdateStream:
    """Insert every value exactly once, in uniformly random order (§7.1)."""
    arr = _as_array(values)
    rng = np.random.default_rng(seed)
    return UpdateStream.inserts(rng.permutation(arr))


def sorted_insertions(values: Sequence[float], *, descending: bool = False) -> UpdateStream:
    """Insert every value exactly once, in sorted order (§7.2)."""
    arr = np.sort(_as_array(values))
    if descending:
        arr = arr[::-1]
    return UpdateStream.inserts(arr)


def insertions_with_interleaved_deletions(
    values: Sequence[float],
    *,
    delete_probability: float = 0.25,
    seed: int = 0,
    sorted_inserts: bool = False,
) -> UpdateStream:
    """Insertions with each followed, with some probability, by a random deletion.

    This reproduces the workload of Section 7.3.1: data is inserted (optionally
    in sorted order) and after every insertion one previously inserted, not yet
    deleted tuple is chosen uniformly at random and deleted with probability
    ``delete_probability``.
    """
    require_probability(delete_probability, "delete_probability")
    arr = _as_array(values)
    rng = np.random.default_rng(seed)
    order = np.sort(arr) if sorted_inserts else rng.permutation(arr)

    operations: list[UpdateOp] = []
    live: list[float] = []
    for value in order:
        operations.append(UpdateOp(INSERT, float(value)))
        live.append(float(value))
        if live and rng.random() < delete_probability:
            victim_index = int(rng.integers(len(live)))
            victim = live.pop(victim_index)
            operations.append(UpdateOp(DELETE, victim))
    return UpdateStream(operations)


def insertions_then_random_deletions(
    values: Sequence[float],
    *,
    delete_fraction: float = 0.5,
    seed: int = 0,
    sorted_inserts: bool = False,
) -> UpdateStream:
    """Insert everything, then delete a random fraction of the inserted values.

    Covers both "random insertions followed by random deletions" (Fig. 17) and
    "random deletions after sorted insertions" (Fig. 18), depending on
    ``sorted_inserts``.
    """
    require_probability(delete_fraction, "delete_fraction")
    arr = _as_array(values)
    rng = np.random.default_rng(seed)
    order = np.sort(arr) if sorted_inserts else rng.permutation(arr)

    n_delete = int(round(delete_fraction * len(order)))
    victims = rng.permutation(order)[:n_delete]

    operations = [UpdateOp(INSERT, float(v)) for v in order]
    operations.extend(UpdateOp(DELETE, float(v)) for v in victims)
    return UpdateStream(operations)


def sorted_insertions_then_sorted_deletions(
    values: Sequence[float],
    *,
    delete_fraction: float = 0.5,
    descending_deletes: bool = False,
) -> UpdateStream:
    """Sorted insertions followed by sorted deletions of a prefix of the data.

    This is the hardest pattern the paper identifies for DADO (§7.3): the
    deletions drain the buckets from one end, exposing the closest-bucket spill
    policy.
    """
    require_probability(delete_fraction, "delete_fraction")
    arr = np.sort(_as_array(values))
    n_delete = int(round(delete_fraction * len(arr)))
    victims = arr[:n_delete] if not descending_deletes else arr[::-1][:n_delete]

    operations = [UpdateOp(INSERT, float(v)) for v in arr]
    operations.extend(UpdateOp(DELETE, float(v)) for v in victims)
    return UpdateStream(operations)
