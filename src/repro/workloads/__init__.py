"""Update-stream and query workloads used in the paper's evaluation (Section 7).

The paper evaluates dynamic histograms under five update patterns -- random
insertions, sorted insertions, random insertions intermixed with random
deletions, random insertions followed by random deletions, and sorted
insertions followed by sorted deletions -- plus a real-world trace.  This
package turns a set of raw attribute values into a concrete stream of
:class:`~repro.workloads.streams.UpdateOp` operations for each of those
patterns, and generates the range-query workloads used by the Eq. (7) error
metric and the selectivity-estimation examples.
"""

from .streams import (
    UpdateOp,
    UpdateStream,
    random_insertions,
    sorted_insertions,
    insertions_with_interleaved_deletions,
    insertions_then_random_deletions,
    sorted_insertions_then_sorted_deletions,
)
from .queries import (
    RangeQuery,
    uniform_range_queries,
    data_distributed_range_queries,
    open_range_queries,
)

__all__ = [
    "UpdateOp",
    "UpdateStream",
    "random_insertions",
    "sorted_insertions",
    "insertions_with_interleaved_deletions",
    "insertions_then_random_deletions",
    "sorted_insertions_then_sorted_deletions",
    "RangeQuery",
    "uniform_range_queries",
    "data_distributed_range_queries",
    "open_range_queries",
]
