"""Memory model: translating a byte budget into bucket counts per histogram class.

The paper compares algorithms at equal *memory*, expressed in kilobytes
(Figures 8, 12, 19, 20).  Different histogram classes spend that memory
differently:

* a Compressed-family bucket (DC, SC, Equi-Depth, Equi-Width, SSBM, SVO, SADO)
  stores one border and one counter -- ``(n + 1) * sizeof(float) + n *
  sizeof(int)`` bytes for ``n`` buckets (Section 3.1);
* a DVO / DADO bucket stores one border and two sub-bucket counters --
  ``(n + 1) * sizeof(float) + 2n * sizeof(int)`` bytes (Section 4.4);
* the Approximate Compressed histogram spends the same in-memory budget as a
  Compressed histogram and additionally keeps a backing sample on disk whose
  size is a configurable multiple of the memory budget (Section 7).

:class:`MemoryModel` centralises those conversions so every experiment gives
all algorithms exactly the same memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require_positive_float, require_positive_int
from ..exceptions import ConfigurationError

__all__ = ["MemoryModel", "buckets_for_memory"]

#: Histogram kinds that store one counter per bucket.
_SINGLE_COUNTER_KINDS = frozenset(
    {"dc", "sc", "compressed", "equi_depth", "equi_width", "ssbm", "svo", "sado", "ac", "exact"}
)
#: Histogram kinds that store two sub-bucket counters per bucket.
_DOUBLE_COUNTER_KINDS = frozenset({"dvo", "dado"})


@dataclass(frozen=True)
class MemoryModel:
    """Byte-level cost model for histogram buckets.

    Attributes
    ----------
    bytes_per_border:
        Size of a stored bucket border (the paper assumes 4-byte floats).
    bytes_per_counter:
        Size of a stored point counter (4-byte integers in the paper).
    """

    bytes_per_border: int = 4
    bytes_per_counter: int = 4

    def __post_init__(self) -> None:
        require_positive_int(self.bytes_per_border, "bytes_per_border")
        require_positive_int(self.bytes_per_counter, "bytes_per_counter")

    # ------------------------------------------------------------------
    # bucket budgets
    # ------------------------------------------------------------------
    def buckets_for_kb(self, kind: str, memory_kb: float) -> int:
        """Largest bucket count of the given histogram kind fitting in ``memory_kb``."""
        require_positive_float(memory_kb, "memory_kb")
        return self.buckets_for_bytes(kind, memory_kb * 1024.0)

    def buckets_for_bytes(self, kind: str, memory_bytes: float) -> int:
        """Largest bucket count of the given histogram kind fitting in ``memory_bytes``."""
        require_positive_float(memory_bytes, "memory_bytes")
        counters = self._counters_per_bucket(kind)
        per_bucket = self.bytes_per_border + counters * self.bytes_per_counter
        usable = memory_bytes - self.bytes_per_border  # the extra closing border
        n_buckets = int(usable // per_bucket)
        if n_buckets < 1:
            raise ConfigurationError(
                f"{memory_bytes} bytes is not enough for a single {kind!r} bucket"
            )
        return n_buckets

    def bytes_for_buckets(self, kind: str, n_buckets: int) -> int:
        """Exact number of bytes used by ``n_buckets`` buckets of the given kind."""
        require_positive_int(n_buckets, "n_buckets")
        counters = self._counters_per_bucket(kind)
        return (n_buckets + 1) * self.bytes_per_border + counters * n_buckets * self.bytes_per_counter

    # ------------------------------------------------------------------
    # backing-sample budget (Approximate Compressed histogram)
    # ------------------------------------------------------------------
    def backing_sample_size(self, memory_kb: float, disk_factor: float) -> int:
        """Number of sample tuples the AC histogram's backing sample may hold.

        The paper gives the AC histogram disk space equal to ``disk_factor``
        times the main-memory budget (20 by default); each sampled value costs
        one border-sized slot.
        """
        require_positive_float(memory_kb, "memory_kb")
        require_positive_float(disk_factor, "disk_factor")
        disk_bytes = memory_kb * 1024.0 * disk_factor
        sample_size = int(disk_bytes // self.bytes_per_border)
        if sample_size < 1:
            raise ConfigurationError(
                f"disk budget {disk_bytes} bytes cannot hold a single sample value"
            )
        return sample_size

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _counters_per_bucket(self, kind: str) -> int:
        normalized = kind.lower()
        if normalized in _SINGLE_COUNTER_KINDS:
            return 1
        if normalized in _DOUBLE_COUNTER_KINDS:
            return 2
        raise ConfigurationError(f"unknown histogram kind {kind!r}")


#: Module-level default model matching the paper's 4-byte borders and counters.
_DEFAULT_MODEL = MemoryModel()


def buckets_for_memory(kind: str, memory_kb: float) -> int:
    """Bucket budget of ``kind`` for ``memory_kb`` kilobytes (default cost model)."""
    return _DEFAULT_MODEL.buckets_for_kb(kind, memory_kb)
