"""Convenience factories: build histograms by name and memory budget.

The experiment harness and the examples refer to histogram classes by the
short names the paper uses (DC, DVO, DADO, AC, SC, SVO, SADO, SSBM, ...).
These helpers translate a ``(kind, memory_kb)`` pair into a configured
instance, using the shared :class:`~repro.core.memory.MemoryModel` so every
algorithm in an experiment gets exactly the same memory.
"""

from __future__ import annotations


from ..exceptions import ConfigurationError
from ..metrics.distribution import DataDistribution
from .base import DynamicHistogram, Histogram
from .dynamic_compressed import DCHistogram
from .dynamic_vopt import DADOHistogram, DVOHistogram
from .memory import MemoryModel

__all__ = ["build_dynamic_histogram", "build_static_histogram"]

_DEFAULT_MEMORY_MODEL = MemoryModel()


def build_dynamic_histogram(
    kind: str,
    memory_kb: float,
    *,
    value_unit: float = 1.0,
    disk_factor: float = 20.0,
    seed: int = 0,
    memory_model: MemoryModel | None = None,
) -> DynamicHistogram:
    """Build a dynamic histogram of the given kind for a memory budget in KB.

    Supported kinds: ``"dc"``, ``"dvo"``, ``"dado"`` and ``"ac"`` (the
    Approximate Compressed comparator; ``disk_factor`` controls its backing
    sample, 20x memory by default as in the paper).
    """
    model = memory_model or _DEFAULT_MEMORY_MODEL
    normalized = kind.lower()
    if normalized == "dc":
        return DCHistogram(model.buckets_for_kb("dc", memory_kb), value_unit=value_unit)
    if normalized == "dvo":
        return DVOHistogram(model.buckets_for_kb("dvo", memory_kb), value_unit=value_unit)
    if normalized == "dado":
        return DADOHistogram(model.buckets_for_kb("dado", memory_kb), value_unit=value_unit)
    if normalized == "ac":
        # Imported lazily to avoid a circular import at package load time.
        from ..sampling.approximate import ApproximateCompressedHistogram

        return ApproximateCompressedHistogram(
            model.buckets_for_kb("ac", memory_kb),
            sample_size=model.backing_sample_size(memory_kb, disk_factor),
            seed=seed,
        )
    raise ConfigurationError(
        f"unknown dynamic histogram kind {kind!r}; expected one of: dc, dvo, dado, ac"
    )


def build_static_histogram(
    kind: str,
    data: DataDistribution,
    memory_kb: float,
    *,
    memory_model: MemoryModel | None = None,
) -> Histogram:
    """Build a static histogram of the given kind from exact data.

    Supported kinds: ``"equi_width"``, ``"equi_depth"``, ``"sc"`` (static
    Compressed), ``"svo"`` (static V-Optimal), ``"sado"``, ``"ssbm"`` and
    ``"exact"``.
    """
    # Imported lazily to avoid a circular import at package load time.
    from ..static import (
        CompressedHistogram,
        EquiDepthHistogram,
        EquiWidthHistogram,
        ExactHistogram,
        SADOHistogram,
        SSBMHistogram,
        VOptimalHistogram,
    )

    model = memory_model or _DEFAULT_MEMORY_MODEL
    normalized = kind.lower()
    classes = {
        "equi_width": EquiWidthHistogram,
        "equi_depth": EquiDepthHistogram,
        "sc": CompressedHistogram,
        "compressed": CompressedHistogram,
        "svo": VOptimalHistogram,
        "v_optimal": VOptimalHistogram,
        "sado": SADOHistogram,
        "ssbm": SSBMHistogram,
        "exact": ExactHistogram,
    }
    if normalized not in classes:
        raise ConfigurationError(
            f"unknown static histogram kind {kind!r}; expected one of: {sorted(classes)}"
        )
    histogram_class = classes[normalized]
    if normalized == "exact":
        return histogram_class.build(data)
    budget_kind = "sc" if normalized in ("compressed", "v_optimal") else normalized
    n_buckets = model.buckets_for_kb(budget_kind, memory_kb)
    return histogram_class.build(data, n_buckets)
