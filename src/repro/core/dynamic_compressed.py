"""Dynamic Compressed (DC) histogram (Section 3 of the paper).

A Compressed histogram keeps the highest-frequency values in *singular*
(singleton) buckets and partitions the rest equi-depth into *regular* buckets.
The dynamic version maintains this structure incrementally:

* the first ``n`` distinct points build the initial buckets (loading phase);
* every subsequent point is routed to its bucket by binary search and the
  bucket counter is incremented (end buckets stretch to cover out-of-range
  points);
* when the counts of the regular buckets deviate from uniformity so strongly
  that a Chi-square test rejects the null hypothesis of equal counts at
  significance ``alpha_min`` (1e-6 by default), the histogram *repartitions*:
  singular buckets that fell below the threshold ``T = N / n`` are degraded to
  regular mass, bucket borders are recomputed so all regular buckets have equal
  counts again (using the uniform assumption inside the old buckets, so total
  count is preserved), and narrow heavy buckets are promoted to singular.

Cost: O(log n) per insertion plus occasional O(n) repartitions -- the
O(N log n) total the paper reports in Section 3.1.

The regular buckets live in a contiguous
:class:`~repro.core.bucket_array.BucketArray` (ascending borders sharing
``rights[i] == lefts[i + 1]``, one counter per bucket); singular buckets stay
a value-keyed dict for O(1) membership tests on the insert hot path.  The
``buckets()`` list and the segment view are derived from those arrays, and
batched deletes bin a whole in-range batch against the border array in one
``searchsorted`` + ``bincount`` pass.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._validation import require_positive_float, require_positive_int, require_probability
from ..exceptions import DeletionError, InsufficientDataError
from ..metrics.chi_square import chi_square_probability
from .base import DynamicHistogram
from .bucket import Bucket
from .bucket_array import BucketArray
from .segment_view import SegmentView

__all__ = ["DCHistogram"]

#: Default significance threshold below which repartitioning is triggered.
DEFAULT_ALPHA_MIN = 1.0e-6

#: Below this batch size the vectorised delete path costs more than it saves.
_VECTOR_MIN_BATCH = 32


class DCHistogram(DynamicHistogram):
    """Dynamic Compressed histogram with a Chi-square repartitioning trigger.

    Parameters
    ----------
    n_buckets:
        Total bucket budget (singular + regular), fixed by available memory.
    alpha_min:
        Significance threshold of the Chi-square uniformity test; lower values
        repartition less often.  The paper uses 1e-6 and reports that results
        are insensitive to the exact value as long as it is much below 1.
    value_unit:
        Spacing between adjacent domain values; a regular bucket whose width is
        at most one value unit and whose count exceeds the singular threshold
        is promoted to a singular bucket (``1.0`` for integer domains).
    """

    def __init__(
        self,
        n_buckets: int,
        *,
        alpha_min: float = DEFAULT_ALPHA_MIN,
        value_unit: float = 1.0,
    ) -> None:
        require_positive_int(n_buckets, "n_buckets")
        require_probability(alpha_min, "alpha_min")
        require_positive_float(value_unit, "value_unit")
        self._budget = n_buckets
        self._alpha_min = alpha_min
        self._value_unit = value_unit

        # Loading phase buffer: distinct value -> count.
        self._loading: dict[float, int] | None = {}

        # Regular buckets: contiguous ranges in one structure of arrays
        # (rights[i] == lefts[i + 1]; the end borders stretch to absorb
        # out-of-range points).
        self._array: BucketArray = BucketArray.empty(1)

        # Singular buckets: point masses keyed by value.
        self._singular: dict[float, float] = {}

        # Running statistics of regular counts for the O(1) Chi-square check.
        self._regular_total = 0.0
        self._regular_sumsq = 0.0

        self._repartition_count = 0

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------
    @property
    def bucket_budget(self) -> int:
        """Total number of buckets the histogram may use."""
        return self._budget

    @property
    def alpha_min(self) -> float:
        """Significance threshold of the repartitioning trigger."""
        return self._alpha_min

    @property
    def repartition_count(self) -> int:
        """Number of repartitions performed so far (border relocations)."""
        return self._repartition_count

    @property
    def is_loading(self) -> bool:
        """True while the initial loading phase is still buffering points."""
        return self._loading is not None

    @property
    def singular_value_count(self) -> int:
        """Number of singular (singleton) buckets currently in use."""
        return 0 if self._loading is not None else len(self._singular)

    @property
    def bucket_array(self) -> BucketArray:
        """The live regular-bucket arrays (empty during the loading phase).

        The single source of truth for the regular partition; treat as
        read-only outside maintenance code.
        """
        return self._array

    # ------------------------------------------------------------------
    # read API (derived views of the array state)
    # ------------------------------------------------------------------
    def buckets(self) -> list[Bucket]:
        if self._loading is not None:
            # During loading every buffered distinct value is its own bucket.
            return [
                Bucket(value, value, float(count))
                for value, count in sorted(self._loading.items())
            ]
        array = self._array
        result: list[Bucket] = [
            Bucket(float(array.lefts[i]), float(array.rights[i]), float(array.sub_counts[i, 0]))
            for i in range(len(array))
        ]
        for value, count in self._singular.items():
            result.append(Bucket(value, value, count))
        result.sort(key=lambda bucket: (bucket.left, bucket.right))
        return result

    def _build_view(self) -> SegmentView:
        """Segment view straight from the live arrays (no Bucket objects)."""
        if self._loading is not None:
            items = sorted(self._loading.items())
            values = np.asarray([value for value, _ in items], dtype=float)
            counts = np.asarray([float(count) for _, count in items], dtype=float)
            return SegmentView(values, values, counts)
        array = self._array
        if not self._singular:
            return SegmentView(array.lefts, array.rights, array.sub_counts[:, 0])
        singular_values = np.asarray(list(self._singular), dtype=float)
        singular_counts = np.asarray(list(self._singular.values()), dtype=float)
        lefts = np.concatenate((array.lefts, singular_values))
        rights = np.concatenate((array.rights, singular_values))
        counts = np.concatenate((array.sub_counts[:, 0], singular_counts))
        # Keep the (left, right) value order of the exposed bucket list, so
        # the view's end borders and aggregate totals describe the histogram
        # range rather than the storage layout.
        order = np.lexsort((rights, lefts))
        return SegmentView(lefts[order], rights[order], counts[order])

    # ------------------------------------------------------------------
    # update API
    # ------------------------------------------------------------------
    def _insert(self, value: float) -> None:
        if self._insert_value(float(value)) and self._should_repartition():
            self._repartition()

    def _insert_value(self, value: float) -> bool:
        """Insert one value; True when a regular bucket counter was bumped.

        Regular increments are the ones whose Chi-square uniformity check may
        be batched (:meth:`insert_many`); loading-phase buffering and singular
        bucket increments never trigger a repartition on their own.
        """
        if self._loading is not None:
            self._loading[value] = self._loading.get(value, 0) + 1
            if len(self._loading) >= self._budget:
                self._finish_loading()
            return False

        if value in self._singular:
            self._singular[value] += 1.0
            return False

        index = self._locate_regular(value, extend=True)
        self._increment_regular(index, 1.0)
        return True

    def insert_many(self, values, *, repartition_interval: int = 1) -> None:
        """Insert a batch of values, optionally batching the Chi-square checks.

        With the default ``repartition_interval = 1`` the result is identical
        to inserting the values one by one; it just avoids per-value template
        overhead.  A larger interval runs the uniformity test (and any
        resulting repartition) only every ``repartition_interval`` regular
        increments and once at the end of the batch, trading slightly delayed
        repartitions for substantially higher sustained insert throughput on
        bulk loads.  The total count is always exact.
        """
        require_positive_int(repartition_interval, "repartition_interval")
        try:
            pending = 0
            for value in values:
                if self._insert_value(float(value)):
                    pending += 1
                    if pending >= repartition_interval:
                        if self._should_repartition():
                            self._repartition()
                        pending = 0
            if pending and self._should_repartition():
                self._repartition()
        finally:
            self._invalidate_view()

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def _delete(self, value: float) -> None:
        value = float(value)
        if self._loading is not None:
            count = self._loading.get(value, 0)
            if count > 1:
                self._loading[value] = count - 1
            elif count == 1:
                del self._loading[value]
            else:
                raise DeletionError(f"value {value!r} is not present in the loading buffer")
            return

        # Sum the raw counters directly: total_count would build a segment
        # view that the surrounding delete() template is about to invalidate.
        if self._regular_total + sum(self._singular.values()) < 1.0 - 1e-9:
            raise DeletionError("cannot delete from an empty histogram")

        # Remove one unit of mass.  Counters may hold fractional counts after
        # a repartition, so keep taking from the closest non-empty buckets
        # until a full unit has been removed (Section 7.3 spill policy).
        counts = self._array.sub_counts[:, 0]
        remaining = 1.0
        if value in self._singular and self._singular[value] > 0:
            taken = min(self._singular[value], remaining)
            self._singular[value] -= taken
            remaining -= taken
        if remaining > 1e-12:
            index = self._locate_regular(value, extend=False)
            available = float(counts[index])
            if available > 0:
                taken = min(available, remaining)
                self._increment_regular(index, -taken)
                remaining -= taken
        while remaining > 1e-12:
            spill = self._closest_non_empty(value)
            if spill is None:
                raise DeletionError("all buckets are empty; nothing to delete")
            kind, key = spill
            if kind == "singular":
                taken = min(self._singular[key], remaining)
                self._singular[key] -= taken
            else:
                taken = min(float(counts[int(key)]), remaining)
                self._increment_regular(int(key), -taken)
            remaining -= taken

    def _delete_many(self, values: Sequence[float]) -> None:
        """Vectorised batch deletion over the regular border array.

        One ``searchsorted`` + ``bincount`` pass computes each regular
        bucket's share of the batch (singular hits are aggregated per distinct
        value first, spilling their remainder into the covering regular
        bucket exactly as the per-value path does).  When any bucket would be
        drained below its share -- which is when the per-value spill policy
        (Section 7.3) kicks in -- the whole batch falls back to strict
        per-value handling.
        """
        if (
            self._loading is not None
            or len(values) < _VECTOR_MIN_BATCH
            or not self._try_delete_vectorised(np.asarray(values, dtype=float))
        ):
            super()._delete_many(values)

    def _try_delete_vectorised(self, values: np.ndarray) -> bool:
        """Attempt the all-at-once delete; False = caller must go per-value."""
        array = self._array
        n = len(array)
        if n == 0:
            return False
        counts = array.sub_counts[:, 0]

        # Split the batch between singular buckets and regular mass.  Per
        # distinct singular value v with multiplicity m, the per-value path
        # takes min(singular[v], m) units from the singular bucket and routes
        # the remainder into the regular bucket covering v.
        singular_takes: list[tuple[float, float]] = []
        if self._singular:
            singular_sorted = np.asarray(sorted(self._singular), dtype=float)
            positions = np.searchsorted(singular_sorted, values)
            safe = np.minimum(positions, singular_sorted.size - 1)
            is_singular = singular_sorted[safe] == values
        else:
            is_singular = np.zeros(values.shape, dtype=bool)

        indices = np.searchsorted(array.lefts, values, side="right") - 1
        np.clip(indices, 0, n - 1, out=indices)
        regular_needed = np.bincount(
            indices[~is_singular], minlength=n
        ).astype(float)

        if is_singular.any():
            hit_values, multiplicities = np.unique(
                values[is_singular], return_counts=True
            )
            hit_indices = np.clip(
                np.searchsorted(array.lefts, hit_values, side="right") - 1, 0, n - 1
            )
            for value, multiplicity, index in zip(
                hit_values, multiplicities, hit_indices, strict=True
            ):
                available = self._singular.get(float(value), 0.0)
                take = min(available, float(multiplicity))
                singular_takes.append((float(value), take))
                remainder = float(multiplicity) - take
                if remainder > 0:
                    regular_needed[index] += remainder

        if np.any(regular_needed > counts):
            return False  # a bucket would drain: per-value spill policy

        before = counts[regular_needed > 0]
        counts -= regular_needed
        after = counts[regular_needed > 0]
        self._regular_total -= float(regular_needed.sum())
        self._regular_sumsq += float((after * after - before * before).sum())
        for value, take in singular_takes:
            if take > 0:
                self._singular[value] -= take
        return True

    # ------------------------------------------------------------------
    # loading phase
    # ------------------------------------------------------------------
    def _finish_loading(self) -> None:
        """Convert the loading buffer into the initial regular buckets."""
        assert self._loading is not None
        items = sorted(self._loading.items())
        # repro-verify: ignore[REP003] reached only from the insert template, which invalidates the view on exit
        self._loading = None
        if not items:
            raise InsufficientDataError("loading phase ended with no data")

        values = [value for value, _ in items]
        counts = [float(count) for _, count in items]
        if len(values) == 1:
            lefts = [values[0]]
            rights = [values[0]]
            bucket_counts = [counts[0]]
        else:
            # One bucket per distinct point: borders sit at the points, the
            # last point is folded into the final bucket.
            lefts = values[:-1]
            rights = values[1:]
            bucket_counts = counts[:-1]
            bucket_counts[-1] += counts[-1]
        # repro-verify: ignore[REP003] reached only from the insert template, which invalidates the view on exit
        self._array = BucketArray(
            np.asarray(lefts, dtype=float),
            np.asarray(rights, dtype=float),
            np.asarray(bucket_counts, dtype=float).reshape(-1, 1),
        )
        self._regular_total = sum(bucket_counts)
        self._regular_sumsq = sum(count * count for count in bucket_counts)

    # ------------------------------------------------------------------
    # regular bucket helpers
    # ------------------------------------------------------------------
    def _locate_regular(self, value: float, *, extend: bool) -> int:
        """Index of the regular bucket for ``value``; optionally extend end buckets."""
        array = self._array
        n = len(array)
        if n == 0:
            raise InsufficientDataError("histogram has no regular buckets yet")
        lefts = array.lefts
        if value < lefts[0]:
            if extend:
                lefts[0] = value
            return 0
        if value > array.rights[-1]:
            if extend:
                array.rights[-1] = value
            return n - 1
        index = int(np.searchsorted(lefts, value, side="right")) - 1
        return max(0, min(index, n - 1))

    def _increment_regular(self, index: int, delta: float) -> None:
        counts = self._array.sub_counts
        old = float(counts[index, 0])
        new = old + delta
        counts[index, 0] = new
        self._regular_total += delta
        self._regular_sumsq += new * new - old * old

    def _closest_non_empty(self, value: float) -> tuple[str, float] | None:
        """Locate the non-empty bucket whose range lies closest to ``value``."""
        array = self._array
        lefts = array.lefts.tolist()
        rights = array.rights.tolist()
        counts = array.sub_counts[:, 0].tolist()
        best: tuple[float, str, float] | None = None
        for index, count in enumerate(counts):
            if count <= 0:
                continue
            left = lefts[index]
            right = rights[index]
            distance = 0.0 if left <= value <= right else min(abs(value - left), abs(value - right))
            if best is None or distance < best[0]:
                best = (distance, "regular", float(index))
        for singular_value, count in self._singular.items():
            if count <= 0:
                continue
            distance = abs(singular_value - value)
            if best is None or distance < best[0]:
                best = (distance, "singular", singular_value)
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------
    # repartitioning
    # ------------------------------------------------------------------
    def _should_repartition(self) -> bool:
        """Chi-square uniformity test on the regular bucket counts."""
        n_regular = len(self._array)
        if n_regular < 2 or self._regular_total <= 0:
            return False
        mean = self._regular_total / n_regular
        chi2 = (self._regular_sumsq - n_regular * mean * mean) / mean
        if chi2 <= 0:
            return False
        dof = n_regular - 1
        # Cheap pre-filter: when chi2 is below its expectation the significance
        # is far above any sensible alpha_min.
        if chi2 <= dof:
            return False
        return chi_square_probability(chi2, dof) < self._alpha_min

    def _repartition(self) -> None:
        """Re-establish the Compressed partition constraint.

        Degrades light singular buckets to regular mass, recomputes regular
        borders so every regular bucket carries the same count (one array
        splice), and promotes narrow heavy regular buckets to singular
        buckets.  The total count is preserved exactly.
        """
        self._repartition_count += 1
        total = self._regular_total + sum(self._singular.values())
        if total <= 0:
            return
        threshold = total / self._budget
        array = self._array

        # Collect the regular mass as contiguous piecewise-uniform segments.
        segments: list[list[float]] = [
            [float(array.lefts[i]), float(array.rights[i]), float(array.sub_counts[i, 0])]
            for i in range(len(array))
        ]

        surviving_singular: dict[float, float] = {}
        segment_lefts = [segment[0] for segment in segments]
        for value, count in self._singular.items():
            if count > threshold:
                surviving_singular[value] = count
            elif count > 0:
                # Degrade: fold the mass back into the regular bucket whose
                # range contains (or is closest to) the singular value, keeping
                # the regular segments contiguous and sorted.
                target = int(np.searchsorted(segment_lefts, value, side="right")) - 1
                target = max(0, min(target, len(segments) - 1))
                segments[target][2] += count

        # Promote narrow heavy regular segments to singular buckets.  The
        # singular value is snapped to the domain grid, mirroring the paper's
        # "width one" buckets whose borders sit on actual attribute values.
        regular_segments: list[tuple[float, float, float]] = []
        for left, right, count in segments:
            is_narrow = (right - left) <= self._value_unit
            if is_narrow and count > threshold and len(surviving_singular) < self._budget - 1:
                midpoint = (left + right) / 2.0
                snapped = round(midpoint / self._value_unit) * self._value_unit
                surviving_singular[snapped] = surviving_singular.get(snapped, 0.0) + count
            else:
                regular_segments.append((left, right, count))

        n_regular = max(1, self._budget - len(surviving_singular))
        lefts, counts, right = _equalize_segments(regular_segments, n_regular)

        # repro-verify: ignore[REP003] reached only from the insert/delete templates, which invalidate the view on exit
        self._array = BucketArray(
            np.asarray(lefts, dtype=float),
            np.asarray(lefts[1:] + [right], dtype=float),
            np.asarray(counts, dtype=float).reshape(-1, 1),
        )
        self._singular = surviving_singular
        self._regular_total = sum(counts)
        self._regular_sumsq = sum(count * count for count in counts)


def _equalize_segments(
    segments: list[tuple[float, float, float]], n_buckets: int
) -> tuple[list[float], list[float], float]:
    """Partition piecewise-uniform segments into equal-count contiguous buckets.

    Returns the new left borders, per-bucket counts and the right border of the
    last bucket.  The sum of the returned counts equals the total mass of the
    segments (up to floating point), preserving the "total area stays the
    same" invariant of Figure 1.
    """
    segments = sorted((s for s in segments if s[2] > 0), key=lambda s: (s[0], s[1]))
    if not segments:
        lowest = 0.0
        return [lowest], [0.0], lowest

    total = sum(count for _, _, count in segments)
    low = segments[0][0]
    high = max(right for _, right, _ in segments)
    if n_buckets == 1 or total <= 0 or high == low:
        return [low], [total], high

    target = total / n_buckets
    lefts = [low]
    counts: list[float] = []
    accumulated = 0.0     # mass assigned to completed buckets
    current = 0.0         # mass accumulated in the bucket being built

    for left, right, count in segments:
        remaining = count
        seg_left = left
        while current + remaining >= target - 1e-12 and len(lefts) < n_buckets:
            need = target - current
            # Uniform assumption: take the needed share of the remaining
            # mass proportionally along the remaining segment range.
            border = (
                seg_left + (need / remaining) * (right - seg_left)
                if remaining > 0 and right > seg_left
                else right
            )
            counts.append(target)
            lefts.append(border)
            accumulated += target
            remaining -= need
            seg_left = border
            current = 0.0
            if remaining <= 1e-12:
                remaining = 0.0
                break
        current += remaining

    # Close the final bucket with whatever mass is left.
    counts.append(max(total - accumulated, 0.0))
    # Guard against numerical drift producing an extra border.
    while len(lefts) > len(counts):
        lefts.pop()
    return lefts, counts, high
