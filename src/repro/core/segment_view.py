"""Vectorised view of a histogram's piecewise-uniform segments.

Every read operation of :class:`~repro.core.base.Histogram` -- total count,
range estimation, equality estimation, CDF evaluation -- is ultimately a
computation over the histogram's segments.  Looping over freshly allocated
:class:`~repro.core.bucket.Bucket` objects on every call makes the estimation
hot path O(B) Python work per query, which is far too slow for the
heavy-traffic serving the ROADMAP targets.

:class:`SegmentView` answers those queries from numpy arrays:

* point-mass segments as sorted ``(values, counts)`` arrays with a prefix-sum,
* regular (positive-width) segments as sorted ``(lefts, rights, counts)``
  arrays with widths and a prefix-sum of counts.

With the prefix sums, ``count_at_most`` and friends become a ``searchsorted``
(O(log B)) plus O(1) arithmetic, and the ``*_many`` variants evaluate a whole
query batch with a handful of vectorised numpy operations.

Views are built **directly from the histogram's live array state** (the
:class:`~repro.core.bucket_array.BucketArray` single source of truth): the
input border/count arrays are adopted without copying whenever the segment
list is already sorted and free of point masses, so constructing a view costs
only the prefix sums.  There is no generation counter any more -- a histogram
caches its view and simply drops the cache on mutation (see
:meth:`~repro.core.base.Histogram.segment_view`).  Consequently a view is
valid until its source histogram's next mutation; library code always
re-fetches through ``segment_view()`` rather than holding one across writes.

The fast paths assume the regular segments are sorted and non-overlapping
(true for every histogram in the library); a view built from overlapping
segments sets ``fast = False`` and the base class falls back to the exact
per-bucket loops.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .bucket import Bucket

__all__ = ["SegmentView"]


class SegmentView:
    """Vectorised numpy view of a segment list (borders, counts, prefix sums)."""

    __slots__ = (
        "n_buckets",
        "total",
        "first_left",
        "last_right",
        "pm_values",
        "pm_counts",
        "pm_prefix",
        "reg_lefts",
        "reg_rights",
        "reg_counts",
        "reg_widths",
        "reg_prefix",
        "fast",
        "owned",
    )

    def __init__(
        self, lefts: np.ndarray, rights: np.ndarray, counts: np.ndarray
    ) -> None:
        lefts = np.asarray(lefts, dtype=float)
        rights = np.asarray(rights, dtype=float)
        counts = np.asarray(counts, dtype=float)
        self.n_buckets = int(lefts.shape[0])
        self.total = float(counts.sum()) if self.n_buckets else 0.0
        self.first_left = float(lefts[0]) if self.n_buckets else 0.0
        self.last_right = float(rights[-1]) if self.n_buckets else 0.0

        point = rights == lefts
        if point.any():
            pm_values = lefts[point]
            pm_counts = counts[point]
            regular = ~point
            reg_lefts = lefts[regular]
            reg_rights = rights[regular]
            reg_counts = counts[regular]
        else:
            # Common case (all segments have positive width): adopt the live
            # arrays as-is -- building the view is zero-copy up to the prefix
            # sums.
            pm_values = np.empty(0, dtype=float)
            pm_counts = np.empty(0, dtype=float)
            reg_lefts = lefts
            reg_rights = rights
            reg_counts = counts
        if pm_values.size > 1 and np.any(np.diff(pm_values) < 0):
            order = np.argsort(pm_values, kind="stable")
            pm_values = pm_values[order]
            pm_counts = pm_counts[order]
        self.pm_values = pm_values
        self.pm_counts = pm_counts
        self.pm_prefix = np.concatenate(([0.0], np.cumsum(pm_counts)))

        if reg_lefts.size > 1 and np.any(np.diff(reg_lefts) < 0):
            order = np.argsort(reg_lefts, kind="stable")
            reg_lefts = reg_lefts[order]
            reg_rights = reg_rights[order]
            reg_counts = reg_counts[order]
        self.reg_lefts = reg_lefts
        self.reg_rights = reg_rights
        self.reg_counts = reg_counts
        self.reg_widths = reg_rights - reg_lefts
        self.reg_prefix = np.concatenate(([0.0], np.cumsum(reg_counts)))

        # The O(log B) paths require the regular segments to be disjoint (they
        # may share borders); anything else falls back to per-bucket loops.
        self.fast = bool(
            reg_lefts.size < 2 or np.all(reg_lefts[1:] >= reg_rights[:-1])
        )
        # Zero-copy adoption above means the view may alias the histogram's
        # live arrays; ``detach()`` produces an owning clone safe to publish.
        self.owned = False

    def detach(self) -> SegmentView:
        """Return a clone that owns copies of every possibly-aliased array.

        The constructor adopts the caller's border/count arrays without
        copying, so a view built from a live histogram can alias state the
        next mutation rewrites in place.  A detached view copies those arrays
        (widths and prefix sums are always freshly allocated and never
        mutated, so they are shared), making it immutable-by-construction and
        safe to hand to readers that never hold the writer's lock.
        """
        if self.owned:
            return self
        clone = object.__new__(SegmentView)
        clone.n_buckets = self.n_buckets
        clone.total = self.total
        clone.first_left = self.first_left
        clone.last_right = self.last_right
        clone.pm_values = np.array(self.pm_values, dtype=float, copy=True)
        clone.pm_counts = np.array(self.pm_counts, dtype=float, copy=True)
        clone.pm_prefix = self.pm_prefix
        clone.reg_lefts = np.array(self.reg_lefts, dtype=float, copy=True)
        clone.reg_rights = np.array(self.reg_rights, dtype=float, copy=True)
        clone.reg_counts = np.array(self.reg_counts, dtype=float, copy=True)
        clone.reg_widths = self.reg_widths
        clone.reg_prefix = self.reg_prefix
        clone.fast = self.fast
        clone.owned = True
        return clone

    @classmethod
    def from_buckets(cls, buckets: Sequence[Bucket]) -> SegmentView:
        """Build a view from a materialised bucket list (generic fallback)."""
        return cls(
            np.asarray([bucket.left for bucket in buckets], dtype=float),
            np.asarray([bucket.right for bucket in buckets], dtype=float),
            np.asarray([bucket.count for bucket in buckets], dtype=float),
        )

    # ------------------------------------------------------------------
    # scalar queries
    # ------------------------------------------------------------------
    def count_at_most(self, x: float) -> float:
        """Mass with value <= ``x`` (point masses at ``x`` fully included)."""
        result = float(self.pm_prefix[np.searchsorted(self.pm_values, x, side="right")])
        index = int(np.searchsorted(self.reg_lefts, x, side="right")) - 1
        if index >= 0:
            fraction = (x - self.reg_lefts[index]) / self.reg_widths[index]
            fraction = min(max(fraction, 0.0), 1.0)
            result += float(self.reg_prefix[index] + self.reg_counts[index] * fraction)
        return result

    def range_count(self, low: float, high: float) -> float:
        """Mass in the closed range ``[low, high]`` (uniform assumption)."""
        if high < low:
            return 0.0
        pm_part = self.pm_prefix[
            np.searchsorted(self.pm_values, high, side="right")
        ] - self.pm_prefix[np.searchsorted(self.pm_values, low, side="left")]
        return float(pm_part + self._regular_at_most(high) - self._regular_at_most(low))

    def equal_estimate(self, value: float, granularity: float) -> float:
        """Mass estimated at exactly ``value`` (half-open bucket convention).

        A border shared by two adjacent buckets is counted in the right bucket
        only; the closed right border of a bucket with no right neighbour at
        that border (the last bucket, or a bucket followed by a gap) still
        counts, so no domain value inside the histogram range estimates to
        zero spuriously.
        """
        estimate = float(
            self.pm_prefix[np.searchsorted(self.pm_values, value, side="right")]
            - self.pm_prefix[np.searchsorted(self.pm_values, value, side="left")]
        )
        index = int(np.searchsorted(self.reg_lefts, value, side="right")) - 1
        if index >= 0 and value <= self.reg_rights[index]:
            width = self.reg_widths[index]
            estimate += float(self.reg_counts[index] / width * min(granularity, width))
        return estimate

    def _regular_at_most(self, x: float) -> float:
        index = int(np.searchsorted(self.reg_lefts, x, side="right")) - 1
        if index < 0:
            return 0.0
        fraction = (x - self.reg_lefts[index]) / self.reg_widths[index]
        fraction = min(max(fraction, 0.0), 1.0)
        return float(self.reg_prefix[index] + self.reg_counts[index] * fraction)

    # ------------------------------------------------------------------
    # vectorised batch queries
    # ------------------------------------------------------------------
    def count_at_most_many(
        self, xs: np.ndarray, *, include_point_mass_at: bool = True
    ) -> np.ndarray:
        """Vectorised ``count_at_most`` over an array of query points.

        ``include_point_mass_at = False`` gives the left limit (``P(X < x)``
        numerators), which the KS metric needs at CDF jump points.
        """
        xs = np.asarray(xs, dtype=float)
        side = "right" if include_point_mass_at else "left"
        result = self.pm_prefix[np.searchsorted(self.pm_values, xs, side=side)]
        result = np.asarray(result, dtype=float).copy()
        if self.reg_lefts.size:
            index = np.searchsorted(self.reg_lefts, xs, side="right") - 1
            safe = np.maximum(index, 0)
            fraction = np.clip(
                (xs - self.reg_lefts[safe]) / self.reg_widths[safe], 0.0, 1.0
            )
            result += np.where(
                index >= 0, self.reg_prefix[safe] + self.reg_counts[safe] * fraction, 0.0
            )
        return result

    def range_count_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorised ``range_count`` over parallel arrays of closed ranges."""
        lows = np.asarray(lows, dtype=float)
        highs = np.asarray(highs, dtype=float)
        pm_part = self.pm_prefix[
            np.searchsorted(self.pm_values, highs, side="right")
        ] - self.pm_prefix[np.searchsorted(self.pm_values, lows, side="left")]
        reg_part = self._regular_at_most_many(highs) - self._regular_at_most_many(lows)
        return np.where(highs < lows, 0.0, pm_part + reg_part)

    def _regular_at_most_many(self, xs: np.ndarray) -> np.ndarray:
        if not self.reg_lefts.size:
            return np.zeros(np.shape(xs), dtype=float)
        index = np.searchsorted(self.reg_lefts, xs, side="right") - 1
        safe = np.maximum(index, 0)
        fraction = np.clip((xs - self.reg_lefts[safe]) / self.reg_widths[safe], 0.0, 1.0)
        return np.where(
            index >= 0, self.reg_prefix[safe] + self.reg_counts[safe] * fraction, 0.0
        )
