"""Structure-of-arrays bucket storage: the single source of truth for histogram state.

Before this module, every histogram carried up to three coupled representations
of the same state -- a ``List[Bucket]`` of frozen dataclasses, a cached numpy
``SegmentView`` keyed on a generation counter, and (for DVO / DADO) mirrored
``_lefts`` / ``_phis`` / ``_pair_phis`` shadow lists that every mutator had to
splice in lockstep.  :class:`BucketArray` collapses all of that into one
contiguous structure of arrays:

* ``lefts`` / ``rights`` -- float64 bucket borders, ascending;
* ``sub_counts`` -- an ``(n, k)`` float64 matrix of per-sub-range point counts
  (``k = 1`` for histograms without internal sub-bucket structure);
* ``phis`` / ``pair_phis`` -- optional maintenance caches for the split-merge
  histograms (per-bucket deviation and adjacent-pair merge deviation).

Everything else -- the ``buckets()`` list, the vectorised
:class:`~repro.core.segment_view.SegmentView`, serialised snapshots -- is a
*derived view* of these arrays.  Maintenance operations (split, merge,
out-of-range borrow, repartition) are array splices through :meth:`splice`,
which keeps every tracked array consistent in a single call, so there is no
longer a class of bugs where one representation moves and another does not.

A point-mass bucket (``left == right``) stores its whole mass in sub-range 0;
the remaining columns are structurally zero.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["BucketArray"]

Segment = tuple[float, float, float]


class BucketArray:
    """Contiguous structure-of-arrays storage for a histogram's buckets.

    Parameters
    ----------
    lefts, rights:
        Bucket borders, ascending and non-overlapping (shared borders allowed).
    sub_counts:
        ``(n, k)`` matrix of sub-range point counts; coerced to C-contiguous
        float64 so ``sub_counts.ravel()`` is a zero-copy flat view.
    phis, pair_phis:
        Optional per-bucket and adjacent-pair deviation caches (split-merge
        histograms).  When ``phis`` is given, ``pair_phis`` must be too, and
        both are spliced alongside the borders by :meth:`splice`.
    """

    __slots__ = ("lefts", "rights", "sub_counts", "phis", "pair_phis")

    def __init__(
        self,
        lefts: np.ndarray,
        rights: np.ndarray,
        sub_counts: np.ndarray,
        *,
        phis: np.ndarray | None = None,
        pair_phis: np.ndarray | None = None,
    ) -> None:
        self.lefts = np.ascontiguousarray(lefts, dtype=float)
        self.rights = np.ascontiguousarray(rights, dtype=float)
        sub = np.ascontiguousarray(sub_counts, dtype=float)
        if sub.ndim == 1:
            sub = sub.reshape(-1, 1)
        self.sub_counts = sub
        self.phis = None if phis is None else np.ascontiguousarray(phis, dtype=float)
        self.pair_phis = (
            None if pair_phis is None else np.ascontiguousarray(pair_phis, dtype=float)
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, k: int = 1, *, track_phis: bool = False) -> BucketArray:
        """An array with zero buckets and ``k`` sub-ranges per bucket."""
        return cls(
            np.empty(0, dtype=float),
            np.empty(0, dtype=float),
            np.empty((0, k), dtype=float),
            phis=np.empty(0, dtype=float) if track_phis else None,
            pair_phis=np.empty(0, dtype=float) if track_phis else None,
        )

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[tuple[float, float, Sequence[float]]],
        k: int,
        *,
        track_phis: bool = False,
    ) -> BucketArray:
        """Build from ``(left, right, sub_counts)`` rows (deserialisation).

        Rows whose count vector is shorter than ``k`` (legacy point-mass
        buckets serialised with a collapsed counter list) are right-padded
        with zeros; the stored mass is preserved exactly.
        """
        rows = list(rows)
        n = len(rows)
        lefts = np.empty(n, dtype=float)
        rights = np.empty(n, dtype=float)
        sub = np.zeros((n, k), dtype=float)
        for index, (left, right, counts) in enumerate(rows):
            lefts[index] = float(left)
            rights[index] = float(right)
            counts = [float(c) for c in counts]
            if len(counts) > k:
                # Legacy rows can carry a single collapsed counter or a full
                # vector; anything longer than k folds its tail into slot 0
                # so no mass is lost.
                sub[index, 0] = sum(counts)
            else:
                sub[index, : len(counts)] = counts
        array = cls(lefts, rights, sub)
        if track_phis:
            array.phis = np.zeros(n, dtype=float)
            array.pair_phis = np.zeros(max(n - 1, 0), dtype=float)
        return array

    def to_rows(self) -> list[list[object]]:
        """Serialise as ``[left, right, [sub_counts...]]`` rows (JSON shape)."""
        return [
            [float(self.lefts[i]), float(self.rights[i]), [float(c) for c in self.sub_counts[i]]]
            for i in range(len(self))
        ]

    # ------------------------------------------------------------------
    # shape / aggregate accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.lefts.shape[0])

    @property
    def k(self) -> int:
        """Number of sub-ranges per bucket."""
        return int(self.sub_counts.shape[1])

    @property
    def widths(self) -> np.ndarray:
        return self.rights - self.lefts

    @property
    def counts(self) -> np.ndarray:
        """Per-bucket totals (a fresh array for ``k > 1``, a view for ``k = 1``)."""
        if self.k == 1:
            return self.sub_counts[:, 0]
        return self.sub_counts.sum(axis=1)

    def total(self) -> float:
        """Total mass over every bucket and sub-range."""
        return float(self.sub_counts.sum())

    def bucket_count(self, index: int) -> float:
        """Total mass of one bucket (sequential sum, matching ``sum(list)``)."""
        row = self.sub_counts[index]
        total = 0.0
        for value in row:
            total += float(value)
        return total

    # ------------------------------------------------------------------
    # per-bucket segment expansion
    # ------------------------------------------------------------------
    def row_borders(self, index: int) -> list[float]:
        """The ``k + 1`` sub-range borders of bucket ``index``.

        Replicates the float-op order of the historical ``_VBucket.borders()``
        (``left + i * step`` with ``step = width / k``) so phi values computed
        from these borders stay bit-identical across representations.  A
        point-mass bucket (and ``k = 1``) yields just ``[left, right]``.
        """
        left = float(self.lefts[index])
        right = float(self.rights[index])
        k = self.k
        if right == left or k == 1:
            return [left, right]
        step = (right - left) / k
        return [left + i * step for i in range(k)] + [right]

    def row_segments(self, index: int) -> list[Segment]:
        """Piecewise-uniform ``(left, right, count)`` segments of one bucket."""
        left = float(self.lefts[index])
        right = float(self.rights[index])
        row = self.sub_counts[index]
        if right == left:
            return [(left, right, self.bucket_count(index))]
        borders = self.row_borders(index)
        return [
            (borders[i], borders[i + 1], float(row[i])) for i in range(self.k)
        ]

    def sub_index(self, index: int, value: float) -> int:
        """Sub-range of bucket ``index`` that ``value`` falls into (clamped)."""
        k = self.sub_counts.shape[1]
        if k == 1:
            return 0
        left = self.lefts[index]
        width = self.rights[index] - left
        if width <= 0:
            return 0
        sub = int((value - left) / width * k)
        if sub < 0:
            return 0
        if sub >= k:
            return k - 1
        return sub

    # ------------------------------------------------------------------
    # structural mutation
    # ------------------------------------------------------------------
    def splice(
        self,
        start: int,
        stop: int,
        lefts: Sequence[float],
        rights: Sequence[float],
        sub_counts: Sequence[Sequence[float]],
        phis: Sequence[float] | None = None,
    ) -> None:
        """Replace buckets ``[start, stop)`` with the given rows.

        Every tracked array is spliced in one call; ``pair_phis`` is *not*
        resized here -- adjacent-pair caches depend on neighbour state the
        caller is about to recompute, so callers splice them explicitly via
        :meth:`splice_pair_phis`.
        """
        new_lefts = np.asarray(lefts, dtype=float)
        new_rights = np.asarray(rights, dtype=float)
        new_sub = np.asarray(sub_counts, dtype=float)
        if new_sub.ndim == 1:
            new_sub = new_sub.reshape(-1, self.k)
        self.lefts = np.concatenate((self.lefts[:start], new_lefts, self.lefts[stop:]))
        self.rights = np.concatenate((self.rights[:start], new_rights, self.rights[stop:]))
        self.sub_counts = np.ascontiguousarray(
            np.concatenate((self.sub_counts[:start], new_sub, self.sub_counts[stop:]))
        )
        if self.phis is not None:
            if phis is None:
                raise ValueError("phi-tracking BucketArray splices must supply phis")
            self.phis = np.concatenate(
                (self.phis[:start], np.asarray(phis, dtype=float), self.phis[stop:])
            )

    def splice_pair_phis(self, start: int, stop: int, values: Sequence[float]) -> None:
        """Replace adjacent-pair phis ``[start, stop)`` with ``values``."""
        self.pair_phis = np.concatenate(
            (self.pair_phis[:start], np.asarray(values, dtype=float), self.pair_phis[stop:])
        )

    def copy(self) -> BucketArray:
        """Deep copy (used by tests and snapshots of mutable state)."""
        return BucketArray(
            self.lefts.copy(),
            self.rights.copy(),
            self.sub_counts.copy(),
            phis=None if self.phis is None else self.phis.copy(),
            pair_phis=None if self.pair_phis is None else self.pair_phis.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BucketArray(n={len(self)}, k={self.k}, total={self.total():.1f})"
