"""Abstract histogram interfaces: the shared read API and the update API.

Every histogram in the library -- static baselines, the paper's dynamic
histograms and the sampling-based Approximate Compressed comparator -- exposes
the same *read* interface defined by :class:`Histogram`: bucket inspection,
range-count estimation under the uniform + continuous-value assumptions, and
CDF evaluation (which is what the KS metric consumes).  Dynamic histograms
additionally implement the *update* interface of :class:`DynamicHistogram`:
``insert`` and ``delete`` of individual values and stream replay.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence

import numpy as np

from .._validation import require_positive_int
from ..exceptions import EmptyHistogramError
from ..metrics.distribution import DataDistribution
from .bucket import Bucket
from .segment_view import SegmentView

__all__ = ["Histogram", "DynamicHistogram", "SnapshotHistogram"]


class Histogram(abc.ABC):
    """Read-only histogram interface.

    Concrete histograms implement :meth:`buckets`, returning their
    piecewise-uniform segments in ascending value order; every estimation
    method is derived from that single primitive, so all histogram classes
    behave identically at evaluation time.

    Estimation does not loop over the bucket list on every call: queries go
    through a cached :class:`~repro.core.segment_view.SegmentView` (numpy
    border/count arrays plus prefix sums), which answers range, equality and
    CDF queries with O(log B) ``searchsorted`` lookups.  Array-native
    histograms override :meth:`_build_view` to construct the view directly
    from their live :class:`~repro.core.bucket_array.BucketArray` state
    (zero-copy where the arrays permit); the generic fallback materialises
    :meth:`buckets` once.  Every mutation drops the cached view via
    :meth:`_invalidate_view` (the :class:`DynamicHistogram` update template
    does this automatically), so a fresh view is derived lazily on the next
    read.
    """

    #: Cached SegmentView (None = derive from the live state on next read).
    _view_cache: SegmentView | None = None

    #: Cached *owned* (detached) view for lock-free publication (None = derive
    #: lazily via :meth:`published_view`).  Dropped together with the working
    #: view cache on every mutation.
    _published_cache: SegmentView | None = None

    # ------------------------------------------------------------------
    # abstract surface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def buckets(self) -> list[Bucket]:
        """The histogram's buckets (piecewise-uniform segments), in value order.

        Histograms with internal sub-bucket structure (DVO / DADO) expose their
        sub-buckets here, because the sub-bucket counters are part of the
        stored approximation.
        """

    # ------------------------------------------------------------------
    # cached segment view
    # ------------------------------------------------------------------
    def segment_view(self) -> SegmentView:
        """The cached vectorised view of the current segment state.

        Derived lazily from the live arrays after a mutation dropped the
        previous view.  The returned view is valid until the histogram's next
        mutation; re-fetch rather than holding one across writes.
        """
        view = self._view_cache
        if view is None:
            view = self._build_view()
            self._view_cache = view
        return view

    def _build_view(self) -> SegmentView:
        """Construct a fresh segment view from the current state.

        Array-native subclasses override this to feed their live border and
        count arrays straight into :class:`SegmentView`; the base
        implementation materialises the bucket list once.
        """
        return SegmentView.from_buckets(self.buckets())

    def published_view(self) -> SegmentView:
        """An *owned* snapshot view of the current state, for publication.

        Unlike :meth:`segment_view` (which may alias the histogram's live
        arrays and is therefore only valid while the caller prevents
        mutation), the returned view owns copies of every array it depends
        on (:meth:`SegmentView.detach`).  It stays internally consistent
        forever, even while the source histogram keeps mutating -- callers
        may stash it behind a single reference and serve estimates from it
        without holding any lock.  The copy is made at most once per
        mutation (cached until :meth:`_invalidate_view`).

        Must be called while the caller's write-side synchronisation is held
        (or on a quiescent histogram): building the snapshot reads the live
        arrays.
        """
        view = self._published_cache
        if view is None:
            view = self.segment_view().detach()
            self._published_cache = view
        return view

    def _invalidate_view(self) -> None:
        """Drop the cached segment views.  Every mutator must call this."""
        self._view_cache = None
        self._published_cache = None

    # ------------------------------------------------------------------
    # derived read API
    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        """Number of exposed segments."""
        return self.segment_view().n_buckets

    @property
    def total_count(self) -> float:
        """Total number of points represented by the histogram."""
        return self.segment_view().total

    @property
    def min_value(self) -> float:
        """Left border of the first bucket."""
        view = self.segment_view()
        if view.n_buckets == 0:
            raise EmptyHistogramError("histogram has no buckets")
        return view.first_left

    @property
    def max_value(self) -> float:
        """Right border of the last bucket."""
        view = self.segment_view()
        if view.n_buckets == 0:
            raise EmptyHistogramError("histogram has no buckets")
        return view.last_right

    def estimate_range(self, low: float, high: float) -> float:
        """Estimated number of points in the closed range ``[low, high]``."""
        if high < low:
            return 0.0
        view = self.segment_view()
        if view.fast:
            return view.range_count(low, high)
        return float(sum(bucket.count_in_range(low, high) for bucket in self.buckets()))

    def estimate_ranges(self, lows: Sequence[float], highs: Sequence[float]) -> np.ndarray:
        """Vectorised :meth:`estimate_range` over parallel arrays of ranges."""
        lows_arr = np.asarray(lows, dtype=float)
        highs_arr = np.asarray(highs, dtype=float)
        view = self.segment_view()
        if view.fast:
            return view.range_count_many(lows_arr, highs_arr)
        return np.asarray(
            [self.estimate_range(low, high) for low, high in zip(lows_arr, highs_arr, strict=True)],
            dtype=float,
        )

    def estimate_selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of points in the closed range ``[low, high]``."""
        total = self.total_count
        if total <= 0:
            return 0.0
        return self.estimate_range(low, high) / total

    def estimate_equal(self, value: float, *, value_granularity: float = 1.0) -> float:
        """Estimated number of points equal to ``value``.

        Under the continuous-value assumption the estimate for an equality
        predicate is the bucket density times the granularity of a single
        domain value (1 for the paper's integer domains).  Point-mass buckets
        contribute their full count when they sit exactly on ``value``.

        A value lying exactly on a border shared by two adjacent buckets is
        counted in the right bucket only (half-open convention); the closed
        right border of the last bucket -- or of a bucket followed by a gap --
        still counts in that bucket, so no value inside the histogram range is
        estimated as zero spuriously.
        """
        view = self.segment_view()
        if view.fast:
            return view.equal_estimate(value, value_granularity)
        estimate = 0.0
        border_bucket: Bucket | None = None
        interior_hit = False
        for bucket in self.buckets():
            if bucket.is_point_mass:
                if bucket.left == value:
                    estimate += bucket.count
            elif bucket.left <= value < bucket.right:
                estimate += bucket.density * min(value_granularity, bucket.width)
                interior_hit = True
            elif value == bucket.right:
                border_bucket = bucket
        if border_bucket is not None and not interior_hit:
            estimate += border_bucket.density * min(value_granularity, border_bucket.width)
        return float(estimate)

    def count_at_most(self, x: float) -> float:
        """Estimated number of points with value <= x."""
        view = self.segment_view()
        if view.fast:
            return view.count_at_most(x)
        return float(sum(bucket.count_at_most(x) for bucket in self.buckets()))

    def cdf(self, x: float) -> float:
        """Approximate CDF at ``x`` (0 for an empty histogram)."""
        total = self.total_count
        if total <= 0:
            return 0.0
        return self.count_at_most(x) / total

    def cdf_many(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorised CDF evaluation at each point of ``xs``."""
        return self._cdf_many(xs, include_point_mass_at=True)

    def cdf_left_many(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorised left limit of the CDF, ``P(X < x)``, at each point of ``xs``.

        The approximate CDF is continuous inside regular buckets but jumps at
        point-mass (singular) buckets; the KS metric needs both one-sided
        limits to locate the supremum exactly.
        """
        return self._cdf_many(xs, include_point_mass_at=False)

    def _cdf_many(self, xs: Sequence[float], *, include_point_mass_at: bool) -> np.ndarray:
        xs_arr = np.asarray(xs, dtype=float)
        view = self.segment_view()
        if view.n_buckets == 0 or view.total <= 0:
            return np.zeros(xs_arr.shape, dtype=float)
        if view.fast:
            numerators = view.count_at_most_many(
                xs_arr, include_point_mass_at=include_point_mass_at
            )
            return numerators / view.total

        buckets = self.buckets()
        total = view.total
        cumulative = np.zeros(xs_arr.shape, dtype=float)
        for bucket in buckets:
            if bucket.is_point_mass:
                if include_point_mass_at:
                    cumulative += np.where(xs_arr >= bucket.left, bucket.count, 0.0)
                else:
                    cumulative += np.where(xs_arr > bucket.left, bucket.count, 0.0)
            else:
                fraction = np.clip((xs_arr - bucket.left) / bucket.width, 0.0, 1.0)
                cumulative += bucket.count * fraction
        return cumulative / total

    def cdf_breakpoints(self) -> np.ndarray:
        """Value points at which the approximate CDF changes slope."""
        buckets = self.buckets()
        if not buckets:
            return np.empty(0, dtype=float)
        points = [b.left for b in buckets] + [b.right for b in buckets]
        return np.unique(np.asarray(points, dtype=float))

    def to_distribution(self, *, points_per_bucket: int = 8) -> DataDistribution:
        """A discretised :class:`DataDistribution` view of the approximation.

        Each non-point-mass bucket is expanded into ``points_per_bucket``
        equally spaced representative values carrying equal shares of the
        bucket count (rounded to integers with the remainder assigned to the
        first representatives).  Useful for plotting and for treating a
        histogram as a data set (the distributed-union reduction does this).
        """
        dist = DataDistribution()
        for bucket in self.buckets():
            count = int(round(bucket.count))
            if count <= 0:
                continue
            if bucket.is_point_mass:
                dist.add(bucket.left, count)
                continue
            n_points = min(points_per_bucket, count)
            positions = np.linspace(bucket.left, bucket.right, n_points + 2)[1:-1]
            base, remainder = divmod(count, n_points)
            for index, position in enumerate(positions):
                share = base + (1 if index < remainder else 0)
                if share > 0:
                    dist.add(float(position), share)
        return dist

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        try:
            return (
                f"{type(self).__name__}(buckets={self.bucket_count}, "
                f"count={self.total_count:.0f})"
            )
        except EmptyHistogramError:
            return f"{type(self).__name__}(empty)"


class DynamicHistogram(Histogram):
    """A histogram that is maintained incrementally under insertions and deletions.

    ``insert`` / ``delete`` are template methods: they delegate to the
    subclass hooks :meth:`_insert` / :meth:`_delete` and invalidate the cached
    segment view afterwards, so subclasses cannot forget to bump the
    generation counter.  The invalidation runs even when the hook raises,
    because a failed update (e.g. a partial deletion) may still have mutated
    state.
    """

    @abc.abstractmethod
    def _insert(self, value: float) -> None:
        """Subclass hook: insert one occurrence of ``value``."""

    @abc.abstractmethod
    def _delete(self, value: float) -> None:
        """Subclass hook: delete one occurrence of ``value``."""

    def insert(self, value: float) -> None:
        """Insert one occurrence of ``value``."""
        try:
            self._insert(value)
        finally:
            self._invalidate_view()

    def delete(self, value: float) -> None:
        """Delete one occurrence of ``value``."""
        try:
            self._delete(value)
        finally:
            self._invalidate_view()

    def insert_many(self, values: Iterable[float], *, repartition_interval: int = 1) -> None:
        """Insert every value of an iterable, in order.

        ``repartition_interval`` is a batching hint shared by every dynamic
        histogram: implementations with an amortisable maintenance step (the
        DC Chi-square check, the DVO/DADO split-merge scan) may run it only
        every that many insertions instead of after each one.  The base
        implementation performs plain per-value inserts and ignores the hint,
        so passing it is always safe.
        """
        require_positive_int(repartition_interval, "repartition_interval")
        insert = self.insert
        for value in values:
            insert(value)

    def delete_many(self, values: Iterable[float]) -> None:
        """Delete every value of an iterable, in order (the batched mirror of
        :meth:`insert_many`).

        Histograms with a vectorisable delete path (DC, DVO/DADO) override the
        :meth:`_delete_many` hook to bin a whole in-range batch with one
        ``searchsorted`` + ``bincount`` pass; the base hook performs per-value
        deletes.  Either way the semantics match deleting the values one by
        one, and a failure part-way through reports how far the batch got by
        attaching ``applied_count`` to the raised exception -- callers (the
        service store and ingest pipeline) use it to requeue only the
        unapplied tail.
        """
        if not isinstance(values, (list, np.ndarray)):
            values = list(values)
        try:
            self._delete_many(values)
        finally:
            self._invalidate_view()

    def _delete_many(self, values: Sequence[float]) -> None:
        """Subclass hook: delete a batch of values, in order.

        Implementations must attach ``applied_count`` (number of values fully
        deleted before the failure) to any exception they raise part-way
        through; view invalidation is handled by the :meth:`delete_many`
        template.
        """
        applied = 0
        delete = self._delete
        try:
            for value in values:
                delete(float(value))
                applied += 1
        except Exception as error:
            error.applied_count = applied
            raise

    def apply(self, stream: Iterable) -> None:
        """Replay an update stream of :class:`~repro.workloads.streams.UpdateOp`."""
        insert, delete = self.insert, self.delete
        for op in stream:
            if op.is_insert:
                insert(op.value)
            else:
                delete(op.value)


class SnapshotHistogram(Histogram):
    """An immutable histogram frozen from an owned :class:`SegmentView`.

    This is the value type of RCU-style publication: a writer snapshots its
    live histogram (:meth:`Histogram.published_view`) and hands readers a
    ``SnapshotHistogram`` wrapping the detached view.  The snapshot exposes
    the full read API -- estimation methods hit the pre-built view directly,
    and :meth:`buckets` reconstructs the segment list from the view's arrays
    for the non-fast fallbacks -- but has no mutators, so a reference to it
    is valid forever without any locking.
    """

    def __init__(self, view: SegmentView) -> None:
        if not view.owned:
            view = view.detach()
        self._view_cache = view

    def segment_view(self) -> SegmentView:
        view = self._view_cache
        assert view is not None  # set in __init__, never invalidated
        return view

    def buckets(self) -> list[Bucket]:
        """Reconstruct the segment list (point masses + regular, value order)."""
        view = self.segment_view()
        lefts = np.concatenate((view.pm_values, view.reg_lefts))
        rights = np.concatenate((view.pm_values, view.reg_rights))
        counts = np.concatenate((view.pm_counts, view.reg_counts))
        order = np.lexsort((rights, lefts))
        return [
            Bucket(float(lefts[i]), float(rights[i]), float(counts[i]))
            for i in order
        ]

    def _invalidate_view(self) -> None:  # pragma: no cover - defensive
        raise TypeError("SnapshotHistogram is immutable; it cannot be invalidated")
