"""Dynamic V-Optimal (DVO) and Dynamic Average-Deviation Optimal (DADO) histograms.

Section 4 of the paper.  Each bucket stores its value range and the point
counts of ``sub_buckets`` equal-width sub-ranges (two in the paper); this is
the minimal internal structure that lets the algorithm estimate how much the
frequencies inside a bucket deviate from their average (the bucket's *phi*,
Eq. 3 for DVO and Eq. 5 for DADO) without storing individual frequencies.

Maintenance is a sequence of *split-merge* repartitions: after each insertion
the algorithm finds the bucket with the largest phi (the best one to split --
Theorem 4.1) and the adjacent pair whose hypothetical merge has the smallest
phi; if splitting the former and merging the latter lowers the total phi
(``min delta phi <= 0``), the split and merge are performed.  Because memory is
fixed, the operations always come in pairs and the bucket count never changes.

Points beyond the current range get a fresh single-point bucket ("borrow one
bucket") immediately balanced by merging the most similar adjacent pair.
Deletions decrement the matching sub-bucket counter; when a bucket has run out
of points, the closest non-empty bucket is decremented instead (Section 7.3).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import require_positive_float, require_positive_int
from ..exceptions import ConfigurationError, DeletionError, InsufficientDataError
from .base import DynamicHistogram
from .bucket import Bucket, SubBucketedBucket
from .deviation import DeviationMetric

__all__ = ["DVOHistogram", "DADOHistogram"]

Segment = Tuple[float, float, float]

#: Below this batch size the vectorised insert path costs more than it saves.
_VECTOR_MIN_BATCH = 32


class _VBucket:
    """Internal mutable bucket: a value range with ``k`` sub-range counters."""

    __slots__ = ("left", "right", "counts")

    def __init__(self, left: float, right: float, counts: List[float]) -> None:
        self.left = left
        self.right = right
        self.counts = counts

    @property
    def count(self) -> float:
        return sum(self.counts)

    @property
    def width(self) -> float:
        return self.right - self.left

    @property
    def is_point_mass(self) -> bool:
        return self.right == self.left

    def borders(self) -> List[float]:
        """The k + 1 borders of the sub-ranges (just the value for a point mass)."""
        k = len(self.counts)
        if self.is_point_mass or k == 1:
            return [self.left, self.right]
        step = self.width / k
        return [self.left + i * step for i in range(k)] + [self.right]

    def segments(self) -> List[Segment]:
        """Piecewise-uniform segments ``(left, right, count)`` of this bucket."""
        if self.is_point_mass:
            return [(self.left, self.right, self.count)]
        borders = self.borders()
        return [
            (borders[i], borders[i + 1], self.counts[i])
            for i in range(len(self.counts))
        ]

    def sub_bucket_index(self, value: float) -> int:
        """Index of the sub-range that ``value`` falls into (clamped)."""
        k = len(self.counts)
        if self.is_point_mass or k == 1:
            return 0
        position = (value - self.left) / self.width
        index = int(position * k)
        return max(0, min(index, k - 1))


def _project_segments(segments: Sequence[Segment], borders: Sequence[float]) -> List[float]:
    """Distribute segment mass onto the sub-ranges delimited by ``borders``.

    Uniform assumption within each source segment; point-mass segments are
    assigned entirely to the sub-range containing their value (ties go left).
    Total mass is preserved exactly.
    """
    n_parts = len(borders) - 1
    counts = [0.0] * n_parts
    total = sum(count for _, _, count in segments)
    assigned = 0.0
    for left, right, count in segments:
        if count <= 0:
            continue
        if right == left:
            index = bisect.bisect_left(borders, left, 1, n_parts)
            counts[index - 1] += count
            assigned += count
            continue
        width = right - left
        for part in range(n_parts):
            overlap = min(right, borders[part + 1]) - max(left, borders[part])
            if overlap > 0:
                share = count * overlap / width
                counts[part] += share
                assigned += share
    # Numerical drift correction: keep the exact total.  Positive drift goes
    # to the last sub-range; a negative drift larger than the last sub-range's
    # count is taken from the preceding positive sub-ranges instead of being
    # clamped away (clamping would silently lose mass).
    drift = total - assigned
    if counts and drift > 0:
        counts[-1] += drift
    elif counts and drift < 0:
        deficit = -drift
        for part in range(n_parts - 1, -1, -1):
            if deficit <= 0:
                break
            taken = min(counts[part], deficit)
            counts[part] -= taken
            deficit -= taken
    return counts


def _k2_value_counts(left: float, right: float, value_unit: float) -> Tuple[float, float]:
    """Domain-value counts of a non-point-mass 2-sub-bucket bucket's segments.

    Replicates exactly what :func:`_phi_of_segments` would derive from
    ``bucket.segments()`` -- including the floating-point identities of the
    border arithmetic in ``_VBucket.borders()`` -- without building the border
    and segment lists.
    """
    width = right - left
    middle = left + width / 2
    first_width = middle - left
    second_width = right - middle
    if first_width <= 0:
        n0 = 1.0
    else:
        n0 = first_width / value_unit
        if n0 < 1.0:
            n0 = 1.0
    if second_width <= 0:
        n1 = 1.0
    else:
        n1 = second_width / value_unit
        if n1 < 1.0:
            n1 = 1.0
    return n0, n1


def _phi_of_counts(
    value_counts: Tuple[float, ...], counts: Tuple[float, ...], variance: bool
) -> float:
    """Phi of parallel (value-count, point-count) segment tuples.

    The allocation-free core of :func:`_phi_of_segments`, used by the
    per-insert phi refreshes; the accumulation order matches the generic
    implementation so cached phis stay bit-identical to a full rebuild.
    """
    total_values = 0.0
    total_count = 0.0
    for n_values in value_counts:
        total_values += n_values
    for count in counts:
        total_count += count
    if total_values <= 0 or total_count <= 0:
        return 0.0
    average = total_count / total_values
    phi = 0.0
    if variance:
        for n_values, count in zip(value_counts, counts):
            deviation = count / n_values - average
            phi += n_values * (deviation * deviation)
    else:
        for n_values, count in zip(value_counts, counts):
            deviation = count / n_values - average
            phi += n_values * abs(deviation)
    return phi


def _phi_of_segments(segments: List[Segment], variance: bool, value_unit: float) -> float:
    """Specialised :func:`~repro.core.deviation.segments_phi` for the hot path.

    Phi refreshes run once per inserted value, so the generic implementation's
    per-call overhead (enum coercion, validation, per-segment method dispatch)
    dominates bucket maintenance.  This inlined version performs the *exact*
    same floating-point operations in the same order -- the cached phis must be
    bit-identical to a from-scratch ``segments_phi`` rebuild
    (``tests/test_properties.py`` asserts that equivalence).
    """
    if not segments:
        return 0.0
    value_counts: List[float] = []
    total_values = 0.0
    total_count = 0.0
    for left, right, count in segments:
        width = right - left
        if width <= 0:
            n_values = 1.0
        else:
            n_values = width / value_unit
            if n_values < 1.0:
                n_values = 1.0
        value_counts.append(n_values)
        total_values += n_values
        total_count += count
    if total_values <= 0 or total_count <= 0:
        return 0.0
    average = total_count / total_values
    phi = 0.0
    if variance:
        for (_, _, count), n_values in zip(segments, value_counts):
            deviation = count / n_values - average
            phi += n_values * (deviation * deviation)
    else:
        for (_, _, count), n_values in zip(segments, value_counts):
            deviation = count / n_values - average
            phi += n_values * abs(deviation)
    return phi


class DVOHistogram(DynamicHistogram):
    """Dynamic V-Optimal histogram (squared-deviation phi).

    Parameters
    ----------
    n_buckets:
        Fixed bucket budget (set from memory via
        :func:`~repro.core.memory.buckets_for_memory`).
    sub_buckets:
        Number of equal-width sub-ranges per bucket.  The paper uses 2 and
        reports that 2-3 perform comparably while finer subdivisions hurt;
        values other than 2 are provided for the ablation benchmarks.
    value_unit:
        Spacing between adjacent domain values (1 for integer domains); used
        when converting sub-range widths into value counts for phi.
    repartition_threshold:
        Upper bound on ``min delta phi`` beyond which repartitioning is not
        triggered; the paper uses the most aggressive choice, 0.
    """

    #: Deviation metric: squared deviations for DVO (overridden by DADO).
    metric = DeviationMetric.VARIANCE

    def __init__(
        self,
        n_buckets: int,
        *,
        sub_buckets: int = 2,
        value_unit: float = 1.0,
        repartition_threshold: float = 0.0,
    ) -> None:
        require_positive_int(n_buckets, "n_buckets")
        require_positive_int(sub_buckets, "sub_buckets")
        require_positive_float(value_unit, "value_unit")
        if repartition_threshold > 0:
            raise ConfigurationError(
                "repartition_threshold must be non-positive "
                f"(a positive bound would accept harmful repartitions), got {repartition_threshold}"
            )
        self._budget = n_buckets
        self._k = sub_buckets
        self._value_unit = value_unit
        self._threshold = repartition_threshold

        self._loading: Optional[Dict[float, int]] = {}
        self._buckets: List[_VBucket] = []
        # Incrementally maintained caches, kept in lockstep with _buckets:
        # left borders (for O(log B) bucket location without rebuilding a
        # border list per insert), per-bucket phis and adjacent-pair merge
        # phis (spliced locally on split/merge instead of recomputed fully).
        self._lefts: List[float] = []
        self._phis: List[float] = []
        self._pair_phis: List[float] = []
        self._repartition_count = 0

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------
    @property
    def bucket_budget(self) -> int:
        """Fixed number of buckets the histogram maintains."""
        return self._budget

    @property
    def sub_bucket_count(self) -> int:
        """Number of sub-buckets (counters) per bucket."""
        return self._k

    @property
    def repartition_count(self) -> int:
        """Number of split-merge repartitions performed so far."""
        return self._repartition_count

    @property
    def is_loading(self) -> bool:
        """True while the initial loading phase is still buffering points."""
        return self._loading is not None

    def sub_bucketed_buckets(self) -> List[SubBucketedBucket]:
        """The internal buckets as :class:`SubBucketedBucket` values.

        Only available for the paper's two-sub-bucket configuration.
        """
        if self._k != 2:
            raise ConfigurationError(
                f"sub_bucketed_buckets() requires sub_buckets=2, this histogram uses {self._k}"
            )
        self._require_bootstrapped()
        return [
            SubBucketedBucket(bucket.left, bucket.right, bucket.counts[0], bucket.counts[1])
            for bucket in self._buckets
        ]

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------
    def buckets(self) -> List[Bucket]:
        if self._loading is not None:
            return [
                Bucket(value, value, float(count))
                for value, count in sorted(self._loading.items())
            ]
        result: List[Bucket] = []
        for bucket in self._buckets:
            if 0 < bucket.width <= self._value_unit:
                # Under the continuous-value assumption a bucket no wider than
                # one value unit covers exactly one domain value: expose it as
                # a point mass at that value (the paper's single-value bucket).
                snapped = round(bucket.left / self._value_unit) * self._value_unit
                result.append(Bucket(snapped, snapped, bucket.count))
                continue
            for left, right, count in bucket.segments():
                result.append(Bucket(left, right, count))
        return result

    # ------------------------------------------------------------------
    # update API
    # ------------------------------------------------------------------
    def _insert(self, value: float) -> None:
        if self._insert_value(float(value)):
            self._maybe_repartition()

    def _insert_value(self, value: float) -> bool:
        """Insert one value; True when an in-range insertion happened.

        In-range insertions are the ones whose repartition check may be
        batched (:meth:`insert_many`); loading-phase and out-of-range
        insertions rebalance on their own.
        """
        if self._loading is not None:
            self._loading[value] = self._loading.get(value, 0) + 1
            if len(self._loading) > self._budget:
                self._bootstrap()
            return False

        if value < self._buckets[0].left or value > self._buckets[-1].right:
            self._insert_out_of_range(value)
            return False

        index = self._locate_bucket(value)
        bucket = self._buckets[index]
        bucket.counts[bucket.sub_bucket_index(value)] += 1.0
        self._refresh_bucket(index)
        return True

    def insert_many(self, values, *, repartition_interval: int = 1) -> None:
        """Insert a batch of values, optionally batching repartition checks.

        With the default ``repartition_interval = 1`` the result is identical
        to inserting the values one by one; it just avoids per-value template
        overhead.  A larger interval runs the O(B) split/merge scan only every
        ``repartition_interval`` in-range insertions (and once at the end of
        the batch), trading slightly delayed repartitions for substantially
        higher sustained insert throughput on bulk loads.  Out-of-range
        insertions still rebalance immediately, and the total count is always
        exact.

        Between two maintenance points nothing reads the phi caches, so the
        batch is processed one *interval chunk* at a time: a chunk whose
        values all land inside existing buckets is binned with one
        ``searchsorted`` + ``bincount`` pass (sub-bucket counter increments
        commute, so the end-of-chunk state matches per-value insertion up to
        floating-point associativity of the counter sums), and only then are
        the phi/pair-phi caches refreshed for the distinct touched buckets and
        the split/merge scan run.  Chunks containing out-of-range or
        border-gap values fall back to strict per-value handling, since those
        mutate bucket ranges mid-chunk.
        """
        require_positive_int(repartition_interval, "repartition_interval")
        if isinstance(values, np.ndarray):
            arr = values.astype(float, copy=False).ravel()
            n_values = arr.shape[0]
        else:
            arr = list(values)
            n_values = len(arr)
        if repartition_interval == 1 or n_values < _VECTOR_MIN_BATCH:
            # Small batches (and strict per-value maintenance) are faster
            # without the numpy round-trip; this also keeps single-value
            # insert_many calls as cheap as plain insert.
            self._insert_many_scalar(arr, repartition_interval)
            return
        arr = np.asarray(arr, dtype=float)
        dirty: set = set()
        # Border arrays are reused across chunks; bucket ranges only change
        # when maintenance runs (split/merge bumps repartition_count) or a
        # chunk falls back to the per-value path (stretch / borrow), so the
        # cache is dropped exactly there.
        borders = None
        try:
            pending = 0
            position = 0
            while position < n_values:
                if self._loading is not None:
                    self._insert_value(float(arr[position]))
                    position += 1
                    continue
                chunk = arr[position : position + repartition_interval]
                position += chunk.shape[0]
                if borders is None:
                    buckets = self._buckets
                    borders = (
                        np.asarray(self._lefts, dtype=float),
                        np.fromiter(
                            (bucket.right for bucket in buckets),
                            dtype=float,
                            count=len(buckets),
                        ),
                    )
                if self._apply_chunk_vectorised(chunk, borders, dirty):
                    pending += chunk.shape[0]
                else:
                    borders = None
                    for value in chunk:
                        value = float(value)
                        if self._loading is not None:  # pragma: no cover - defensive
                            self._insert_value(value)
                            continue
                        if value < self._buckets[0].left or value > self._buckets[-1].right:
                            self._refresh_dirty(dirty)
                            self._insert_out_of_range(value)
                            continue
                        index = self._locate_bucket(value)
                        bucket = self._buckets[index]
                        bucket.counts[bucket.sub_bucket_index(value)] += 1.0
                        dirty.add(index)
                        pending += 1
                        if pending >= repartition_interval:
                            self._refresh_dirty(dirty)
                            self._maybe_repartition()
                            pending = 0
                if pending >= repartition_interval:
                    self._refresh_dirty(dirty)
                    repartitions_before = self._repartition_count
                    self._maybe_repartition()
                    if self._repartition_count != repartitions_before:
                        borders = None
                    pending = 0
            if pending:
                self._refresh_dirty(dirty)
                self._maybe_repartition()
        finally:
            # On an exception mid-batch the dirty buckets must still be
            # refreshed, or later maintenance would read stale phis.
            self._refresh_dirty(dirty)
            self._invalidate_view()

    def _insert_many_scalar(self, values, repartition_interval: int) -> None:
        """Per-value batch insertion (strict maintenance, immediate refresh)."""
        try:
            pending = 0
            for value in values:
                if self._insert_value(float(value)):
                    pending += 1
                    if pending >= repartition_interval:
                        self._maybe_repartition()
                        pending = 0
            if pending:
                self._maybe_repartition()
        finally:
            self._invalidate_view()

    def _apply_chunk_vectorised(
        self, chunk: "np.ndarray", borders: Tuple["np.ndarray", "np.ndarray"], dirty: set
    ) -> bool:
        """Bin a chunk of values into sub-bucket counters in one numpy pass.

        ``borders`` is the caller-cached ``(lefts, rights)`` array pair of the
        current bucket list.  Only applies when every value lands strictly
        inside an existing bucket's range (no out-of-range extension, no
        border-gap stretch); returns False otherwise so the caller can fall
        back to per-value handling.  Touched bucket indices are added to
        ``dirty`` -- the caller must refresh the phi caches before they are
        next consumed.
        """
        buckets = self._buckets
        n_buckets = len(buckets)
        lefts, rights = borders
        if np.any(chunk < lefts[0]) or np.any(chunk > rights[-1]):
            return False
        indices = np.searchsorted(lefts, chunk, side="right") - 1
        np.clip(indices, 0, n_buckets - 1, out=indices)
        bucket_rights = rights[indices]
        if np.any(chunk > bucket_rights):
            # Values inside a border gap: _locate_bucket would stretch a
            # bucket, which must happen in submission order.
            return False
        k = self._k
        if k == 1:
            flat_indices = indices
        else:
            bucket_lefts = lefts[indices]
            widths = bucket_rights - bucket_lefts
            with np.errstate(divide="ignore", invalid="ignore"):
                subs = ((chunk - bucket_lefts) / widths * k).astype(np.int64)
            subs[widths <= 0] = 0
            np.clip(subs, 0, k - 1, out=subs)
            flat_indices = indices * k + subs
        increments = np.bincount(flat_indices, minlength=n_buckets * k)
        for flat_index in np.nonzero(increments)[0]:
            bucket_index = int(flat_index) // k
            buckets[bucket_index].counts[int(flat_index) % k] += float(
                increments[flat_index]
            )
            dirty.add(bucket_index)
        return True

    def _refresh_dirty(self, dirty: set) -> None:
        """Recompute cached phis for the distinct dirty buckets, then clear."""
        if not dirty:
            return
        buckets = self._buckets
        phis = self._phis
        pair_indices = set()
        for index in dirty:
            phis[index] = self._bucket_phi(buckets[index])
            if index > 0:
                pair_indices.add(index - 1)
            if index + 1 < len(buckets):
                pair_indices.add(index)
        pair_phis = self._pair_phis
        for pair_index in pair_indices:
            pair_phis[pair_index] = self._merged_phi(
                buckets[pair_index], buckets[pair_index + 1]
            )
        dirty.clear()

    def _delete(self, value: float) -> None:
        value = float(value)
        if self._loading is not None:
            count = self._loading.get(value, 0)
            if count > 1:
                self._loading[value] = count - 1
            elif count == 1:
                del self._loading[value]
            else:
                raise DeletionError(f"value {value!r} is not present in the loading buffer")
            return

        # Sum the raw counters directly: going through total_count would
        # build a segment view that the surrounding delete() template is
        # about to invalidate anyway.
        if sum(sum(bucket.counts) for bucket in self._buckets) < 1.0 - 1e-9:
            raise DeletionError("cannot delete from an empty histogram")

        # Remove one unit of mass, starting at the sub-bucket containing the
        # value and spilling outwards to the closest buckets when the local
        # counters (which may be fractional after repartitioning) run dry.
        remaining = 1.0
        touched = set()
        for bucket_index, sub_index in self._deletion_candidates(value):
            if remaining <= 1e-12:
                break
            bucket = self._buckets[bucket_index]
            available = bucket.counts[sub_index]
            if available <= 0:
                continue
            taken = min(available, remaining)
            bucket.counts[sub_index] -= taken
            remaining -= taken
            touched.add(bucket_index)
        if remaining > 1e-9:
            raise DeletionError("all buckets are empty; nothing to delete")
        for bucket_index in touched:
            self._refresh_bucket(bucket_index)

    # ------------------------------------------------------------------
    # loading / bootstrap
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Build the initial buckets from the loading buffer."""
        assert self._loading is not None
        items = sorted(self._loading.items())
        self._loading = None
        if not items:
            raise InsufficientDataError("loading phase ended with no data")

        values = [value for value, _ in items]
        if len(values) == 1:
            only_value, only_count = items[0]
            self._buckets = [_VBucket(only_value, only_value, [float(only_count)] + [0.0] * (self._k - 1))]
        else:
            borders = values  # one bucket between each pair of consecutive points
            self._buckets = []
            for i in range(len(borders) - 1):
                self._buckets.append(_VBucket(borders[i], borders[i + 1], [0.0] * self._k))
            for value, count in items:
                index = min(
                    bisect.bisect_right(borders, value) - 1, len(self._buckets) - 1
                )
                index = max(index, 0)
                bucket = self._buckets[index]
                bucket.counts[bucket.sub_bucket_index(value)] += float(count)
        self._rebuild_caches()
        # The exposed buckets changed shape (loading point masses -> real
        # buckets); a bootstrap triggered from a read path must not leave a
        # stale segment view behind.
        self._invalidate_view()

    def _require_bootstrapped(self) -> None:
        if self._loading is not None:
            self._bootstrap_from_buffer_if_possible()
        if self._loading is not None:
            raise InsufficientDataError(
                "the histogram is still in its loading phase; insert more data first"
            )

    def _bootstrap_from_buffer_if_possible(self) -> None:
        if self._loading and len(self._loading) > 1:
            self._bootstrap()

    # ------------------------------------------------------------------
    # insertion helpers
    # ------------------------------------------------------------------
    def _locate_bucket(self, value: float) -> int:
        """Index of the bucket whose range contains (or is closest to) ``value``."""
        index = bisect.bisect_right(self._lefts, value) - 1
        index = max(0, min(index, len(self._buckets) - 1))
        bucket = self._buckets[index]
        if value > bucket.right and index + 1 < len(self._buckets):
            # ``value`` falls in a gap between bucket ``index`` and the next
            # one; stretch whichever border is closer.
            next_bucket = self._buckets[index + 1]
            if abs(value - bucket.right) <= abs(next_bucket.left - value):
                self._resize_bucket(index, bucket.left, value)
            else:
                self._resize_bucket(index + 1, value, next_bucket.right)
                return index + 1
        return index

    def _resize_bucket(self, index: int, new_left: float, new_right: float) -> None:
        """Change a bucket's range, re-projecting its mass onto the new sub-ranges."""
        bucket = self._buckets[index]
        if new_right < new_left:
            raise ConfigurationError("new bucket range is inverted")
        resized = _VBucket(new_left, new_right, [0.0] * self._k)
        resized.counts = _project_segments(bucket.segments(), resized.borders())
        self._buckets[index] = resized
        self._lefts[index] = new_left
        self._refresh_bucket(index)

    def _insert_out_of_range(self, value: float) -> None:
        """Handle a point beyond the end buckets: borrow a bucket, then merge.

        Borrowing a bucket only counts as a repartition when the budget was
        exhausted and a compensating merge was actually performed; while the
        bucket count is still under budget the stretch is free and must not
        inflate the repartition statistics.
        """
        new_bucket = _VBucket(value, value, [1.0] + [0.0] * (self._k - 1))
        if value < self._buckets[0].left:
            index = 0
            self._buckets.insert(0, new_bucket)
        else:
            index = len(self._buckets)
            self._buckets.append(new_bucket)
        self._splice_after_insert(index)
        if len(self._buckets) > self._budget:
            merge_index = self._find_best_merge()
            if merge_index is not None:
                self._merge_pair(merge_index)
                self._repartition_count += 1

    # ------------------------------------------------------------------
    # phi caches
    # ------------------------------------------------------------------
    def _bucket_phi(self, bucket: _VBucket) -> float:
        if bucket.right == bucket.left:
            # A point-mass bucket is a single segment: phi is exactly zero.
            return 0.0
        if self._k == 2:
            n0, n1 = _k2_value_counts(bucket.left, bucket.right, self._value_unit)
            counts = bucket.counts
            return _phi_of_counts(
                (n0, n1),
                (counts[0], counts[1]),
                self.metric is DeviationMetric.VARIANCE,
            )
        return _phi_of_segments(
            bucket.segments(),
            self.metric is DeviationMetric.VARIANCE,
            self._value_unit,
        )

    def _merged_phi(self, first: _VBucket, second: _VBucket) -> float:
        if self._k == 2 and first.right != first.left and second.right != second.left:
            n00, n01 = _k2_value_counts(first.left, first.right, self._value_unit)
            n10, n11 = _k2_value_counts(second.left, second.right, self._value_unit)
            return _phi_of_counts(
                (n00, n01, n10, n11),
                (first.counts[0], first.counts[1], second.counts[0], second.counts[1]),
                self.metric is DeviationMetric.VARIANCE,
            )
        return _phi_of_segments(
            first.segments() + second.segments(),
            self.metric is DeviationMetric.VARIANCE,
            self._value_unit,
        )

    def _rebuild_caches(self) -> None:
        """Recompute every cache from scratch (bootstrap / deserialisation).

        Steady-state maintenance never calls this: split, merge and
        out-of-range insertion splice the caches locally (only the touched
        bucket and its two adjacent pairs change).
        """
        self._lefts = [bucket.left for bucket in self._buckets]
        self._phis = [self._bucket_phi(bucket) for bucket in self._buckets]
        self._pair_phis = [
            self._merged_phi(self._buckets[i], self._buckets[i + 1])
            for i in range(len(self._buckets) - 1)
        ]

    def _splice_after_insert(self, index: int) -> None:
        """Splice the caches after a bucket was inserted at an end position."""
        buckets = self._buckets
        self._lefts.insert(index, buckets[index].left)
        self._phis.insert(index, self._bucket_phi(buckets[index]))
        if len(buckets) < 2:
            return
        if index == 0:
            self._pair_phis.insert(0, self._merged_phi(buckets[0], buckets[1]))
        else:
            self._pair_phis.append(self._merged_phi(buckets[index - 1], buckets[index]))

    def _refresh_bucket(self, index: int) -> None:
        """Recompute cached phi values affected by a change to bucket ``index``."""
        self._phis[index] = self._bucket_phi(self._buckets[index])
        if index > 0:
            self._pair_phis[index - 1] = self._merged_phi(
                self._buckets[index - 1], self._buckets[index]
            )
        if index < len(self._buckets) - 1:
            self._pair_phis[index] = self._merged_phi(
                self._buckets[index], self._buckets[index + 1]
            )

    # ------------------------------------------------------------------
    # repartitioning (split-merge)
    # ------------------------------------------------------------------
    def _find_best_split(self) -> Optional[int]:
        """Bucket with the largest phi that can actually be split.

        Buckets no wider than one domain value cannot be split meaningfully
        (they correspond to the paper's width-one singular buckets), so they
        are skipped.
        """
        best_index: Optional[int] = None
        best_phi = 0.0
        for index, phi in enumerate(self._phis):
            if self._buckets[index].width <= self._value_unit:
                continue
            if phi > best_phi:
                best_phi = phi
                best_index = index
        return best_index

    def _find_best_merge(self, *, exclude: Optional[int] = None) -> Optional[int]:
        """Left index of the adjacent pair whose merge has the smallest phi."""
        best_index: Optional[int] = None
        best_phi = float("inf")
        for index, phi in enumerate(self._pair_phis):
            if exclude is not None and index in (exclude - 1, exclude):
                continue
            if phi < best_phi:
                best_phi = phi
                best_index = index
        return best_index

    def _maybe_repartition(self) -> None:
        if len(self._buckets) < 3:
            return
        split_index = self._find_best_split()
        if split_index is None:
            return
        merge_index = self._find_best_merge(exclude=split_index)
        if merge_index is None:
            return
        delta_phi = self._pair_phis[merge_index] - self._phis[split_index]
        if delta_phi > self._threshold:
            return
        self._split_and_merge(split_index, merge_index)
        self._repartition_count += 1

    def _split_and_merge(self, split_index: int, merge_index: int) -> None:
        """Split the bucket at ``split_index`` and merge the pair at ``merge_index``."""
        # Perform the merge first or second depending on positions so indices
        # stay valid; easiest is to operate on the higher index first.
        if merge_index > split_index:
            self._merge_pair(merge_index)
            self._split_bucket(split_index)
        else:
            self._split_bucket(split_index)
            self._merge_pair(merge_index)

    def _merge_pair(self, index: int) -> None:
        """Merge buckets ``index`` and ``index + 1`` into one.

        Only the merged bucket's phi and the (at most two) pairs adjacent to
        it change; the caches are spliced in an O(1)-sized neighbourhood
        instead of rebuilt.
        """
        first, second = self._buckets[index], self._buckets[index + 1]
        merged = _VBucket(first.left, second.right, [0.0] * self._k)
        merged.counts = _project_segments(
            first.segments() + second.segments(), merged.borders()
        )
        buckets = self._buckets
        buckets[index : index + 2] = [merged]
        del self._lefts[index + 1]
        self._phis[index : index + 2] = [self._bucket_phi(merged)]
        new_pairs = []
        if index > 0:
            new_pairs.append(self._merged_phi(buckets[index - 1], merged))
        if index + 1 < len(buckets):
            new_pairs.append(self._merged_phi(merged, buckets[index + 1]))
        low = index - 1 if index > 0 else 0
        self._pair_phis[low : index + 2] = new_pairs

    def _split_bucket(self, index: int) -> None:
        """Split bucket ``index`` at its most balanced internal border."""
        bucket = self._buckets[index]
        if bucket.is_point_mass:
            return
        borders = bucket.borders()
        k = len(bucket.counts)
        total = bucket.count
        # Pick the interior border that divides the count most evenly (for the
        # paper's k = 2 this is simply the midpoint).
        best_border_index = 1
        best_imbalance = float("inf")
        cumulative = 0.0
        for border_index in range(1, k):
            cumulative += bucket.counts[border_index - 1]
            imbalance = abs(cumulative - (total - cumulative))
            if imbalance < best_imbalance:
                best_imbalance = imbalance
                best_border_index = border_index
        split_value = borders[best_border_index]
        left_count = sum(bucket.counts[:best_border_index])
        right_count = total - left_count

        left_bucket = _VBucket(bucket.left, split_value, [left_count / k] * k)
        right_bucket = _VBucket(split_value, bucket.right, [right_count / k] * k)
        buckets = self._buckets
        buckets[index : index + 1] = [left_bucket, right_bucket]
        # Splice the caches locally: only the two new buckets and the pairs
        # touching them change.
        self._lefts[index : index + 1] = [left_bucket.left, right_bucket.left]
        self._phis[index : index + 1] = [
            self._bucket_phi(left_bucket),
            self._bucket_phi(right_bucket),
        ]
        new_pairs = []
        if index > 0:
            new_pairs.append(self._merged_phi(buckets[index - 1], left_bucket))
        new_pairs.append(self._merged_phi(left_bucket, right_bucket))
        if index + 2 < len(buckets):
            new_pairs.append(self._merged_phi(right_bucket, buckets[index + 2]))
        low = index - 1 if index > 0 else 0
        self._pair_phis[low : index + 1] = new_pairs

    # ------------------------------------------------------------------
    # deletion helper
    # ------------------------------------------------------------------
    def _deletion_candidates(self, value: float) -> List[Tuple[int, int]]:
        """Sub-bucket slots ordered by how close their range lies to ``value``."""
        candidates: List[Tuple[float, int, int]] = []
        for bucket_index, bucket in enumerate(self._buckets):
            for sub_index, (left, right, _count) in enumerate(bucket.segments()):
                if left <= value <= right:
                    distance = 0.0
                else:
                    distance = min(abs(value - left), abs(value - right))
                candidates.append((distance, bucket_index, sub_index))
        candidates.sort()
        return [(bucket_index, sub_index) for _, bucket_index, sub_index in candidates]


class DADOHistogram(DVOHistogram):
    """Dynamic Average-Deviation Optimal histogram (absolute-deviation phi).

    Identical to :class:`DVOHistogram` except that the bucket deviation is the
    sum of absolute deviations (Eq. 5), which is more robust to the random
    frequency oscillations of a data stream -- the reason the paper finds DADO
    consistently more accurate than DVO (Section 4.1).
    """

    metric = DeviationMetric.ABSOLUTE
