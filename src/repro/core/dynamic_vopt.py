"""Dynamic V-Optimal (DVO) and Dynamic Average-Deviation Optimal (DADO) histograms.

Section 4 of the paper.  Each bucket stores its value range and the point
counts of ``sub_buckets`` equal-width sub-ranges (two in the paper); this is
the minimal internal structure that lets the algorithm estimate how much the
frequencies inside a bucket deviate from their average (the bucket's *phi*,
Eq. 3 for DVO and Eq. 5 for DADO) without storing individual frequencies.

Maintenance is a sequence of *split-merge* repartitions: after each insertion
the algorithm finds the bucket with the largest phi (the best one to split --
Theorem 4.1) and the adjacent pair whose hypothetical merge has the smallest
phi; if splitting the former and merging the latter lowers the total phi
(``min delta phi <= 0``), the split and merge are performed.  Because memory is
fixed, the operations always come in pairs and the bucket count never changes.

Points beyond the current range get a fresh single-point bucket ("borrow one
bucket") immediately balanced by merging the most similar adjacent pair.
Deletions decrement the matching sub-bucket counter; when a bucket has run out
of points, the closest non-empty bucket is decremented instead (Section 7.3).

The histogram state is one :class:`~repro.core.bucket_array.BucketArray`
(borders, sub-bucket counts, phi and pair-phi caches as contiguous numpy
arrays).  Maintenance splices that array; ``buckets()`` and the segment view
are derived read-only views of it, and both the insert and the delete batch
paths bin whole in-range chunks with a single ``searchsorted`` + ``bincount``
pass over the live arrays.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

import numpy as np

from .._validation import require_positive_float, require_positive_int
from ..exceptions import ConfigurationError, DeletionError, InsufficientDataError
from .base import DynamicHistogram
from .bucket import Bucket, SubBucketedBucket
from .bucket_array import BucketArray
from .deviation import DeviationMetric
from .segment_view import SegmentView

__all__ = ["DVOHistogram", "DADOHistogram"]

Segment = tuple[float, float, float]

#: Below this batch size the vectorised insert/delete paths cost more than
#: they save.
_VECTOR_MIN_BATCH = 32


def _project_segments(segments: Sequence[Segment], borders: Sequence[float]) -> list[float]:
    """Distribute segment mass onto the sub-ranges delimited by ``borders``.

    Uniform assumption within each source segment; point-mass segments are
    assigned entirely to the sub-range containing their value (ties go left).
    Total mass is preserved exactly.
    """
    n_parts = len(borders) - 1
    counts = [0.0] * n_parts
    total = sum(count for _, _, count in segments)
    assigned = 0.0
    for left, right, count in segments:
        if count <= 0:
            continue
        if right == left:
            index = bisect.bisect_left(borders, left, 1, n_parts)
            counts[index - 1] += count
            assigned += count
            continue
        width = right - left
        for part in range(n_parts):
            overlap = min(right, borders[part + 1]) - max(left, borders[part])
            if overlap > 0:
                share = count * overlap / width
                counts[part] += share
                assigned += share
    # Numerical drift correction: keep the exact total.  Positive drift goes
    # to the last sub-range; a negative drift larger than the last sub-range's
    # count is taken from the preceding positive sub-ranges instead of being
    # clamped away (clamping would silently lose mass).
    drift = total - assigned
    if counts and drift > 0:
        counts[-1] += drift
    elif counts and drift < 0:
        deficit = -drift
        for part in range(n_parts - 1, -1, -1):
            if deficit <= 0:
                break
            taken = min(counts[part], deficit)
            counts[part] -= taken
            deficit -= taken
    return counts


def _k2_value_counts(left: float, right: float, value_unit: float) -> tuple[float, float]:
    """Domain-value counts of a non-point-mass 2-sub-bucket bucket's segments.

    Replicates exactly what :func:`_phi_of_segments` would derive from the
    bucket's segments -- including the floating-point identities of the border
    arithmetic in :meth:`BucketArray.row_borders` -- without building the
    border and segment lists.
    """
    width = right - left
    middle = left + width / 2
    first_width = middle - left
    second_width = right - middle
    if first_width <= 0:
        n0 = 1.0
    else:
        n0 = first_width / value_unit
        if n0 < 1.0:
            n0 = 1.0
    if second_width <= 0:
        n1 = 1.0
    else:
        n1 = second_width / value_unit
        if n1 < 1.0:
            n1 = 1.0
    return n0, n1


def _phi_of_counts(
    value_counts: tuple[float, ...], counts: tuple[float, ...], variance: bool
) -> float:
    """Phi of parallel (value-count, point-count) segment tuples.

    The allocation-free core of :func:`_phi_of_segments`, used by the
    per-insert phi refreshes; the accumulation order matches the generic
    implementation so cached phis stay bit-identical to a full rebuild.
    """
    total_values = 0.0
    total_count = 0.0
    for n_values in value_counts:
        total_values += n_values
    for count in counts:
        total_count += count
    if total_values <= 0 or total_count <= 0:
        return 0.0
    average = total_count / total_values
    phi = 0.0
    if variance:
        for n_values, count in zip(value_counts, counts, strict=True):
            deviation = count / n_values - average
            phi += n_values * (deviation * deviation)
    else:
        for n_values, count in zip(value_counts, counts, strict=True):
            deviation = count / n_values - average
            phi += n_values * abs(deviation)
    return phi


def _phi_of_segments(segments: list[Segment], variance: bool, value_unit: float) -> float:
    """Specialised :func:`~repro.core.deviation.segments_phi` for the hot path.

    Phi refreshes run once per inserted value, so the generic implementation's
    per-call overhead (enum coercion, validation, per-segment method dispatch)
    dominates bucket maintenance.  This inlined version performs the *exact*
    same floating-point operations in the same order -- the cached phis must be
    bit-identical to a from-scratch ``segments_phi`` rebuild.
    """
    if not segments:
        return 0.0
    value_counts: list[float] = []
    total_values = 0.0
    total_count = 0.0
    for left, right, count in segments:
        width = right - left
        if width <= 0:
            n_values = 1.0
        else:
            n_values = width / value_unit
            if n_values < 1.0:
                n_values = 1.0
        value_counts.append(n_values)
        total_values += n_values
        total_count += count
    if total_values <= 0 or total_count <= 0:
        return 0.0
    average = total_count / total_values
    phi = 0.0
    if variance:
        for (_, _, count), n_values in zip(segments, value_counts, strict=True):
            deviation = count / n_values - average
            phi += n_values * (deviation * deviation)
    else:
        for (_, _, count), n_values in zip(segments, value_counts, strict=True):
            deviation = count / n_values - average
            phi += n_values * abs(deviation)
    return phi


def _row_segments(left: float, right: float, counts: Sequence[float]) -> list[Segment]:
    """Piecewise-uniform segments of a ``(left, right, counts)`` bucket row."""
    if right == left:
        total = 0.0
        for count in counts:
            total += count
        return [(left, right, total)]
    k = len(counts)
    if k == 1:
        return [(left, right, counts[0])]
    step = (right - left) / k
    borders = [left + i * step for i in range(k)] + [right]
    return [(borders[i], borders[i + 1], counts[i]) for i in range(k)]


class DVOHistogram(DynamicHistogram):
    """Dynamic V-Optimal histogram (squared-deviation phi).

    Parameters
    ----------
    n_buckets:
        Fixed bucket budget (set from memory via
        :func:`~repro.core.memory.buckets_for_memory`).
    sub_buckets:
        Number of equal-width sub-ranges per bucket.  The paper uses 2 and
        reports that 2-3 perform comparably while finer subdivisions hurt;
        values other than 2 are provided for the ablation benchmarks.
    value_unit:
        Spacing between adjacent domain values (1 for integer domains); used
        when converting sub-range widths into value counts for phi.
    repartition_threshold:
        Upper bound on ``min delta phi`` beyond which repartitioning is not
        triggered; the paper uses the most aggressive choice, 0.
    """

    #: Deviation metric: squared deviations for DVO (overridden by DADO).
    metric = DeviationMetric.VARIANCE

    def __init__(
        self,
        n_buckets: int,
        *,
        sub_buckets: int = 2,
        value_unit: float = 1.0,
        repartition_threshold: float = 0.0,
    ) -> None:
        require_positive_int(n_buckets, "n_buckets")
        require_positive_int(sub_buckets, "sub_buckets")
        require_positive_float(value_unit, "value_unit")
        if repartition_threshold > 0:
            raise ConfigurationError(
                "repartition_threshold must be non-positive "
                f"(a positive bound would accept harmful repartitions), got {repartition_threshold}"
            )
        self._budget = n_buckets
        self._k = sub_buckets
        self._value_unit = value_unit
        self._threshold = repartition_threshold
        #: Resolved once: the per-insert phi refreshes sit on the hot path and
        #: must not re-derive the metric flavour from the enum every call.
        self._variance = self.metric is DeviationMetric.VARIANCE

        self._loading: dict[float, int] | None = {}
        #: Single source of truth once bootstrapped: borders, sub-bucket
        #: counts and the phi / pair-phi maintenance caches, all spliced
        #: together by the maintenance operations below.
        self._array: BucketArray | None = None
        self._repartition_count = 0

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------
    @property
    def bucket_budget(self) -> int:
        """Fixed number of buckets the histogram maintains."""
        return self._budget

    @property
    def sub_bucket_count(self) -> int:
        """Number of sub-buckets (counters) per bucket."""
        return self._k

    @property
    def repartition_count(self) -> int:
        """Number of split-merge repartitions performed so far."""
        return self._repartition_count

    @property
    def is_loading(self) -> bool:
        """True while the initial loading phase is still buffering points."""
        return self._loading is not None

    @property
    def bucket_array(self) -> BucketArray | None:
        """The live structure-of-arrays state (None during the loading phase).

        This is the histogram's single source of truth; treat it as read-only
        unless you are implementing a maintenance operation.
        """
        return self._array

    def sub_bucketed_buckets(self) -> list[SubBucketedBucket]:
        """The internal buckets as :class:`SubBucketedBucket` values.

        Only available for the paper's two-sub-bucket configuration.
        """
        if self._k != 2:
            raise ConfigurationError(
                f"sub_bucketed_buckets() requires sub_buckets=2, this histogram uses {self._k}"
            )
        self._require_bootstrapped()
        array = self._array
        return [
            SubBucketedBucket(
                float(array.lefts[i]),
                float(array.rights[i]),
                float(array.sub_counts[i, 0]),
                float(array.sub_counts[i, 1]),
            )
            for i in range(len(array))
        ]

    # ------------------------------------------------------------------
    # read API (derived views of the array state)
    # ------------------------------------------------------------------
    def buckets(self) -> list[Bucket]:
        if self._loading is not None:
            return [
                Bucket(value, value, float(count))
                for value, count in sorted(self._loading.items())
            ]
        result: list[Bucket] = []
        array = self._array
        unit = self._value_unit
        for index in range(len(array)):
            left = float(array.lefts[index])
            right = float(array.rights[index])
            width = right - left
            if 0 < width <= unit:
                # Under the continuous-value assumption a bucket no wider than
                # one value unit covers exactly one domain value: expose it as
                # a point mass at that value (the paper's single-value bucket).
                snapped = round(left / unit) * unit
                result.append(Bucket(snapped, snapped, array.bucket_count(index)))
                continue
            for seg_left, seg_right, seg_count in array.row_segments(index):
                result.append(Bucket(seg_left, seg_right, seg_count))
        return result

    def _build_view(self) -> SegmentView:
        """Segment view straight from the live arrays (no Bucket objects).

        When no bucket collapses to an exposed point mass the per-sub-range
        count matrix is adopted as a flat zero-copy view; otherwise the
        exposed segments are assembled with a handful of vectorised passes.
        """
        if self._loading is not None:
            items = sorted(self._loading.items())
            values = np.asarray([value for value, _ in items], dtype=float)
            counts = np.asarray([float(count) for _, count in items], dtype=float)
            return SegmentView(values, values, counts)
        array = self._array
        lefts, rights, sub = array.lefts, array.rights, array.sub_counts
        n, k = sub.shape
        widths = rights - lefts
        collapse = widths <= self._value_unit  # point masses and narrow buckets
        if not collapse.any():
            if k == 1:
                return SegmentView(lefts, rights, sub[:, 0])
            seg_lefts, seg_rights = self._slot_borders()
            return SegmentView(seg_lefts.ravel(), seg_rights.ravel(), sub.ravel())

        # Mixed exposure: collapsed buckets contribute one point mass each (at
        # the snapped domain value, or their own value when already width 0),
        # the rest expand to their k sub-range segments, in bucket order.
        sizes = np.where(collapse, 1, k)
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        total_segments = int(offsets[-1])
        out_lefts = np.empty(total_segments, dtype=float)
        out_rights = np.empty(total_segments, dtype=float)
        out_counts = np.empty(total_segments, dtype=float)

        collapsed = np.nonzero(collapse)[0]
        if collapsed.size:
            snapped = np.round(lefts[collapsed] / self._value_unit) * self._value_unit
            values = np.where(widths[collapsed] == 0.0, lefts[collapsed], snapped)
            positions = offsets[collapsed]
            out_lefts[positions] = values
            out_rights[positions] = values
            out_counts[positions] = sub[collapsed].sum(axis=1)

        regular = np.nonzero(~collapse)[0]
        if regular.size:
            slot_lefts, slot_rights = self._slot_borders()
            base = offsets[regular]
            for j in range(k):
                out_lefts[base + j] = slot_lefts[regular, j]
                out_rights[base + j] = slot_rights[regular, j]
                out_counts[base + j] = sub[regular, j]
        return SegmentView(out_lefts, out_rights, out_counts)

    def _slot_borders(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-sub-range border matrices ``(n, k)`` of every bucket.

        Replicates ``left + j * (width / k)`` (with the last border pinned to
        the exact right edge) so the expansion is bit-identical to
        :meth:`BucketArray.row_borders`.  Point-mass rows degenerate to their
        single value in every slot.
        """
        array = self._array
        lefts, rights = array.lefts, array.rights
        k = self._k
        if k == 1:
            return lefts.reshape(-1, 1), rights.reshape(-1, 1)
        steps = (rights - lefts) / k
        j = np.arange(k, dtype=float)
        slot_lefts = lefts[:, None] + j * steps[:, None]
        slot_rights = np.empty_like(slot_lefts)
        slot_rights[:, : k - 1] = lefts[:, None] + j[1:] * steps[:, None]
        slot_rights[:, k - 1] = rights
        return slot_lefts, slot_rights

    # ------------------------------------------------------------------
    # update API
    # ------------------------------------------------------------------
    def _insert(self, value: float) -> None:
        if self._insert_value(float(value)):
            self._maybe_repartition()

    def _insert_value(self, value: float) -> bool:
        """Insert one value; True when an in-range insertion happened.

        In-range insertions are the ones whose repartition check may be
        batched (:meth:`insert_many`); loading-phase and out-of-range
        insertions rebalance on their own.
        """
        if self._loading is not None:
            self._loading[value] = self._loading.get(value, 0) + 1
            if len(self._loading) > self._budget:
                self._bootstrap()
            return False

        array = self._array
        if value < array.lefts[0] or value > array.rights[-1]:
            self._insert_out_of_range(value)
            return False

        index = self._locate_bucket(value)
        array.sub_counts[index, array.sub_index(index, value)] += 1.0
        self._refresh_bucket(index)
        return True

    def insert_many(self, values, *, repartition_interval: int = 1) -> None:
        """Insert a batch of values, optionally batching repartition checks.

        With the default ``repartition_interval = 1`` the result is identical
        to inserting the values one by one; it just avoids per-value template
        overhead.  A larger interval runs the O(B) split/merge scan only every
        ``repartition_interval`` in-range insertions (and once at the end of
        the batch), trading slightly delayed repartitions for substantially
        higher sustained insert throughput on bulk loads.  Out-of-range
        insertions still rebalance immediately, and the total count is always
        exact.

        Between two maintenance points nothing reads the phi caches, so the
        batch is processed one *interval chunk* at a time: a chunk whose
        values all land inside existing buckets is binned into the live
        ``sub_counts`` matrix with one ``searchsorted`` + ``bincount`` pass
        (sub-bucket counter increments commute, so the end-of-chunk state
        matches per-value insertion up to floating-point associativity of the
        counter sums), and only then are the phi/pair-phi caches refreshed for
        the distinct touched buckets and the split/merge scan run.  Chunks
        containing out-of-range or border-gap values fall back to strict
        per-value handling, since those mutate bucket ranges mid-chunk.
        """
        require_positive_int(repartition_interval, "repartition_interval")
        if isinstance(values, np.ndarray):
            arr = values.astype(float, copy=False).ravel()
            n_values = arr.shape[0]
        else:
            arr = list(values)
            n_values = len(arr)
        if repartition_interval == 1 or n_values < _VECTOR_MIN_BATCH:
            # Small batches (and strict per-value maintenance) are faster
            # without the numpy round-trip; this also keeps single-value
            # insert_many calls as cheap as plain insert.
            self._insert_many_scalar(arr, repartition_interval)
            return
        arr = np.asarray(arr, dtype=float)
        dirty: set = set()
        try:
            pending = 0
            position = 0
            while position < n_values:
                if self._loading is not None:
                    self._insert_value(float(arr[position]))
                    position += 1
                    continue
                chunk = arr[position : position + repartition_interval]
                position += chunk.shape[0]
                if self._apply_chunk_vectorised(chunk, dirty):
                    pending += chunk.shape[0]
                else:
                    for value in chunk:
                        value = float(value)
                        if self._loading is not None:  # pragma: no cover - defensive
                            self._insert_value(value)
                            continue
                        array = self._array
                        if value < array.lefts[0] or value > array.rights[-1]:
                            self._refresh_dirty(dirty)
                            self._insert_out_of_range(value)
                            continue
                        index = self._locate_bucket(value)
                        array.sub_counts[index, array.sub_index(index, value)] += 1.0
                        dirty.add(index)
                        pending += 1
                        if pending >= repartition_interval:
                            self._refresh_dirty(dirty)
                            self._maybe_repartition()
                            pending = 0
                if pending >= repartition_interval:
                    self._refresh_dirty(dirty)
                    self._maybe_repartition()
                    pending = 0
            if pending:
                self._refresh_dirty(dirty)
                self._maybe_repartition()
        finally:
            # On an exception mid-batch the dirty buckets must still be
            # refreshed, or later maintenance would read stale phis.
            self._refresh_dirty(dirty)
            self._invalidate_view()

    def _insert_many_scalar(self, values, repartition_interval: int) -> None:
        """Per-value batch insertion (strict maintenance, immediate refresh)."""
        try:
            pending = 0
            for value in values:
                if self._insert_value(float(value)):
                    pending += 1
                    if pending >= repartition_interval:
                        self._maybe_repartition()
                        pending = 0
            if pending:
                self._maybe_repartition()
        finally:
            self._invalidate_view()

    def _apply_chunk_vectorised(self, chunk: np.ndarray, dirty: set) -> bool:
        """Bin a chunk of values into the live count matrix in one numpy pass.

        Only applies when every value lands strictly inside an existing
        bucket's range (no out-of-range extension, no border-gap stretch);
        returns False otherwise so the caller can fall back to per-value
        handling.  Touched bucket indices are added to ``dirty`` -- the caller
        must refresh the phi caches before they are next consumed.
        """
        array = self._array
        lefts, rights = array.lefts, array.rights
        n_buckets = lefts.shape[0]
        if chunk.min() < lefts[0] or chunk.max() > rights[-1]:
            return False
        # The range check above guarantees every value is >= lefts[0] and
        # <= rights[-1], so the located indices are already in [0, n) without
        # clamping.
        indices = lefts.searchsorted(chunk, side="right")
        indices -= 1
        bucket_rights = rights[indices]
        if np.any(chunk > bucket_rights):
            # Values inside a border gap: _locate_bucket would stretch a
            # bucket, which must happen in submission order.
            return False
        k = self._k
        if k == 1:
            flat_indices = indices
        else:
            bucket_lefts = lefts[indices]
            widths = bucket_rights - bucket_lefts
            if widths.all():
                subs = ((chunk - bucket_lefts) / widths * k).astype(np.int64)
            else:
                # Rare: some values land in point-mass buckets (sub-range 0).
                with np.errstate(divide="ignore", invalid="ignore"):
                    subs = ((chunk - bucket_lefts) / widths * k).astype(np.int64)
                subs[widths <= 0] = 0
                subs = np.maximum(subs, 0)
            np.minimum(subs, k - 1, out=subs)
            flat_indices = indices * k + subs
        increments = np.bincount(flat_indices, minlength=n_buckets * k)
        array.sub_counts += increments.reshape(n_buckets, k)
        dirty.update(np.unique(indices).tolist())
        return True

    def _refresh_dirty(self, dirty: set) -> None:
        """Recompute cached phis for the distinct dirty buckets, then clear.

        The borders and counts are pulled out of the arrays in three bulk
        ``tolist`` passes: phi arithmetic runs on plain Python floats, which
        is several times cheaper than per-element numpy scalar extraction.
        """
        if not dirty:
            return
        array = self._array
        lefts = array.lefts.tolist()
        rights = array.rights.tolist()
        subs = array.sub_counts.tolist()
        n = len(lefts)
        phis = array.phis
        pair_indices = set()
        for index in dirty:
            phis[index] = self._row_phi(lefts[index], rights[index], subs[index])
            if index > 0:
                pair_indices.add(index - 1)
            if index + 1 < n:
                pair_indices.add(index)
        pair_phis = array.pair_phis
        for pair_index in pair_indices:
            pair_phis[pair_index] = self._pair_phi_rows(
                lefts[pair_index],
                rights[pair_index],
                subs[pair_index],
                lefts[pair_index + 1],
                rights[pair_index + 1],
                subs[pair_index + 1],
            )
        dirty.clear()

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def _delete(self, value: float) -> None:
        value = float(value)
        if self._loading is not None:
            count = self._loading.get(value, 0)
            if count > 1:
                self._loading[value] = count - 1
            elif count == 1:
                del self._loading[value]
            else:
                raise DeletionError(f"value {value!r} is not present in the loading buffer")
            return

        # Sum the raw counters directly: going through total_count would
        # build a segment view that the surrounding delete() template is
        # about to invalidate anyway.
        array = self._array
        if array.total() < 1.0 - 1e-9:
            raise DeletionError("cannot delete from an empty histogram")

        # Remove one unit of mass, starting at the sub-bucket containing the
        # value and spilling outwards to the closest buckets when the local
        # counters (which may be fractional after repartitioning) run dry.
        remaining = 1.0
        touched = set()
        for bucket_index, sub_index in self._deletion_candidates(value):
            if remaining <= 1e-12:
                break
            available = array.sub_counts[bucket_index, sub_index]
            if available <= 0:
                continue
            taken = min(float(available), remaining)
            array.sub_counts[bucket_index, sub_index] -= taken
            remaining -= taken
            touched.add(bucket_index)
        if remaining > 1e-9:
            raise DeletionError("all buckets are empty; nothing to delete")
        for bucket_index in touched:
            self._refresh_bucket(bucket_index)

    def _delete_many(self, values: Sequence[float]) -> None:
        """Vectorised batch deletion: binning passes over the live arrays.

        Mirrors ``insert_many``: values are routed to the sub-range slot the
        per-value path would pick (its closest slot, ties to the lower index)
        with one ``searchsorted`` pass, and every maximal run whose slots can
        absorb their share of the batch is applied with a single ``bincount``
        decrement -- within such a run every delete takes exactly one unit
        from its own slot, so the decrements commute and the end state
        matches per-value deletion bit-for-bit.  A value that would drain its
        slot (the Section 7.3 spill regime) is handed to the exact per-value
        policy on precisely the state per-value processing would have
        produced, then the vectorised scan resumes.
        """
        if self._loading is not None or len(values) < _VECTOR_MIN_BATCH:
            return super()._delete_many(values)
        array = self._array
        n = len(array)
        k = self._k
        slot_lefts, slot_rights = self._slot_borders()
        flat_lefts = slot_lefts.ravel()
        flat_rights = slot_rights.ravel()
        n_slots = flat_rights.size
        if n == 0 or (
            n_slots > 1
            and (np.any(np.diff(flat_rights) < 0) or np.any(np.diff(flat_lefts) < 0))
        ):
            # Empty state or pathological border rounding: the scalar path copes.
            return super()._delete_many(values)
        arr = np.asarray(values, dtype=float)

        # Ties-to-lower binning, matching _deletion_candidates: the first slot
        # whose right border reaches the value and whose left border covers it.
        indices = np.searchsorted(flat_rights, arr, side="left")
        above = indices >= n_slots
        np.minimum(indices, n_slots - 1, out=indices)
        outside = above | (flat_lefts[indices] > arr)
        if outside.any():
            # Values beyond the range or inside a border gap: route each to
            # its closest slot, exactly as the first entry of the per-value
            # candidate list would (ties resolve to the lower slot index --
            # hence the snap-left over slots sharing the same border, which
            # covers the degenerate sub-slots of point-mass buckets).
            out_values = arr[outside]
            out_above = above[outside]
            hi = indices[outside]
            lo = np.where(out_above, n_slots - 1, np.maximum(hi - 1, 0))
            lo_valid = out_above | (hi > 0)
            dist_lo = np.where(lo_valid, out_values - flat_rights[lo], np.inf)
            dist_hi = np.where(out_above, np.inf, flat_lefts[hi] - out_values)
            use_lo = dist_lo <= dist_hi
            chosen = np.where(use_lo, lo, hi)
            snapped = np.where(
                use_lo,
                np.searchsorted(flat_rights, flat_rights[chosen], side="left"),
                np.searchsorted(flat_lefts, flat_lefts[chosen], side="left"),
            )
            indices[outside] = snapped

        applied = 0
        dirty: set = set()
        n_values = arr.shape[0]
        try:
            position = 0
            while position < n_values:
                segment = indices[position:]
                # Occurrence rank of each delete within its slot, in batch
                # order (stable sort keeps equal slots in submission order).
                order = np.argsort(segment, kind="stable")
                sorted_slots = segment[order]
                group_starts = np.searchsorted(sorted_slots, sorted_slots, side="left")
                occurrence = np.empty(segment.shape[0], dtype=float)
                occurrence[order] = (
                    np.arange(segment.shape[0], dtype=float) - group_starts
                ) + 1.0
                available = array.sub_counts.ravel()
                overdraws = occurrence > available[segment]
                if not overdraws.any():
                    decrements = np.bincount(segment, minlength=n_slots)
                    array.sub_counts -= decrements.reshape(n, k)
                    dirty.update(np.unique(segment // k).tolist())
                    applied = n_values
                    break
                first_overdraw = int(np.argmax(overdraws))
                if first_overdraw:
                    prefix = segment[:first_overdraw]
                    decrements = np.bincount(prefix, minlength=n_slots)
                    array.sub_counts -= decrements.reshape(n, k)
                    dirty.update(np.unique(prefix // k).tolist())
                    applied += first_overdraw
                # This delete drains its slot: run the per-value spill policy
                # (closest non-empty slots) on the exact intermediate state.
                self._delete(float(arr[position + first_overdraw]))
                applied += 1
                position += first_overdraw + 1
        except Exception as error:
            error.applied_count = applied
            raise
        finally:
            self._refresh_dirty(dirty)

    # ------------------------------------------------------------------
    # loading / bootstrap
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """Build the initial bucket array from the loading buffer."""
        assert self._loading is not None
        items = sorted(self._loading.items())
        self._loading = None
        if not items:
            raise InsufficientDataError("loading phase ended with no data")

        k = self._k
        values = [value for value, _ in items]
        if len(values) == 1:
            only_value, only_count = items[0]
            lefts = np.asarray([only_value], dtype=float)
            rights = np.asarray([only_value], dtype=float)
            sub = np.zeros((1, k), dtype=float)
            sub[0, 0] = float(only_count)
            self._array = BucketArray(lefts, rights, sub)
        else:
            # One bucket between each pair of consecutive points.
            borders = values
            n = len(borders) - 1
            lefts = np.asarray(borders[:-1], dtype=float)
            rights = np.asarray(borders[1:], dtype=float)
            sub = np.zeros((n, k), dtype=float)
            array = BucketArray(lefts, rights, sub)
            for value, count in items:
                index = min(bisect.bisect_right(borders, value) - 1, n - 1)
                index = max(index, 0)
                sub[index, array.sub_index(index, value)] += float(count)
            self._array = array
        self._rebuild_phis()
        # The exposed buckets changed shape (loading point masses -> real
        # buckets); a bootstrap triggered from a read path must not leave a
        # stale segment view behind.
        self._invalidate_view()

    def _require_bootstrapped(self) -> None:
        if self._loading is not None:
            self._bootstrap_from_buffer_if_possible()
        if self._loading is not None:
            raise InsufficientDataError(
                "the histogram is still in its loading phase; insert more data first"
            )

    def _bootstrap_from_buffer_if_possible(self) -> None:
        if self._loading and len(self._loading) > 1:
            self._bootstrap()

    # ------------------------------------------------------------------
    # insertion helpers
    # ------------------------------------------------------------------
    def _locate_bucket(self, value: float) -> int:
        """Index of the bucket whose range contains (or is closest to) ``value``."""
        array = self._array
        n = len(array)
        index = int(np.searchsorted(array.lefts, value, side="right")) - 1
        index = max(0, min(index, n - 1))
        right = array.rights[index]
        if value > right and index + 1 < n:
            # ``value`` falls in a gap between bucket ``index`` and the next
            # one; stretch whichever border is closer.
            next_left = array.lefts[index + 1]
            if abs(value - right) <= abs(next_left - value):
                self._resize_bucket(index, float(array.lefts[index]), value)
            else:
                self._resize_bucket(index + 1, value, float(array.rights[index + 1]))
                return index + 1
        return index

    def _resize_bucket(self, index: int, new_left: float, new_right: float) -> None:
        """Change a bucket's range, re-projecting its mass onto the new sub-ranges."""
        if new_right < new_left:
            raise ConfigurationError("new bucket range is inverted")
        array = self._array
        segments = array.row_segments(index)
        array.lefts[index] = new_left
        array.rights[index] = new_right
        projected = _project_segments(segments, array.row_borders(index))
        row = array.sub_counts[index]
        row[:] = 0.0
        row[: len(projected)] = projected
        self._refresh_bucket(index)

    def _insert_out_of_range(self, value: float) -> None:
        """Handle a point beyond the end buckets: borrow a bucket, then merge.

        Borrowing a bucket only counts as a repartition when the budget was
        exhausted and a compensating merge was actually performed; while the
        bucket count is still under budget the stretch is free and must not
        inflate the repartition statistics.
        """
        array = self._array
        new_counts = [1.0] + [0.0] * (self._k - 1)
        index = 0 if value < array.lefts[0] else len(array)
        array.splice(index, index, [value], [value], [new_counts], phis=[0.0])
        n = len(array)
        if n >= 2:
            if index == 0:
                array.splice_pair_phis(0, 0, [self._merged_phi(0, 1)])
            else:
                array.splice_pair_phis(
                    n - 1, n - 1, [self._merged_phi(n - 2, n - 1)]
                )
        if n > self._budget:
            merge_index = self._find_best_merge()
            if merge_index is not None:
                self._merge_pair(merge_index)
                self._repartition_count += 1

    # ------------------------------------------------------------------
    # phi caches
    # ------------------------------------------------------------------
    def _row_phi(self, left: float, right: float, counts: Sequence[float]) -> float:
        """Phi of one bucket row (point masses are single segments: phi 0)."""
        if right == left:
            return 0.0
        if self._k == 2:
            n0, n1 = _k2_value_counts(left, right, self._value_unit)
            return _phi_of_counts((n0, n1), (counts[0], counts[1]), self._variance)
        return _phi_of_segments(
            _row_segments(left, right, counts), self._variance, self._value_unit
        )

    def _pair_phi_rows(
        self,
        first_left: float,
        first_right: float,
        first_counts: Sequence[float],
        second_left: float,
        second_right: float,
        second_counts: Sequence[float],
    ) -> float:
        """Phi of the hypothetical merge of two adjacent bucket rows."""
        if self._k == 2 and first_right != first_left and second_right != second_left:
            n00, n01 = _k2_value_counts(first_left, first_right, self._value_unit)
            n10, n11 = _k2_value_counts(second_left, second_right, self._value_unit)
            return _phi_of_counts(
                (n00, n01, n10, n11),
                (first_counts[0], first_counts[1], second_counts[0], second_counts[1]),
                self._variance,
            )
        return _phi_of_segments(
            _row_segments(first_left, first_right, first_counts)
            + _row_segments(second_left, second_right, second_counts),
            self._variance,
            self._value_unit,
        )

    def _bucket_phi(self, index: int) -> float:
        array = self._array
        left = float(array.lefts[index])
        right = float(array.rights[index])
        if right == left:
            return 0.0
        return self._row_phi(left, right, array.sub_counts[index].tolist())

    def _merged_phi(self, first: int, second: int) -> float:
        array = self._array
        return self._pair_phi_rows(
            float(array.lefts[first]),
            float(array.rights[first]),
            array.sub_counts[first].tolist(),
            float(array.lefts[second]),
            float(array.rights[second]),
            array.sub_counts[second].tolist(),
        )

    def _rebuild_phis(self) -> None:
        """Recompute the phi caches from scratch (bootstrap / deserialisation).

        Steady-state maintenance never calls this: split, merge and
        out-of-range insertion splice the caches locally (only the touched
        bucket and its two adjacent pairs change).
        """
        array = self._array
        n = len(array)
        array.phis = np.asarray(
            [self._bucket_phi(index) for index in range(n)], dtype=float
        )
        array.pair_phis = np.asarray(
            [self._merged_phi(index, index + 1) for index in range(n - 1)], dtype=float
        )

    def _refresh_bucket(self, index: int) -> None:
        """Recompute cached phi values affected by a change to bucket ``index``.

        One bulk ``tolist`` per array pulls the three-bucket neighbourhood out
        as Python floats; the phi arithmetic then runs allocation-free.
        """
        array = self._array
        n = array.lefts.shape[0]
        low = index - 1 if index > 0 else 0
        high = index + 2 if index + 2 <= n else n
        lefts = array.lefts[low:high].tolist()
        rights = array.rights[low:high].tolist()
        subs = array.sub_counts[low:high].tolist()
        at = index - low
        array.phis[index] = self._row_phi(lefts[at], rights[at], subs[at])
        if index > 0:
            array.pair_phis[index - 1] = self._pair_phi_rows(
                lefts[at - 1], rights[at - 1], subs[at - 1],
                lefts[at], rights[at], subs[at],
            )
        if index < n - 1:
            array.pair_phis[index] = self._pair_phi_rows(
                lefts[at], rights[at], subs[at],
                lefts[at + 1], rights[at + 1], subs[at + 1],
            )

    # ------------------------------------------------------------------
    # repartitioning (split-merge)
    # ------------------------------------------------------------------
    def _find_best_split(self) -> int | None:
        """Bucket with the largest phi that can actually be split.

        Buckets no wider than one domain value cannot be split meaningfully
        (they correspond to the paper's width-one singular buckets), so they
        are skipped.  First occurrence wins on ties, matching the historical
        scan order.
        """
        array = self._array
        masked = np.where(
            (array.rights - array.lefts) > self._value_unit, array.phis, -np.inf
        )
        best = int(np.argmax(masked))
        # Covers both "largest phi is zero" and "no bucket is splittable"
        # (argmax over all -inf) in one comparison.
        if masked[best] <= 0.0:
            return None
        return best

    def _find_best_merge(self, *, exclude: int | None = None) -> int | None:
        """Left index of the adjacent pair whose merge has the smallest phi."""
        pair_phis = self._array.pair_phis
        if pair_phis.size == 0:
            return None
        if exclude is None:
            return int(np.argmin(pair_phis))
        masked = pair_phis.copy()
        if exclude - 1 >= 0:
            masked[exclude - 1] = np.inf
        if exclude < masked.size:
            masked[exclude] = np.inf
        best = int(np.argmin(masked))
        if masked[best] == np.inf:
            return None
        return best

    def _maybe_repartition(self) -> None:
        if len(self._array) < 3:
            return
        split_index = self._find_best_split()
        if split_index is None:
            return
        merge_index = self._find_best_merge(exclude=split_index)
        if merge_index is None:
            return
        array = self._array
        delta_phi = array.pair_phis[merge_index] - array.phis[split_index]
        if delta_phi > self._threshold:
            return
        self._split_and_merge(split_index, merge_index)
        self._repartition_count += 1

    def _split_and_merge(self, split_index: int, merge_index: int) -> None:
        """Split the bucket at ``split_index`` and merge the pair at ``merge_index``."""
        # Perform the merge first or second depending on positions so indices
        # stay valid; easiest is to operate on the higher index first.
        if merge_index > split_index:
            self._merge_pair(merge_index)
            self._split_bucket(split_index)
        else:
            self._split_bucket(split_index)
            self._merge_pair(merge_index)

    def _merge_pair(self, index: int) -> None:
        """Merge buckets ``index`` and ``index + 1`` into one array row.

        Only the merged bucket's phi and the (at most two) pairs adjacent to
        it change; every array is spliced in an O(1)-sized neighbourhood
        instead of rebuilt.
        """
        array = self._array
        merged_left = float(array.lefts[index])
        merged_right = float(array.rights[index + 1])
        segments = array.row_segments(index) + array.row_segments(index + 1)
        k = self._k
        if merged_right == merged_left:
            total = sum(count for _, _, count in segments)
            merged_counts = [total] + [0.0] * (k - 1)
        else:
            step = (merged_right - merged_left) / k
            borders = [merged_left + i * step for i in range(k)] + [merged_right]
            merged_counts = _project_segments(segments, borders)
        merged_phi = self._row_phi(merged_left, merged_right, merged_counts)
        array.splice(
            index,
            index + 2,
            [merged_left],
            [merged_right],
            [merged_counts],
            phis=[merged_phi],
        )
        new_pairs = []
        if index > 0:
            new_pairs.append(self._merged_phi(index - 1, index))
        if index + 1 < len(array):
            new_pairs.append(self._merged_phi(index, index + 1))
        low = index - 1 if index > 0 else 0
        array.splice_pair_phis(low, index + 2, new_pairs)

    def _split_bucket(self, index: int) -> None:
        """Split bucket ``index`` at its most balanced internal border."""
        array = self._array
        left = float(array.lefts[index])
        right = float(array.rights[index])
        if right == left:
            return
        counts = [float(c) for c in array.sub_counts[index]]
        k = self._k
        borders = array.row_borders(index)
        total = 0.0
        for count in counts:
            total += count
        # Pick the interior border that divides the count most evenly (for the
        # paper's k = 2 this is simply the midpoint).
        best_border_index = 1
        best_imbalance = float("inf")
        cumulative = 0.0
        for border_index in range(1, k):
            cumulative += counts[border_index - 1]
            imbalance = abs(cumulative - (total - cumulative))
            if imbalance < best_imbalance:
                best_imbalance = imbalance
                best_border_index = border_index
        split_value = borders[best_border_index]
        left_count = sum(counts[:best_border_index])
        right_count = total - left_count

        left_row = [left_count / k] * k
        right_row = [right_count / k] * k
        array.splice(
            index,
            index + 1,
            [left, split_value],
            [split_value, right],
            [left_row, right_row],
            phis=[
                self._row_phi(left, split_value, left_row),
                self._row_phi(split_value, right, right_row),
            ],
        )
        new_pairs = []
        if index > 0:
            new_pairs.append(self._merged_phi(index - 1, index))
        new_pairs.append(self._merged_phi(index, index + 1))
        if index + 2 < len(array):
            new_pairs.append(self._merged_phi(index + 1, index + 2))
        low = index - 1 if index > 0 else 0
        array.splice_pair_phis(low, index + 1, new_pairs)

    # ------------------------------------------------------------------
    # deletion helper
    # ------------------------------------------------------------------
    def _deletion_candidates(self, value: float) -> list[tuple[int, int]]:
        """Sub-bucket slots ordered by how close their range lies to ``value``."""
        array = self._array
        lefts = array.lefts.tolist()
        rights = array.rights.tolist()
        subs = array.sub_counts.tolist()
        candidates: list[tuple[float, int, int]] = []
        for bucket_index, (bucket_left, bucket_right) in enumerate(zip(lefts, rights, strict=True)):
            segments = _row_segments(bucket_left, bucket_right, subs[bucket_index])
            for sub_index in range(len(segments)):
                left, right, _count = segments[sub_index]
                distance = (
                    0.0
                    if left <= value <= right
                    else min(abs(value - left), abs(value - right))
                )
                candidates.append((distance, bucket_index, sub_index))
        candidates.sort()
        return [(bucket_index, sub_index) for _, bucket_index, sub_index in candidates]


class DADOHistogram(DVOHistogram):
    """Dynamic Average-Deviation Optimal histogram (absolute-deviation phi).

    Identical to :class:`DVOHistogram` except that the bucket deviation is the
    sum of absolute deviations (Eq. 5), which is more robust to the random
    frequency oscillations of a data stream -- the reason the paper finds DADO
    consistently more accurate than DVO (Section 4.1).
    """

    metric = DeviationMetric.ABSOLUTE
