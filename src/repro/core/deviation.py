"""The deviation (phi) algebra of Eqs. (3)-(5) and the split/merge operations.

V-Optimal-style histograms characterise a bucket by how much the frequencies of
the values inside it deviate from the bucket's average frequency: the *variance*
of frequencies (Eq. 3, V-Optimal) or the sum of *absolute deviations* (Eq. 5,
Average-Deviation Optimal).  The paper's dynamic histograms approximate those
per-value frequencies with the bucket's two sub-bucket counters; under the
uniform and continuous-value assumptions the frequency of every value inside a
sub-bucket equals the sub-bucket count divided by the number of values the
sub-bucket spans.

This module implements that algebra once, so DVO, DADO, SSBM, SADO and the
distributed reduction all share it:

* :func:`segments_phi` -- phi of an arbitrary set of piecewise-uniform segments
  relative to their common average frequency;
* :func:`bucket_phi` -- phi of a single sub-bucketed bucket;
* :func:`merged_phi` -- phi of the *hypothetical* bucket obtained by merging
  two neighbouring buckets (the phi_M of Eq. 4);
* :func:`merge_sub_buckets` -- the actual merge: derive the merged bucket's two
  sub-bucket counters from the four original segments;
* :func:`split_bucket` -- the split: divide a bucket at its sub-bucket border
  into two buckets whose sub-buckets have equal counts.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from ..exceptions import ConfigurationError
from .bucket import SubBucketedBucket

__all__ = [
    "DeviationMetric",
    "segments_phi",
    "bucket_phi",
    "merged_phi",
    "merge_sub_buckets",
    "split_bucket",
]

Segment = tuple[float, float, float]


class DeviationMetric(enum.Enum):
    """How per-value deviations from the bucket average are aggregated."""

    #: Sum of squared deviations (Eq. 3) -- the V-Optimal constraint.
    VARIANCE = "variance"
    #: Sum of absolute deviations (Eq. 5) -- the Average-Deviation constraint.
    ABSOLUTE = "absolute"

    @classmethod
    def coerce(cls, value: DeviationMetric | str) -> DeviationMetric:
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            valid = ", ".join(member.value for member in cls)
            raise ConfigurationError(
                f"unknown deviation metric {value!r}; expected one of: {valid}"
            ) from exc

    def aggregate(self, deviation: float) -> float:
        """Contribution of a single per-value deviation."""
        if self is DeviationMetric.VARIANCE:
            return deviation * deviation
        return abs(deviation)


def _segment_value_count(left: float, right: float, value_unit: float) -> float:
    """Number of domain values a segment spans (never less than one).

    A segment narrower than one value unit still covers at least one domain
    value; flooring at one keeps the per-value frequencies (and therefore phi)
    of very narrow buckets from exploding, which matters for the stability of
    the dynamic split/merge decisions.
    """
    width = right - left
    if width <= 0:
        return 1.0
    return max(width / value_unit, 1.0)


def segments_phi(
    segments: Iterable[Segment],
    metric: DeviationMetric | str = DeviationMetric.VARIANCE,
    *,
    value_unit: float = 1.0,
) -> float:
    """Phi of a set of piecewise-uniform segments around their common average.

    Each segment is ``(left, right, count)``: ``count`` points spread uniformly
    over the values in ``[left, right]``.  The phi is the sum, over all values
    covered by the segments, of the squared (or absolute) deviation of that
    value's frequency from the average frequency of the whole segment set.

    Parameters
    ----------
    segments:
        The piecewise-uniform segments.
    metric:
        ``VARIANCE`` for Eq. (3) or ``ABSOLUTE`` for Eq. (5).
    value_unit:
        Spacing between adjacent domain values (1 for the paper's integer
        domains); a segment of width ``w`` spans ``w / value_unit`` values.
    """
    metric = DeviationMetric.coerce(metric)
    if value_unit <= 0:
        raise ConfigurationError(f"value_unit must be positive, got {value_unit}")

    segment_list = list(segments)
    if not segment_list:
        return 0.0

    value_counts = [
        _segment_value_count(left, right, value_unit) for left, right, _ in segment_list
    ]
    total_values = sum(value_counts)
    total_count = sum(count for _, _, count in segment_list)
    if total_values <= 0 or total_count <= 0:
        return 0.0
    average_frequency = total_count / total_values

    phi = 0.0
    for (_left, _right, count), n_values in zip(segment_list, value_counts, strict=True):
        frequency = count / n_values
        phi += n_values * metric.aggregate(frequency - average_frequency)
    return phi


def bucket_phi(
    bucket: SubBucketedBucket,
    metric: DeviationMetric | str = DeviationMetric.VARIANCE,
    *,
    value_unit: float = 1.0,
) -> float:
    """Phi of a single sub-bucketed bucket (its internal non-uniformity)."""
    return segments_phi(bucket.as_segments(), metric, value_unit=value_unit)


def merged_phi(
    first: SubBucketedBucket,
    second: SubBucketedBucket,
    metric: DeviationMetric | str = DeviationMetric.VARIANCE,
    *,
    value_unit: float = 1.0,
) -> float:
    """Phi of the hypothetical bucket obtained by merging two neighbours.

    This is the phi_M of Eq. (4): the frequencies of all values covered by the
    two buckets (as currently approximated by their four sub-bucket segments)
    measured against the average frequency of the *combined* range.  Merging
    never decreases phi, so ``merged_phi(a, b) >= bucket_phi(a) +
    bucket_phi(b)`` up to floating-point error.
    """
    return segments_phi(
        list(first.as_segments()) + list(second.as_segments()),
        metric,
        value_unit=value_unit,
    )


def _overlap_count(segment: Segment, low: float, high: float) -> float:
    """Points of a piecewise-uniform segment that fall inside [low, high]."""
    left, right, count = segment
    if count <= 0:
        return 0.0
    if right == left:
        return count if low <= left <= high else 0.0
    overlap = min(high, right) - max(low, left)
    if overlap <= 0:
        return 0.0
    return count * overlap / (right - left)


def merge_sub_buckets(first: SubBucketedBucket, second: SubBucketedBucket) -> SubBucketedBucket:
    """Merge two neighbouring buckets into one sub-bucketed bucket.

    The merged bucket spans both ranges; its two sub-bucket counts are deduced
    from the four original segments under the uniform assumption (this is the
    "counters in the merged bucket are deduced from the old configuration"
    step of Section 4.2).  Total count is preserved exactly.
    """
    if second.left < first.left:
        first, second = second, first
    if second.left < first.right:
        raise ConfigurationError(
            "merge_sub_buckets requires non-overlapping neighbouring buckets, got "
            f"[{first.left}, {first.right}] and [{second.left}, {second.right}]"
        )

    left, right = first.left, second.right
    segments = list(first.as_segments()) + list(second.as_segments())
    total = sum(count for _, _, count in segments)
    if right == left:
        return SubBucketedBucket(left, right, total, 0.0)

    midpoint = (left + right) / 2.0
    left_count = sum(_overlap_count(segment, left, midpoint) for segment in segments)
    # Point masses sitting exactly on the midpoint must not be double counted:
    # assign them to the left half (matching _overlap_count's closed-interval
    # treatment) and give the right half the remainder.
    left_count = min(left_count, total)
    right_count = total - left_count
    return SubBucketedBucket(left, right, left_count, right_count)


def split_bucket(bucket: SubBucketedBucket) -> tuple[SubBucketedBucket, SubBucketedBucket]:
    """Split a bucket at its sub-bucket border into two new buckets.

    Each new bucket covers one of the old sub-bucket ranges and its own
    sub-buckets receive equal halves of the old sub-bucket count, so each new
    bucket has phi zero (splitting never increases phi -- Section 4).
    """
    if bucket.is_point_mass:
        raise ConfigurationError("cannot split a point-mass bucket")
    midpoint = bucket.midpoint
    # Halve as (half, count - half): identical to (half, half) for every
    # normal float (halving is exact), but still conserves the count when
    # halving a subnormal underflows to zero.
    left_half_count = bucket.left_count / 2.0
    right_half_count = bucket.right_count / 2.0
    left_half = SubBucketedBucket(
        bucket.left, midpoint, left_half_count, bucket.left_count - left_half_count
    )
    right_half = SubBucketedBucket(
        midpoint, bucket.right, right_half_count, bucket.right_count - right_half_count
    )
    return left_half, right_half
