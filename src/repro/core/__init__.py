"""Core histogram machinery and the paper's dynamic histograms.

This package contains the primary contribution of the paper:

* :class:`~repro.core.dynamic_compressed.DCHistogram` -- the Dynamic
  Compressed histogram of Section 3, with its Chi-square repartitioning
  trigger;
* :class:`~repro.core.dynamic_vopt.DVOHistogram` and
  :class:`~repro.core.dynamic_vopt.DADOHistogram` -- the Dynamic V-Optimal and
  Dynamic Average-Deviation Optimal histograms of Section 4, built on
  sub-bucketed buckets and split/merge repartitioning;

together with the shared machinery they are built on: bucket value types, the
histogram read API, the deviation (phi) algebra of Eq. (3)-(5), and the memory
model that converts a byte budget into bucket counts.
"""

from .bucket import Bucket, SubBucketedBucket
from .bucket_array import BucketArray
from .base import Histogram, DynamicHistogram, SnapshotHistogram
from .segment_view import SegmentView
from .memory import MemoryModel, buckets_for_memory
from .deviation import (
    DeviationMetric,
    segments_phi,
    bucket_phi,
    merged_phi,
    merge_sub_buckets,
)
from .dynamic_compressed import DCHistogram
from .dynamic_vopt import DVOHistogram, DADOHistogram
from .factory import build_dynamic_histogram, build_static_histogram

__all__ = [
    "Bucket",
    "SubBucketedBucket",
    "BucketArray",
    "SegmentView",
    "Histogram",
    "DynamicHistogram",
    "SnapshotHistogram",
    "MemoryModel",
    "buckets_for_memory",
    "DeviationMetric",
    "segments_phi",
    "bucket_phi",
    "merged_phi",
    "merge_sub_buckets",
    "DCHistogram",
    "DVOHistogram",
    "DADOHistogram",
    "build_dynamic_histogram",
    "build_static_histogram",
]
