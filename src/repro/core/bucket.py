"""Bucket value types shared by every histogram in the library.

A histogram approximates a data distribution by a sequence of contiguous,
non-overlapping buckets.  Two flavours are used:

* :class:`Bucket` -- the classic bucket that stores its value range and a point
  count.  Under the uniform-distribution and continuous-value assumptions of
  Section 2.1, points are spread uniformly over the value range.  A bucket
  whose range has zero width is a *point mass* (the paper's singular buckets of
  width one collapse to this in the continuous view).
* :class:`SubBucketedBucket` -- the bucket used by the DVO / DADO histograms of
  Section 4: the value range is divided at its midpoint into two sub-buckets of
  equal width, and the counts of both halves are stored.  This is the minimal
  internal structure that makes the V-Optimal / Average-Deviation partition
  constraints checkable without storing individual frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ConfigurationError

__all__ = ["Bucket", "SubBucketedBucket"]


@dataclass(frozen=True)
class Bucket:
    """A histogram bucket: the closed value range ``[left, right]`` and a count.

    ``left == right`` denotes a point mass (all ``count`` points share the
    single value ``left``).
    """

    left: float
    right: float
    count: float

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise ConfigurationError(
                f"bucket range is inverted: left={self.left}, right={self.right}"
            )
        if self.count < 0:
            raise ConfigurationError(f"bucket count must be non-negative, got {self.count}")

    @property
    def width(self) -> float:
        """Width of the value range (zero for a point mass)."""
        return self.right - self.left

    @property
    def is_point_mass(self) -> bool:
        """True when the bucket covers a single value."""
        return self.right == self.left

    @property
    def density(self) -> float:
        """Points per unit of value range (infinite ranges never occur)."""
        if self.is_point_mass:
            raise ConfigurationError("a point-mass bucket has no finite density")
        return self.count / self.width

    def count_at_most(self, x: float) -> float:
        """Number of the bucket's points with value <= x (uniform assumption)."""
        if x < self.left:
            return 0.0
        if x >= self.right:
            return self.count
        if self.is_point_mass:
            return self.count if x >= self.left else 0.0
        # Clamp: for subnormal widths the interpolation can round above the
        # bucket's own count ((count * overlap) / width need not stay below
        # count once the product is denormalised); the clamp is a no-op
        # whenever the arithmetic already respected the bound.
        return min(self.count * (x - self.left) / self.width, self.count)

    def count_in_range(self, low: float, high: float) -> float:
        """Number of the bucket's points inside the closed range [low, high]."""
        if high < low:
            return 0.0
        if self.is_point_mass:
            return self.count if low <= self.left <= high else 0.0
        overlap_low = max(low, self.left)
        overlap_high = min(high, self.right)
        if overlap_high <= overlap_low:
            return 0.0
        # Clamped for subnormal widths; see count_at_most.
        return min(
            self.count * (overlap_high - overlap_low) / self.width, self.count
        )

    def with_count(self, count: float) -> Bucket:
        """Return a copy of this bucket with a different count."""
        return replace(self, count=count)


@dataclass(frozen=True)
class SubBucketedBucket:
    """A DVO/DADO bucket: a value range split at its midpoint into two counters.

    Attributes
    ----------
    left, right:
        The closed value range of the whole bucket.
    left_count, right_count:
        Number of points in the left and right halves of the range.
    """

    left: float
    right: float
    left_count: float
    right_count: float

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise ConfigurationError(
                f"bucket range is inverted: left={self.left}, right={self.right}"
            )
        if self.left_count < 0 or self.right_count < 0:
            raise ConfigurationError(
                "sub-bucket counts must be non-negative, got "
                f"({self.left_count}, {self.right_count})"
            )

    @property
    def midpoint(self) -> float:
        """The sub-bucket border (midpoint of the value range)."""
        return (self.left + self.right) / 2.0

    @property
    def count(self) -> float:
        """Total number of points in the bucket."""
        return self.left_count + self.right_count

    @property
    def width(self) -> float:
        return self.right - self.left

    @property
    def is_point_mass(self) -> bool:
        return self.right == self.left

    def as_segments(self) -> list[tuple[float, float, float]]:
        """The bucket's piecewise-uniform segments as ``(left, right, count)``.

        A point-mass bucket yields a single zero-width segment.
        """
        if self.is_point_mass:
            return [(self.left, self.right, self.count)]
        mid = self.midpoint
        return [
            (self.left, mid, self.left_count),
            (mid, self.right, self.right_count),
        ]

    def as_buckets(self) -> list[Bucket]:
        """The two sub-buckets as plain :class:`Bucket` objects."""
        return [Bucket(left, right, count) for left, right, count in self.as_segments()]

    def with_counts(self, left_count: float, right_count: float) -> SubBucketedBucket:
        """Return a copy with different sub-bucket counts."""
        return replace(self, left_count=left_count, right_count=right_count)
