"""Process self-telemetry: RSS, GC, threads, uptime and build info.

Both server kinds refresh these gauges immediately before rendering
``GET /metrics``, so every scrape carries the serving process's own vitals
alongside the store/cluster metrics:

* ``repro_process_resident_memory_bytes`` -- current RSS, read from
  ``/proc/self/status`` (``VmRSS``) with a ``resource.getrusage`` peak-RSS
  fallback on hosts without procfs; fallback-safe: when neither source is
  available the gauge is simply left unset rather than failing the scrape;
* ``repro_process_gc_collections`` -- CPython garbage-collector collection
  counts per generation (labelled ``generation="0|1|2"``);
* ``repro_process_threads`` -- live ``threading`` thread count;
* ``repro_process_uptime_seconds`` -- seconds since the telemetry was
  attached (server construction time);
* ``repro_build_info`` -- the classic info-gauge pattern: constant value 1
  with the python and numpy versions as labels, so dashboards can join any
  metric against the runtime that produced it.

The refresh reads procfs *before* touching any gauge, so no I/O ever happens
under an obs lock (REP009: gauge locks are leaves).
"""

from __future__ import annotations

import gc
import platform
import sys
import threading
import time

from .registry import MetricsRegistry

__all__ = ["ProcessTelemetry", "read_rss_bytes"]


def read_rss_bytes() -> int | None:
    """Current resident set size in bytes, or ``None`` when unavailable.

    Primary source is ``/proc/self/status`` (``VmRSS`` line, kB); hosts
    without procfs fall back to ``resource.getrusage`` peak RSS (close
    enough for a vitals gauge).  Every failure path returns ``None`` --
    telemetry must never break a scrape.
    """
    try:
        with open("/proc/self/status", encoding="ascii", errors="replace") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    kilobytes = float(line.split()[1])
                    return int(kilobytes * 1024)
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        return int(peak if sys.platform == "darwin" else peak * 1024)
    except Exception:
        return None


def _numpy_version() -> str:
    try:
        import numpy

        return str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dependency
        return "unavailable"


class ProcessTelemetry:
    """Registers the process vitals gauges and refreshes them on demand.

    One instance per server; construct it with the server's registry and
    call :meth:`update` right before rendering ``/metrics``.  The build-info
    gauge is set once at construction (its labels never change); the moving
    gauges are refreshed per update.  Safe to construct several times over
    one registry (metrics are get-or-create).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._started = time.monotonic()
        self._g_rss = registry.gauge(
            "repro_process_resident_memory_bytes",
            "Resident set size of the serving process",
        )
        self._g_gc = registry.gauge(
            "repro_process_gc_collections",
            "CPython GC collections completed, per generation",
            labelnames=("generation",),
        )
        self._g_threads = registry.gauge(
            "repro_process_threads",
            "Live threads in the serving process",
        )
        self._g_uptime = registry.gauge(
            "repro_process_uptime_seconds",
            "Seconds since this server attached its telemetry",
        )
        build_info = registry.gauge(
            "repro_build_info",
            "Constant 1; the python/numpy runtime as labels",
            labelnames=("python", "numpy"),
        )
        build_info.set(1, python=platform.python_version(), numpy=_numpy_version())

    def update(self) -> None:
        """Refresh the moving gauges (called per ``/metrics`` scrape)."""
        rss = read_rss_bytes()
        if rss is not None:
            self._g_rss.set(rss)
        for generation, stats in enumerate(gc.get_stats()):
            self._g_gc.set(
                float(stats.get("collections", 0)), generation=str(generation)
            )
        self._g_threads.set(float(threading.active_count()))
        self._g_uptime.set(time.monotonic() - self._started)
