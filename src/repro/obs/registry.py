"""Dependency-free, thread-safe metrics registry (Prometheus text exposition).

The serving stack (store, WAL, ingest pipeline, HTTP servers, cluster
coordinator) records its runtime behaviour through three metric types:

* :class:`Counter` -- monotonically increasing totals (ops applied, bytes
  appended, replicas marked stale);
* :class:`Gauge` -- point-in-time values that move both ways (pending
  buffered operations);
* :class:`Distribution` -- fixed-bucket histograms for latencies and sizes,
  using the same array-native shape as the repo's histogram core: one
  immutable ``numpy`` array of upper bounds plus one counts array indexed by
  ``searchsorted``.

Concurrency contract
--------------------

Every metric owns one small ``threading.Lock`` guarding its values.  These
locks are **leaves**: no metric-update or scrape path acquires any other
lock, performs blocking I/O, or calls back into instrumented code while
holding one -- so instrumenting code that runs under store/WAL/buffer locks
can never create a lock-order cycle (the dynamic monitor in
``tests/lockcheck.py`` verifies this, and repro-verify rule REP009 enforces
it statically).  Scrapes (:meth:`MetricsRegistry.render`) copy each metric's
state under its lock, so one rendered metric is always internally consistent
-- a histogram's ``+Inf`` bucket equals its ``_count`` in every scrape.

Metrics are get-or-create by name: requesting an existing name returns the
existing instance (type and label names must match), so independently
constructed components can share one registry without coordination.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Iterable, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Distribution",
    "Gauge",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
    "ERROR_BUCKETS",
]

#: Default latency buckets (seconds): 50us .. 2.5s, roughly log-spaced.
LATENCY_BUCKETS_S = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Default size buckets (values per batch / bytes per record).
SIZE_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)

#: Default selectivity-error buckets (absolute estimated-vs-exact fraction).
ERROR_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.02, 0.05, 0.1, 0.25, 0.5,
)

_VALID_KINDS = ("counter", "gauge", "histogram")


def _label_key(
    metric_name: str, labelnames: tuple[str, ...], labels: dict[str, str]
) -> tuple[str, ...]:
    """Validate and order one update's label values against the declaration."""
    if len(labels) != len(labelnames) or any(name not in labels for name in labelnames):
        raise ConfigurationError(
            f"metric {metric_name!r} takes labels {labelnames}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labelnames: tuple[str, ...], key: tuple[str, ...], extra: str = "") -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, key, strict=True)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    # Prometheus text values are floats; render integral values without the
    # trailing ".0" noise so counters read naturally.
    return str(int(value)) if float(value).is_integer() else repr(float(value))


class _Metric:
    """Shared shell: name, help text, declared labels, the leaf lock."""

    kind: str = ""

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def render(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def _header(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """A monotonically increasing total, optionally partitioned by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self._header()
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            labels = _format_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Gauge(_Metric):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self._header()
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            labels = _format_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class _Series:
    """One labelled series of a distribution: bucket counts + sum + extrema."""

    __slots__ = ("counts", "total", "count", "max")

    def __init__(self, n_buckets: int) -> None:
        # Array-native, like the histogram core: counts[i] pairs with the
        # i-th upper bound; the final slot is the +Inf overflow bucket.
        self.counts = np.zeros(n_buckets + 1, dtype=np.int64)
        self.total = 0.0
        self.count = 0
        self.max = float("-inf")


class Distribution(_Metric):
    """A fixed-bucket histogram (Prometheus ``histogram`` exposition type).

    Bucket upper bounds are fixed at construction; ``observe`` bins a value
    with one :func:`bisect.bisect_left` over the bounds (cheap enough for
    per-operation instrumentation), and :meth:`observe_many` bins a whole
    batch with one vectorised ``searchsorted`` + ``bincount`` pass -- the
    same binning idiom the histogram core uses for bulk ingest.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float],
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"distribution {name!r} buckets must be strictly increasing, got {buckets}"
            )
        self._bounds = bounds
        self._bounds_array = np.asarray(bounds, dtype=float)
        self._series: dict[tuple[str, ...], _Series] = {}

    @property
    def buckets(self) -> tuple[float, ...]:
        return self._bounds

    def observe(self, value: float, **labels: str) -> None:
        """Record one sample into the labelled series."""
        value = float(value)
        index = bisect.bisect_left(self._bounds, value)
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(len(self._bounds))
            series.counts[index] += 1
            series.total += value
            series.count += 1
            if value > series.max:
                series.max = value

    def observe_many(self, values: Iterable[float], **labels: str) -> None:
        """Record a batch of samples with one vectorised binning pass."""
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            return
        indices = np.searchsorted(self._bounds_array, array, side="left")
        binned = np.bincount(indices, minlength=len(self._bounds) + 1)
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(len(self._bounds))
            series.counts += binned
            series.total += float(array.sum())
            series.count += int(array.size)
            series.max = max(series.max, float(array.max()))

    def summary(self, **labels: str) -> dict[str, float]:
        """Count / sum / mean / max of one series (zeros when unobserved)."""
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"count": 0, "sum": 0.0, "mean": 0.0, "max": 0.0}
            return {
                "count": series.count,
                "sum": series.total,
                "mean": series.total / series.count if series.count else 0.0,
                "max": series.max if series.count else 0.0,
            }

    def quantiles(self, qs: Sequence[float], **labels: str) -> list[float]:
        """Upper-bound quantile estimates from the fixed buckets.

        For each ``q`` in ``qs`` (fractions in [0, 1]) returns the smallest
        bucket upper bound whose cumulative count reaches ``q * count`` --
        i.e. a conservative (never under-reporting) quantile, which is what
        a latency gate wants.  Samples past the last bound resolve to the
        observed maximum.  An unobserved series returns all zeros.
        """
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ConfigurationError(f"quantile {q} outside [0, 1]")
        key = _label_key(self.name, self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return [0.0 for _ in qs]
            counts = series.counts.copy()
            count = series.count
            observed_max = series.max
        if count == 0:
            return [0.0 for _ in qs]
        cumulative = np.cumsum(counts)
        results = []
        for q in qs:
            target = q * count
            index = int(np.searchsorted(cumulative, target, side="left"))
            if index >= len(self._bounds):
                results.append(float(observed_max))
            else:
                results.append(self._bounds[index])
        return results

    def render(self) -> list[str]:
        with self._lock:
            snapshot = [
                (key, series.counts.copy(), series.total, series.count)
                for key, series in sorted(self._series.items())
            ]
        lines = self._header()
        if not snapshot and not self.labelnames:
            snapshot = [((), np.zeros(len(self._bounds) + 1, dtype=np.int64), 0.0, 0)]
        for key, counts, total, count in snapshot:
            cumulative = 0
            for bound, bucket_count in zip(self._bounds, counts[:-1], strict=True):
                cumulative += int(bucket_count)
                labels = _format_labels(self.labelnames, key, f'le="{repr(bound)}"')
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _format_labels(self.labelnames, key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {count}")
            plain = _format_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines


class MetricsRegistry:
    """A named collection of metrics with get-or-create registration.

    One registry per serving process: the store, WAL, pipeline, HTTP server
    and cluster coordinator all register into the same instance, and
    ``GET /metrics`` renders it in the Prometheus text exposition format.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(
        self, cls: type, name: str, help_text: str, labelnames: Sequence[str], **kwargs
    ):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help_text, labelnames=labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def distribution(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        labelnames: Sequence[str] = (),
    ) -> Distribution:
        return self._get_or_create(
            Distribution, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format.

        Each metric is snapshotted under its own lock, so every rendered
        family is internally consistent (no torn histograms); families are
        rendered in name order for stable diffs.
        """
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""
