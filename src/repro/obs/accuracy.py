"""Estimation-accuracy telemetry: sampled exact-vs-estimate comparison.

The paper's claim is *cheap, accurate selectivity estimates under continuous
updates* -- so accuracy is the one signal worth measuring that no generic
metrics layer provides.  :class:`AccuracySampler` keeps an exact shadow
multiset per attribute (a value -> count map, fed by the same insert/delete
stream the histogram sees), replays a configurable fraction of ``/estimate``
queries against it, and exports the observed selectivity error as the
``repro_estimate_selectivity_error`` distribution.

Caveats, by design:

* The shadow is exact only while it stays small: past ``max_values`` distinct
  values the sampler disables itself for that attribute (and says so in
  ``repro_estimate_accuracy_disabled_total``) rather than degrade the hot
  path.  Use it on sampled traffic or bounded-domain attributes.
* Hooks are invoked by the store *outside* its attribute locks, so under
  concurrent mutation a checked estimate can race a shadow update; observed
  error then includes a transient in-flight component.  This is telemetry,
  not a correctness oracle.
* The store's read path serves from published snapshots without locks
  (repro-verify REP010), and the sampler must not undo that: unsampled
  query batches are rejected by a lock-free coin flip, so only the sampled
  ``fraction`` ever touches the sampler lock.
* ``restore`` and partially-applied mutations desynchronise the shadow from
  the histogram irrecoverably, so both disable the attribute's sampling.

Lock discipline matches the rest of :mod:`repro.obs`: the sampler lock is a
leaf -- nothing else is acquired and no I/O happens while it is held
(repro-verify REP009).
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from .registry import ERROR_BUCKETS, MetricsRegistry

__all__ = ["AccuracySampler"]

#: Ops the shadow can answer exactly; ``cdf`` and ``equal`` (granularity
#: semantics live in the histogram) are left to the histogram alone.
_CHECKED_OPS = frozenset({"range", "total", "selectivity"})


class _Shadow:
    """Exact per-attribute ground truth: a value multiset plus its total."""

    __slots__ = ("values", "total", "enabled")

    def __init__(self) -> None:
        self.values: Counter[float] = Counter()
        self.total = 0
        self.enabled = True

    def range_count(self, low: float, high: float) -> int:
        return sum(
            count for value, count in self.values.items() if low <= value <= high
        )


class AccuracySampler:
    """Replay a fraction of estimate queries against exact shadow counts.

    ``fraction`` is the probability that one ``query()`` batch is checked;
    sampled batches have every supported op in them compared.  All errors are
    reported on the selectivity scale -- count ops are normalised by the exact
    total -- so one distribution answers "how far off, as a fraction of the
    relation" regardless of op mix.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        *,
        fraction: float = 0.01,
        max_values: int = 100_000,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= float(fraction) <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction!r}")
        self.fraction = float(fraction)
        self.max_values = int(max_values)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._shadows: dict[str, _Shadow] = {}
        self._m_error = metrics.distribution(
            "repro_estimate_selectivity_error",
            "Observed |estimate - exact| selectivity error on sampled queries",
            ERROR_BUCKETS,
            labelnames=("attribute",),
        )
        self._m_checks = metrics.counter(
            "repro_estimate_accuracy_checks_total",
            "Estimate queries replayed against exact shadow counts",
            labelnames=("attribute",),
        )
        self._m_disabled = metrics.counter(
            "repro_estimate_accuracy_disabled_total",
            "Attributes whose accuracy shadow was disabled (overflow/desync)",
        )

    # -- lifecycle hooks (store calls these outside its locks) ---------
    def reset(self, name: str) -> None:
        """A fresh attribute: start shadowing it from empty."""
        with self._lock:
            self._shadows[name] = _Shadow()

    def forget(self, name: str) -> None:
        """The attribute was dropped."""
        with self._lock:
            self._shadows.pop(name, None)

    def disable(self, name: str) -> None:
        """Shadow can no longer mirror the histogram (restore, partial apply)."""
        disabled = False
        with self._lock:
            shadow = self._shadows.get(name)
            if shadow is not None and shadow.enabled:
                shadow.enabled = False
                shadow.values.clear()
                disabled = True
        if disabled:
            self._m_disabled.inc()

    # -- mutation mirror ----------------------------------------------
    @staticmethod
    def _batch_counts(values: Iterable[float]) -> tuple[list[float], list[int], int]:
        """Collapse a batch to (unique values, counts, size) via numpy.

        Mutation batches arrive thousands of values at a time; folding the
        per-value work into one C-level ``np.unique`` keeps the shadow cheap
        enough to ride along on the ingest hot path.
        """
        array = np.asarray(values, dtype=float)
        if array.size == 0:
            return [], [], 0
        uniques, counts = np.unique(array, return_counts=True)
        return uniques.tolist(), counts.tolist(), int(array.size)

    def record_insert(self, name: str, values: Iterable[float]) -> None:
        uniques, counts, size = self._batch_counts(values)
        if not size:
            return
        overflow = False
        with self._lock:
            shadow = self._shadows.get(name)
            if shadow is None or not shadow.enabled:
                return
            multiset = shadow.values
            for value, count in zip(uniques, counts, strict=True):
                multiset[value] += count
            shadow.total += size
            if len(multiset) > self.max_values:
                shadow.enabled = False
                multiset.clear()
                overflow = True
        if overflow:
            self._m_disabled.inc()

    def record_delete(self, name: str, values: Iterable[float]) -> None:
        uniques, counts, size = self._batch_counts(values)
        if not size:
            return
        with self._lock:
            shadow = self._shadows.get(name)
            if shadow is None or not shadow.enabled:
                return
            multiset = shadow.values
            for value, count in zip(uniques, counts, strict=True):
                held = multiset.get(value, 0)
                removed = min(held, count)
                if not removed:
                    continue
                if held > removed:
                    multiset[value] = held - removed
                else:
                    del multiset[value]
                shadow.total -= removed

    # -- the check itself ---------------------------------------------
    def maybe_check(
        self,
        name: str,
        queries: Sequence[Mapping[str, Any]],
        results: Sequence[Any],
    ) -> None:
        """Possibly compare one answered query batch against exact counts."""
        # The sampling decision is made BEFORE the sampler lock: the store's
        # read path is lock-free (published snapshots, REP010), and taking a
        # shared lock here for every answered batch would re-introduce
        # cross-reader serialisation for the (1 - fraction) majority of
        # batches that are never checked.  ``Random.random`` is one C call,
        # atomic under the GIL.
        if self._rng.random() >= self.fraction:
            return
        errors: list[float] = []
        with self._lock:
            shadow = self._shadows.get(name)
            if shadow is None or not shadow.enabled:
                return
            denominator = float(max(shadow.total, 1))
            for query, estimate in zip(queries, results, strict=True):
                op = query.get("op")
                if op not in _CHECKED_OPS:
                    continue
                if op == "total":
                    exact = float(shadow.total)
                elif op == "range":
                    exact = float(
                        shadow.range_count(float(query["low"]), float(query["high"]))
                    )
                else:  # selectivity: already a fraction
                    exact_count = shadow.range_count(
                        float(query["low"]), float(query["high"])
                    )
                    errors.append(abs(float(estimate) - exact_count / denominator))
                    continue
                errors.append(abs(float(estimate) - exact) / denominator)
        # Metric observes happen after the sampler lock is released.
        if errors:
            self._m_checks.inc(1, attribute=name)
            for error in errors:
                self._m_error.observe(error, attribute=name)

    # -- introspection -------------------------------------------------
    def enabled_for(self, name: str) -> bool:
        with self._lock:
            shadow = self._shadows.get(name)
            return shadow is not None and shadow.enabled

    def exact_total(self, name: str) -> int | None:
        with self._lock:
            shadow = self._shadows.get(name)
            if shadow is None or not shadow.enabled:
                return None
            return shadow.total
