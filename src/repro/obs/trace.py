"""Lightweight request tracing: trace ids, spans, and the slow-request log.

A trace follows one request through the stack: the ``X-Repro-Trace-Id``
header is generated at the edge (the first server that sees the request
without one, or a client that opened a trace explicitly), propagated
client -> ``StatisticsServer`` -> ``ClusterCoordinator`` -> every shard
fan-out leg, and echoed back on the response.  Along the way each layer
records named spans (per-shard fan-out legs, failover attempts) onto the
active :class:`Trace`; when a request finishes above the configured
slow-request threshold, the trace is emitted as one structured JSON line.

The active trace rides a ``threading.local``: :func:`use_trace` activates a
trace for the current thread (the HTTP client attaches the active trace's id
to outgoing requests automatically), and fan-out code captures
:func:`current_trace` *before* submitting work to a thread pool, then
re-activates it inside the worker -- that is how one trace spans the
coordinator's concurrent shard legs.

Span recording appends to a list under the trace's own lock -- a leaf lock,
like the metric locks (see :mod:`repro.obs.registry`): no span or metric
update path acquires store locks or blocks on I/O (repro-verify REP009).
"""

from __future__ import annotations

import json
import logging
import threading
import time
import uuid
from collections.abc import Callable
from contextlib import contextmanager
from typing import Any

from .registry import LATENCY_BUCKETS_S, MetricsRegistry

__all__ = [
    "TRACE_HEADER",
    "Trace",
    "RequestObserver",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "use_trace",
]

#: The propagation header, generated at the edge when absent.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Structured slow-request log lines go here unless a sink is supplied.
_SLOW_LOGGER = logging.getLogger("repro.obs.slowlog")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


class Trace:
    """One request's identity plus its recorded spans.

    Spans are ``(name, offset_s, duration_s)`` triples relative to the
    trace's start; :meth:`span` may be entered concurrently from many
    fan-out threads (appends serialise on the trace's leaf lock).
    """

    __slots__ = ("trace_id", "started", "_lock", "_spans")

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.started = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[tuple[str, float, float]] = []

    @contextmanager
    def span(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            end = time.perf_counter()
            with self._lock:
                self._spans.append((name, start - self.started, end - start))

    def add_span(self, name: str, offset_s: float, duration_s: float) -> None:
        with self._lock:
            self._spans.append((name, float(offset_s), float(duration_s)))

    def spans(self) -> list[tuple[str, float, float]]:
        with self._lock:
            return list(self._spans)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "spans": [
                {
                    "name": name,
                    "offset_ms": round(offset * 1000.0, 3),
                    "duration_ms": round(duration * 1000.0, 3),
                }
                for name, offset, duration in self.spans()
            ],
        }


_active = threading.local()


def current_trace() -> Trace | None:
    """The trace active on this thread, if any."""
    return getattr(_active, "trace", None)


def current_trace_id() -> str | None:
    trace = current_trace()
    return trace.trace_id if trace is not None else None


@contextmanager
def use_trace(trace: Trace | None):
    """Activate ``trace`` for the current thread (restores the previous one).

    Passing ``None`` is a no-op context, so call sites need no branching:
    ``with use_trace(current_trace_captured_earlier): ...``.
    """
    previous = getattr(_active, "trace", None)
    _active.trace = trace
    try:
        yield trace
    finally:
        _active.trace = previous


@contextmanager
def maybe_span(name: str):
    """A span on the current trace, or a no-op when tracing is off."""
    trace = current_trace()
    if trace is None:
        yield None
        return
    with trace.span(name):
        yield trace


def _default_sink(entry: dict[str, Any]) -> None:
    _SLOW_LOGGER.warning(json.dumps(entry, sort_keys=True))


class RequestObserver:
    """Per-server HTTP observability: route metrics, tracing, slow-request log.

    One instance per server process, shared by every handler thread.  The
    handler calls :meth:`begin` with the incoming trace header (a trace is
    opened when tracing is enabled or the caller already carries an id --
    propagation is never refused), dispatches inside ``use_trace``, then
    calls :meth:`finish`, which records the per-route latency metrics and
    emits the structured slow-request line when the request ran longer than
    ``slow_request_ms``.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        *,
        server_label: str = "service",
        slow_request_ms: float | None = None,
        trace: bool = False,
        sink: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        self.metrics = metrics
        self.server_label = server_label
        self.slow_request_ms = slow_request_ms
        self.trace_enabled = bool(trace) or slow_request_ms is not None
        self.sink = sink if sink is not None else _default_sink
        self._m_seconds = metrics.distribution(
            "repro_http_request_seconds",
            "HTTP request latency per route template",
            LATENCY_BUCKETS_S,
            labelnames=("route",),
        )
        self._m_requests = metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, per route template and status code",
            labelnames=("route", "status"),
        )
        self._m_slow = metrics.counter(
            "repro_http_slow_requests_total",
            "Requests that exceeded the slow-request threshold",
            labelnames=("route",),
        )

    def begin(self, header_id: str | None) -> Trace | None:
        """Open a trace for one request (or pass when tracing is off).

        An incoming ``X-Repro-Trace-Id`` always opens a trace -- the caller
        opted in upstream; without one, the edge generates an id only when
        tracing is enabled here.
        """
        if header_id:
            return Trace(str(header_id))
        if self.trace_enabled:
            return Trace()
        return None

    def finish(
        self,
        trace: Trace | None,
        *,
        method: str,
        route: str,
        status: int,
        elapsed_s: float,
    ) -> None:
        """Record one finished request: metrics, then the slow log."""
        self._m_seconds.observe(elapsed_s, route=route)
        self._m_requests.inc(1, route=route, status=str(status))
        elapsed_ms = elapsed_s * 1000.0
        if self.slow_request_ms is None or elapsed_ms < self.slow_request_ms:
            return
        self._m_slow.inc(1, route=route)
        entry = {
            "event": "slow_request",
            "server": self.server_label,
            "method": method,
            "route": route,
            "status": status,
            "duration_ms": round(elapsed_ms, 3),
            "threshold_ms": self.slow_request_ms,
        }
        if trace is not None:
            entry.update(trace.to_dict())
        self.sink(entry)


#: The only attribute sub-actions that may appear in a route template.
#: Everything else -- typos, scans, overlong paths -- collapses to /other,
#: so no request shape can mint new label values.
_ATTRIBUTE_ACTIONS = frozenset(
    {"ingest", "estimate", "snapshot", "restore", "rebalance"}
)
_SHARD_ACTIONS = frozenset({"drain", "resync"})


def route_label(route: tuple[str, ...]) -> str:
    """Collapse a request path to a low-cardinality route template.

    Attribute and shard names are replaced with placeholders, and the final
    action segment is admitted only from the fixed route tables above;
    unknown heads, unknown actions and overlong garbage paths all collapse
    to ``/other`` so a scan of random URLs cannot inflate the metric label
    space.
    """
    if not route:
        return "/"
    head = route[0]
    if head == "attributes":
        if len(route) == 1:
            return "/attributes"
        if len(route) == 2:
            return "/attributes/{name}"
        if len(route) == 3 and route[2] in _ATTRIBUTE_ACTIONS:
            return f"/attributes/{{name}}/{route[2]}"
        return "/other"
    if head == "shards" and len(route) == 3 and route[2] in _SHARD_ACTIONS:
        return f"/shards/{{id}}/{route[2]}"
    if head in ("health", "stats", "metrics", "profile") and len(route) == 1:
        return "/" + head
    if head == "cluster" and len(route) == 2 and route[1] in ("stats", "ingest"):
        return "/cluster/" + route[1]
    return "/other"
