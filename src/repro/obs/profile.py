"""Phase timers and an opt-in stdlib sampling profiler.

Two complementary "where did the time go" tools, both dependency-free:

* :class:`PhaseTimer` -- coarse wall-clock attribution over *named phases*
  (the benchmark matrix wraps every cell's setup / timed-run / verify stages
  in one, so a slow matrix run reports which stage ate the time);
* :class:`SamplingProfiler` -- fine-grained attribution over *code paths*:
  a background thread wakes on a fixed interval, walks every live thread's
  stack via ``sys._current_frames()``, and counts collapsed stacks
  (``root;caller;...;leaf``, flamegraph-style).  :meth:`attribution` folds
  the counts into the hottest stacks and leaf functions, so a regressed
  benchmark cell carries its own profile instead of requiring a re-run under
  cProfile.

Sampling beats tracing here because it is *safe to leave on*: the sampler
never patches the interpreter, costs one stack walk per interval regardless
of request rate (overhead target: instrumented throughput >= 0.95x
uninstrumented, recorded by ``benchmarks/matrix.py``), and reads frames that
the sampled threads keep mutating -- a racy read can at worst misattribute
one sample.

Locking contract (repro-verify REP009 applies to this module): the sampler's
lock is a **leaf**.  The sampling thread builds each collapsed stack *before*
taking the lock, holds it only to bump plain dict counters, and does all of
its waiting (``Event.wait``) and thread joining outside any lock.  Snapshots
(:meth:`attribution`) copy the counts under the lock and format afterwards.
"""

from __future__ import annotations

import sys
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from types import FrameType
from typing import Any

__all__ = ["PhaseTimer", "SamplingProfiler", "DEFAULT_SAMPLE_INTERVAL_S"]

#: Default sampling interval: 5 ms = 200 stacks/second, cheap enough to ride
#: along on every profiled benchmark cell or server.
DEFAULT_SAMPLE_INTERVAL_S = 0.005

#: Stack frames deeper than this are truncated at the root end; hot leaves
#: are what attribution cares about.
_MAX_STACK_DEPTH = 48


class PhaseTimer:
    """Named wall-clock phases with total / count / last-duration accounting.

    Thread-safe; the lock is a leaf (held only to update two floats and an
    int).  Phases may repeat -- durations accumulate::

        timer = PhaseTimer()
        with timer.phase("setup"):
            ...
        with timer.phase("run"):
            ...
        timer.report()  # {"setup": {"seconds": ..., "count": 1, ...}, ...}
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> [total_seconds, count, last_seconds]
        self._phases: dict[str, list[float]] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                entry = self._phases.get(name)
                if entry is None:
                    self._phases[name] = [elapsed, 1, elapsed]
                else:
                    entry[0] += elapsed
                    entry[1] += 1
                    entry[2] = elapsed

    def report(self) -> dict[str, dict[str, float]]:
        """Per-phase totals, in first-seen order."""
        with self._lock:
            snapshot = {name: list(entry) for name, entry in self._phases.items()}
        return {
            name: {
                "seconds": round(total, 6),
                "count": int(count),
                "last_seconds": round(last, 6),
            }
            for name, (total, count, last) in snapshot.items()
        }


def _collapse(frame: FrameType | None) -> str:
    """One thread's stack as a ``root;...;leaf`` collapsed string.

    Each element is ``filename:function`` with the path shortened to its
    final component -- enough to identify the code without host-specific
    absolute paths in the output.
    """
    parts: list[str] = []
    while frame is not None and len(parts) < _MAX_STACK_DEPTH:
        code = frame.f_code
        filename = code.co_filename.rsplit("/", 1)[-1]
        parts.append(f"{filename}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """A background ``sys._current_frames()`` sampler with collapsed output.

    Start/stop (or use as a context manager) around the region to profile;
    :meth:`attribution` returns the hottest collapsed stacks and leaf
    functions with sample counts and percentages.  The profiler's own
    sampling thread is excluded from its samples, and threads may optionally
    be restricted to an explicit id set (``thread_ids``).
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        *,
        thread_ids: frozenset[int] | None = None,
    ) -> None:
        if not interval_s > 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self._thread_ids = thread_ids
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> SamplingProfiler:
        """Start the sampling thread (idempotent while running)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling and join the thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> SamplingProfiler:
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # sampling loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        # Event.wait doubles as the interval sleep and the stop signal, and
        # runs outside every lock.
        while not self._stop.wait(self.interval_s):
            # A private-but-stable CPython API: a dict of thread id -> frame
            # for every live thread, snapshotted without stopping them.
            frames = sys._current_frames()
            collapsed: list[str] = []
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                if self._thread_ids is not None and thread_id not in self._thread_ids:
                    continue
                collapsed.append(_collapse(frame))
            # Counter updates only under the leaf lock; stack formatting is
            # already done.
            with self._lock:
                self._samples += len(collapsed)
                for stack in collapsed:
                    self._counts[stack] = self._counts.get(stack, 0) + 1

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def sample_count(self) -> int:
        with self._lock:
            return self._samples

    def attribution(self, top: int = 12) -> dict[str, Any]:
        """Fold the samples into the hottest stacks and leaf functions.

        Returns a JSON-ready dict: total samples, effective sampling rate,
        the ``top`` collapsed stacks and the ``top`` leaf functions, each
        with sample counts and percentages.  Safe to call while sampling.
        """
        with self._lock:
            counts = dict(self._counts)
            samples = self._samples
        if self._started_at is not None:
            elapsed = self._elapsed + (time.perf_counter() - self._started_at)
        else:
            elapsed = self._elapsed
        leaves: dict[str, int] = {}
        for stack, count in counts.items():
            leaf = stack.rsplit(";", 1)[-1] if stack else "<unknown>"
            leaves[leaf] = leaves.get(leaf, 0) + count

        def fold(table: dict[str, int], key_name: str) -> list[dict[str, Any]]:
            ranked = sorted(table.items(), key=lambda item: (-item[1], item[0]))
            return [
                {
                    key_name: name,
                    "samples": count,
                    "percent": round(100.0 * count / samples, 1) if samples else 0.0,
                }
                for name, count in ranked[:top]
            ]

        return {
            "samples": samples,
            "interval_s": self.interval_s,
            "elapsed_s": round(elapsed, 3),
            "distinct_stacks": len(counts),
            "hot_stacks": fold(counts, "stack"),
            "hot_functions": fold(leaves, "function"),
        }
