"""Dependency-free observability: metrics, tracing, accuracy telemetry.

Three pieces, one contract:

* :mod:`repro.obs.registry` -- thread-safe counters, gauges and fixed-bucket
  distributions with Prometheus text exposition (``MetricsRegistry.render``);
* :mod:`repro.obs.trace` -- ``X-Repro-Trace-Id`` propagation, per-request
  spans, and the structured slow-request log (:class:`RequestObserver`);
* :mod:`repro.obs.accuracy` -- sampled exact-vs-estimate selectivity-error
  telemetry (:class:`AccuracySampler`);
* :mod:`repro.obs.profile` -- phase timers and the opt-in stack-sampling
  profiler (:class:`SamplingProfiler`) behind the servers' ``profile=`` knob
  and the benchmark matrix's ``--profile`` flag;
* :mod:`repro.obs.process` -- process self-telemetry (RSS, GC, threads,
  uptime, ``repro_build_info``) refreshed on every ``/metrics`` scrape.

The contract: every lock in this package is a **leaf**.  Metric, trace and
sampler updates never acquire store/WAL/pipeline locks and never block on
I/O, so instrumentation can be called from any locking context in the stack
without creating lock-order cycles.  Enforced by repro-verify rule REP009
and exercised under ``tests/lockcheck.py``.
"""

from .accuracy import AccuracySampler
from .process import ProcessTelemetry
from .profile import DEFAULT_SAMPLE_INTERVAL_S, PhaseTimer, SamplingProfiler
from .registry import (
    ERROR_BUCKETS,
    LATENCY_BUCKETS_S,
    SIZE_BUCKETS,
    Counter,
    Distribution,
    Gauge,
    MetricsRegistry,
)
from .trace import (
    TRACE_HEADER,
    RequestObserver,
    Trace,
    current_trace,
    current_trace_id,
    maybe_span,
    new_trace_id,
    route_label,
    use_trace,
)

__all__ = [
    "AccuracySampler",
    "Counter",
    "DEFAULT_SAMPLE_INTERVAL_S",
    "Distribution",
    "ERROR_BUCKETS",
    "Gauge",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "PhaseTimer",
    "ProcessTelemetry",
    "RequestObserver",
    "SamplingProfiler",
    "SIZE_BUCKETS",
    "TRACE_HEADER",
    "Trace",
    "current_trace",
    "current_trace_id",
    "maybe_span",
    "new_trace_id",
    "route_label",
    "use_trace",
]
