"""Deterministic attribute placement for the sharded statistics cluster.

Placement answers one question -- *which shard(s) own attribute X?* -- and it
must answer it identically on every coordinator that ever looks, across
processes and restarts, without a metadata service.  Three rules, in
precedence order:

1. **Explicit assignment overrides** (``assign``): the rebalance protocol
   pins a moved attribute to its new home, beating the hash ring.
2. **Value-range partitions** (``partition``): a single hot attribute is
   split across shards by value range; each *value* (not the attribute) is
   routed by comparing against the partition's cut points.
3. **Consistent hashing**: everything else lands on a hash ring built from
   the shard ids (``replicas`` virtual nodes per shard, SHA-1 based, so
   placement is stable across Python processes -- the builtin ``hash`` is
   salted per process and useless here).  Adding or removing a shard moves
   only the attributes in the affected ring arcs.

The router itself is a pure placement table: it never talks to shards.  The
coordinator owns the mutation discipline (overrides are flipped inside the
rebalance critical section).
"""

from __future__ import annotations

import bisect
import hashlib
import math
import threading
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from ..exceptions import ClusterError, ConfigurationError

__all__ = ["RangePartition", "ShardRouter", "stable_hash"]


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key`` (SHA-1 prefix)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


@dataclass(frozen=True)
class RangePartition:
    """A value-range split of one attribute across shards.

    ``boundaries`` are the ascending cut points; piece ``i`` covers the
    half-open value range ``[boundaries[i-1], boundaries[i])`` (the first
    piece is unbounded below, the last unbounded above), so a value equal to
    a cut point routes to the piece on its *right* -- the same half-open
    convention the histograms use for shared bucket borders.
    """

    attribute: str
    boundaries: tuple[float, ...]
    shard_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.shard_ids) != len(self.boundaries) + 1:
            raise ConfigurationError(
                f"partition of {self.attribute!r} needs exactly "
                f"{len(self.boundaries) + 1} shard ids for "
                f"{len(self.boundaries)} boundaries, got {len(self.shard_ids)}"
            )
        for boundary in self.boundaries:
            if not math.isfinite(boundary):
                raise ConfigurationError(f"partition boundaries must be finite, got {boundary!r}")
        for previous, current in zip(self.boundaries, self.boundaries[1:], strict=False):
            if current <= previous:
                raise ConfigurationError(
                    f"partition boundaries must be strictly ascending, "
                    f"got {previous} before {current}"
                )

    @property
    def piece_shard_ids(self) -> tuple[str, ...]:
        """Distinct shard ids hosting at least one piece, in piece order."""
        seen: dict[str, None] = {}
        for shard_id in self.shard_ids:
            seen.setdefault(shard_id)
        return tuple(seen)

    def shard_for_value(self, value: float) -> str:
        """The shard id owning ``value``'s piece."""
        return self.shard_ids[bisect.bisect_right(self.boundaries, float(value))]

    def split(self, values: Sequence[float]) -> dict[str, list[float]]:
        """Group ``values`` by owning shard (one ``searchsorted`` pass).

        Order within each group preserves submission order, so per-shard
        ingest batches replay in the order the caller produced them.
        """
        if len(values) == 0:
            return {}
        arr = np.asarray(values, dtype=float)
        pieces = np.searchsorted(np.asarray(self.boundaries, dtype=float), arr, side="right")
        groups: dict[str, list[float]] = {}
        for piece in np.unique(pieces):
            shard_id = self.shard_ids[int(piece)]
            chunk = arr[pieces == piece].tolist()
            # Two pieces may share a shard; keep one batch per shard.
            groups.setdefault(shard_id, []).extend(chunk)
        return groups

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible description (what cluster stats report)."""
        return {
            "attribute": self.attribute,
            "boundaries": list(self.boundaries),
            "shard_ids": list(self.shard_ids),
        }


class ShardRouter:
    """Placement table: overrides > range partitions > consistent hash ring.

    With ``replication_factor=N`` every attribute (and every piece of a
    range-partitioned attribute) is placed on N distinct shards: the primary
    keeps its existing meaning (pin > partition piece > ring), and the N-1
    followers are the next distinct shards walking the ring.  The router only
    *places*; the coordinator owns the write fan-out / read failover
    semantics.
    """

    def __init__(
        self,
        shard_ids: Sequence[str],
        *,
        replicas: int = 64,
        replication_factor: int = 1,
    ) -> None:
        ids = list(shard_ids)
        if not ids:
            raise ConfigurationError("the router needs at least one shard id")
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"shard ids must be unique, got {ids}")
        for shard_id in ids:
            if not shard_id or not isinstance(shard_id, str):
                raise ConfigurationError("shard ids must be non-empty strings")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be positive, got {replicas}")
        if not 1 <= replication_factor <= len(ids):
            raise ConfigurationError(
                f"replication_factor must be between 1 and the shard count "
                f"({len(ids)}), got {replication_factor}"
            )
        self._shard_ids = ids
        self._replicas = replicas
        self._replication_factor = int(replication_factor)
        ring = sorted(
            (stable_hash(f"{shard_id}#{replica}"), shard_id)
            for shard_id in ids
            for replica in range(replicas)
        )
        self._ring_points = [point for point, _ in ring]
        self._ring_shards = [shard_id for _, shard_id in ring]
        # Guards the override / partition tables; ring membership is fixed.
        self._lock = threading.Lock()
        self._overrides: dict[str, str] = {}
        self._partitions: dict[str, RangePartition] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> list[str]:
        return list(self._shard_ids)

    @property
    def replication_factor(self) -> int:
        return self._replication_factor

    def placement(self) -> dict[str, object]:
        """JSON-compatible dump of the placement rules (for cluster stats)."""
        with self._lock:
            return {
                "shard_ids": list(self._shard_ids),
                "replicas": self._replicas,
                "replication_factor": self._replication_factor,
                "overrides": dict(self._overrides),
                "partitions": {
                    name: partition.to_dict()
                    for name, partition in self._partitions.items()
                },
            }

    def _require_member(self, shard_id: str) -> str:
        if shard_id not in self._shard_ids:
            raise ClusterError(f"unknown shard id {shard_id!r}; members: {self._shard_ids}")
        return shard_id

    # ------------------------------------------------------------------
    # hash-ring placement
    # ------------------------------------------------------------------
    def _ring_walk(self, key: str) -> Iterable[str]:
        """Distinct shard ids in ring order starting at ``key``'s point."""
        start = bisect.bisect_right(self._ring_points, stable_hash(key))
        n_points = len(self._ring_points)
        seen: dict[str, None] = {}
        for step in range(n_points):
            shard_id = self._ring_shards[(start + step) % n_points]
            if shard_id not in seen:
                seen[shard_id] = None
                yield shard_id
                if len(seen) == len(self._shard_ids):
                    return

    def ring_shard_for(self, name: str, *, exclude: Iterable[str] = ()) -> str:
        """Pure ring placement, ignoring overrides and partitions.

        ``exclude`` skips shards (drain walks the ring past the shard being
        emptied); excluding every shard is an error.
        """
        excluded = set(exclude)
        if not set(self._shard_ids) - excluded:
            raise ClusterError(f"no shards left after excluding {sorted(excluded)}")
        for shard_id in self._ring_walk(name):
            if shard_id not in excluded:
                return shard_id
        raise ClusterError("consistent-hash ring walk found no shard")  # pragma: no cover

    def shard_for(self, name: str, *, exclude: Iterable[str] = ()) -> str:
        """The single home shard of an unpartitioned attribute."""
        with self._lock:
            if name in self._partitions:
                raise ClusterError(
                    f"attribute {name!r} is range-partitioned across shards; "
                    "route per value or query the merged global histogram"
                )
            override = self._overrides.get(name)
        if override is not None and override not in set(exclude):
            return override
        return self.ring_shard_for(name, exclude=exclude)

    def shards_for(self, name: str) -> tuple[str, ...]:
        """Every shard holding state for ``name`` (one, or the piece set)."""
        partition = self.partition_for(name)
        if partition is not None:
            return partition.piece_shard_ids
        return (self.shard_for(name),)

    # ------------------------------------------------------------------
    # replica placement
    # ------------------------------------------------------------------
    def replicas_for(self, name: str) -> tuple[str, ...]:
        """The replica set of an unpartitioned attribute, primary first.

        The primary is :meth:`shard_for` (pin beats ring); the followers are
        the next ``replication_factor - 1`` *distinct* shards walking the
        consistent-hash ring from the attribute's point -- the classic
        successor-list placement, stable across processes and under shard
        additions outside the affected arcs.
        """
        primary = self.shard_for(name)
        followers: list[str] = []
        for shard_id in self._ring_walk(name):
            if len(followers) >= self._replication_factor - 1:
                break
            if shard_id != primary:
                followers.append(shard_id)
        return (primary, *followers[: self._replication_factor - 1])

    def partition_replicas(self, name: str) -> dict[str, tuple[str, ...]]:
        """Replica sets of a partitioned attribute, keyed by piece primary.

        Shard stores key histograms by attribute name alone, so no shard may
        ever hold two different pieces of the same attribute -- a replica
        would silently merge their masses.  The follower walk therefore
        skips every shard already used by this attribute (any piece primary
        or an earlier piece's follower); when the cluster is too small to
        satisfy that, the piece gets fewer followers (degraded, determinate)
        rather than a corrupt placement.
        """
        partition = self.partition_for(name)
        if partition is None:
            raise ClusterError(f"attribute {name!r} is not range-partitioned")
        used = set(partition.piece_shard_ids)
        result: dict[str, tuple[str, ...]] = {}
        for piece_primary in partition.piece_shard_ids:
            followers: list[str] = []
            for shard_id in self._ring_walk(f"{name}@{piece_primary}"):
                if len(followers) >= self._replication_factor - 1:
                    break
                if shard_id not in used:
                    followers.append(shard_id)
            used.update(followers)
            result[piece_primary] = (piece_primary, *followers)
        return result

    def replica_sets_for(self, name: str) -> list[tuple[str, ...]]:
        """Every replica group holding state for ``name`` (one per piece)."""
        if self.is_partitioned(name):
            return list(self.partition_replicas(name).values())
        return [self.replicas_for(name)]

    # ------------------------------------------------------------------
    # explicit assignment overrides
    # ------------------------------------------------------------------
    def assign(self, name: str, shard_id: str) -> None:
        """Pin ``name`` to ``shard_id``, beating the hash ring."""
        self._require_member(shard_id)
        with self._lock:
            if name in self._partitions:
                raise ClusterError(f"attribute {name!r} is range-partitioned; cannot pin")
            self._overrides[name] = shard_id

    def unassign(self, name: str) -> None:
        """Drop ``name``'s pin; it falls back to ring placement."""
        with self._lock:
            self._overrides.pop(name, None)

    # ------------------------------------------------------------------
    # value-range partitions
    # ------------------------------------------------------------------
    def partition(
        self,
        name: str,
        boundaries: Sequence[float],
        shard_ids: Sequence[str] | None = None,
    ) -> RangePartition:
        """Split ``name`` across shards by value range.

        Without explicit ``shard_ids``, the ``len(boundaries) + 1`` pieces are
        dealt round-robin over the member shards in id order -- deterministic,
        and spreading a hot attribute over every shard, which is the point.
        """
        cuts = tuple(float(b) for b in boundaries)
        if shard_ids is None:
            ordered = sorted(self._shard_ids)
            shard_ids = tuple(ordered[i % len(ordered)] for i in range(len(cuts) + 1))
        else:
            shard_ids = tuple(shard_ids)
            for shard_id in shard_ids:
                self._require_member(shard_id)
        partition = RangePartition(attribute=name, boundaries=cuts, shard_ids=shard_ids)
        with self._lock:
            if name in self._overrides:
                raise ClusterError(f"attribute {name!r} is pinned; cannot partition")
            self._partitions[name] = partition
        return partition

    def unpartition(self, name: str) -> None:
        """Remove ``name``'s range partition."""
        with self._lock:
            self._partitions.pop(name, None)

    def partition_for(self, name: str) -> RangePartition | None:
        with self._lock:
            return self._partitions.get(name)

    def is_partitioned(self, name: str) -> bool:
        return self.partition_for(name) is not None
