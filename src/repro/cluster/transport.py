"""Binary shard transport: persistent connections + length-prefixed frames.

The HTTP path (:class:`~repro.cluster.protocol.RemoteShard` over
:class:`~repro.service.client.StatisticsClient`) opens one TCP connection per
request and pays HTTP head parsing on both sides.  Spawned shard processes
(:mod:`repro.cluster.supervisor`) instead speak this binary protocol over a
small pool of **persistent** connections.

Frame format
------------

Every request and response is one self-framing binary record -- the WAL's
framing discipline (see "Record format" in :mod:`repro.service.wal`) with its
own magic::

    MAGIC (2 bytes, b"SB") | length (4 bytes, big-endian) |
    crc32 (4 bytes, big-endian, over the payload) | payload (UTF-8 JSON)

The request payload is an envelope ``{"id": <int>, "op": <name>,
"args": {...}, "trace": <trace id or absent>}``; the response echoes the id:
``{"id": <int>, "ok": true, "result": ...}`` on success or ``{"id": <int>,
"ok": false, "error": {"type": ..., "message": ..., "name": ...}}`` on an
application error, where ``type`` is the exception class name from
:mod:`repro.exceptions` (reconstructed on the client from a whitelist -- an
unknown type degrades to :class:`~repro.exceptions.ServiceError`).

Retry discipline (REP007 / REP011)
----------------------------------

:meth:`BinaryShardClient.call` separates the *connect phase* from the *send*:
a connect failure cannot have reached the shard and is always retried with
bounded exponential backoff, but once a frame reached the wire the op's fate
is unknown -- only ops in :data:`IDEMPOTENT_OPS` (reads) may re-enter the
retry loop.  Resending a write over a fresh connection could double-apply it
on a shard that processed the request and lost only the reply.  The analysis
rule REP011 machine-checks this file for that shape.

Non-blocking fan-out
--------------------

:func:`try_pipelined_scatter` is the coordinator's fast path: when every
target shard is a :class:`ProcessShard` and the per-shard call is a single
backend method, the calling thread writes every request frame back-to-back
and then multiplexes the replies with :mod:`selectors` -- one coordinator
thread drives N shard processes, with no executor thread per shard per
request.
"""

from __future__ import annotations

import itertools
import json
import selectors
import socket
import struct
import threading
import time
import zlib
from collections.abc import Mapping
from typing import Any, Callable

from ..exceptions import (
    ClusterError,
    ConfigurationError,
    DeletionError,
    DomainError,
    DuplicateAttributeError,
    EmptyHistogramError,
    HistogramError,
    InsufficientDataError,
    ServiceError,
    ShardUnavailableError,
    UnknownAttributeError,
)
from ..obs.trace import Trace, current_trace_id, use_trace
from .protocol import ShardBackend

__all__ = [
    "FrameError",
    "IDEMPOTENT_OPS",
    "READY_PREFIX",
    "BinaryShardClient",
    "BinaryShardServer",
    "ProcessShard",
    "encode_frame",
    "try_pipelined_scatter",
]

#: Same header discipline as the WAL record format (``repro/service/wal.py``):
#: 2-byte magic + payload length + payload crc32, all big-endian.
_MAGIC = b"SB"
_HEADER = struct.Struct(">2sII")

#: First token of the one readiness line a shard worker process prints on
#: stdout (``REPRO-SHARD-READY shard=<id> port=<port> pid=<pid>``).  Lives
#: here -- not in :mod:`repro.cluster.worker` -- so the supervisor never
#: imports the worker module the child re-executes with ``-m``.
READY_PREFIX = "REPRO-SHARD-READY"

#: Upper bound on one frame's payload: large enough for any snapshot the
#: cluster ships around, small enough that a corrupt length field cannot make
#: the receiver try to buffer gigabytes.
MAX_PAYLOAD_BYTES = 1 << 28

#: Ops whose replies are safe to re-request after an unknown-fate transport
#: failure: pure reads.  Everything else (create/drop/ingest/restore) may
#: have been applied by a shard that lost only its reply -- REP011.
IDEMPOTENT_OPS = frozenset(
    {"names", "query", "stats", "stats_all", "snapshot", "health", "generation", "ping"}
)

#: Positional parameter names per op, for normalising a recorded
#: ``method(*args, **kwargs)`` into the wire's ``args`` mapping.
_OP_POSITIONAL: dict[str, tuple[str, ...]] = {
    "create": ("name", "kind"),
    "drop": ("name",),
    "names": (),
    "ingest": ("name", "insert", "delete"),
    "query": ("name", "queries"),
    "stats": ("name",),
    "stats_all": (),
    "snapshot": ("name",),
    "restore": ("name", "snapshot"),
    "health": (),
    "generation": ("name",),
}

#: Exception classes the wire protocol transports by name.
_EXCEPTION_TYPES: dict[str, type[Exception]] = {
    cls.__name__: cls
    for cls in (
        HistogramError,
        ConfigurationError,
        EmptyHistogramError,
        DomainError,
        DeletionError,
        InsufficientDataError,
        ServiceError,
        UnknownAttributeError,
        DuplicateAttributeError,
        ClusterError,
    )
}


class FrameError(ConnectionError):
    """A frame failed validation (magic/length/crc) or the peer closed.

    Subclasses :class:`ConnectionError` (hence :class:`OSError`) so every
    existing transport-failure path -- ``RemoteShard``-style wrapping, the
    retry loops, ``ShardUnavailableError`` classification -- treats a torn or
    corrupt frame exactly like a dead connection, which is what it means.
    """


def _json_default(value: Any) -> Any:
    # Callers hand the coordinator numpy scalars/arrays; the wire is JSON.
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    raise TypeError(f"cannot serialise {type(value).__name__} on the shard wire")


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Encode one envelope as ``magic | length | crc32 | JSON payload``."""
    body = json.dumps(payload, separators=(",", ":"), default=_json_default).encode(
        "utf-8"
    )
    if len(body) > MAX_PAYLOAD_BYTES:
        raise FrameError(f"frame payload of {len(body)} bytes exceeds the protocol cap")
    return _HEADER.pack(_MAGIC, len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


class _FrameParser:
    """Incremental frame decoder over an append-only byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def pop(self) -> dict[str, Any] | None:
        """Decode and remove one complete frame, or return None."""
        if len(self._buffer) < _HEADER.size:
            return None
        magic, length, crc = _HEADER.unpack_from(self._buffer)
        if magic != _MAGIC:
            raise FrameError(f"bad frame magic {bytes(magic)!r}")
        if length > MAX_PAYLOAD_BYTES:
            raise FrameError(f"frame length {length} exceeds the protocol cap")
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        body = bytes(self._buffer[_HEADER.size : end])
        del self._buffer[:end]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise FrameError("frame payload failed its crc32 check")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FrameError(f"frame payload is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise FrameError("frame payload must be a JSON object")
        return payload


def describe_exception(error: Exception) -> dict[str, Any]:
    """The wire form of an application error raised by a shard op."""
    info: dict[str, Any] = {"type": type(error).__name__, "message": str(error)}
    name = getattr(error, "name", None)
    if isinstance(name, str):
        info["name"] = name
    return info


def build_exception(info: Mapping[str, Any]) -> Exception:
    """Reconstruct a shard-side application error from its wire form."""
    type_name = str(info.get("type", "ServiceError"))
    message = str(info.get("message", type_name))
    cls = _EXCEPTION_TYPES.get(type_name)
    name = info.get("name")
    if cls in (UnknownAttributeError, DuplicateAttributeError) and isinstance(name, str):
        return cls(name)
    if cls is not None:
        try:
            return cls(message)
        except Exception:  # pragma: no cover - exotic constructor signature
            pass
    return ServiceError(f"{type_name}: {message}")


class ShardConnection:
    """One persistent connection with its incremental frame parser."""

    _CHUNK = 65536

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._parser = _FrameParser()
        self._ids = itertools.count(1)

    def next_request_id(self) -> int:
        return next(self._ids)

    def fileno(self) -> int:
        return self._sock.fileno()

    def set_blocking(self, blocking: bool, timeout: float | None = None) -> None:
        if blocking:
            self._sock.settimeout(timeout)
        else:
            self._sock.setblocking(False)

    def send(self, frame: bytes) -> None:
        self._sock.sendall(frame)

    def receive(self, timeout: float) -> dict[str, Any]:
        """Block until one complete frame arrives (or ``timeout`` elapses)."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self._parser.pop()
            if payload is not None:
                return payload
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout(f"no reply frame within {timeout:g}s")
            self._sock.settimeout(remaining)
            chunk = self._sock.recv(self._CHUNK)
            if not chunk:
                raise FrameError("connection closed before a complete reply frame")
            self._parser.feed(chunk)

    def receive_step(self) -> dict[str, Any] | None:
        """One non-blocking read step; a complete frame, or None for 'not yet'."""
        payload = self._parser.pop()
        if payload is not None:
            return payload
        try:
            chunk = self._sock.recv(self._CHUNK)
        except (BlockingIOError, InterruptedError):
            return None
        if not chunk:
            raise FrameError("connection closed before a complete reply frame")
        self._parser.feed(chunk)
        return self._parser.pop()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


class BinaryShardClient:
    """Client for one :class:`BinaryShardServer`, pooling persistent connections.

    Parameters mirror :class:`~repro.service.client.StatisticsClient`:
    ``retries`` extra attempts after a retriable transport failure, backoff
    doubling from ``retry_backoff``.  The pool keeps up to ``pool_size`` idle
    connections; a scatter can check out more (they are closed on check-in
    once the pool is full).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
        pool_size: int = 4,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self._pool_size = int(pool_size)
        self._idle: list[ShardConnection] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self.transport_stats = {"connect_retries": 0, "backoff_seconds": 0.0}
        self._stats_lock = threading.Lock()
        self._m_connect_retries: Any | None = None
        self._m_backoff_seconds: Any | None = None
        self._endpoint = f"{host}:{port}"

    def bind_metrics(self, metrics: Any) -> None:
        """Mirror transport stats into ``metrics`` with an endpoint label."""
        self._m_connect_retries = metrics.counter(
            "repro_client_connect_retries_total",
            "Connection attempts that failed and were retried, per endpoint",
            labelnames=("endpoint",),
        )
        self._m_backoff_seconds = metrics.counter(
            "repro_client_retry_backoff_seconds_total",
            "Total time slept in retry backoff, per endpoint",
            labelnames=("endpoint",),
        )

    def _record_connect_failure(self) -> None:
        with self._stats_lock:
            self.transport_stats["connect_retries"] += 1
        if self._m_connect_retries is not None:
            self._m_connect_retries.inc(1, endpoint=self._endpoint)

    def _record_backoff(self, pause: float) -> None:
        with self._stats_lock:
            self.transport_stats["backoff_seconds"] += pause
        if self._m_backoff_seconds is not None:
            self._m_backoff_seconds.inc(pause, endpoint=self._endpoint)

    # -- pool ----------------------------------------------------------
    def checkout(self) -> ShardConnection:
        """A pooled connection, or a freshly connected one (connect phase).

        Connect errors propagate as :class:`OSError`: nothing has reached the
        shard, so the caller's retry loop may always re-enter.
        """
        with self._pool_lock:
            if self._closed:
                raise FrameError("client is closed")
            if self._idle:
                return self._idle.pop()
        # Connect OUTSIDE the pool lock: socket I/O under a held lock would
        # stall every concurrent checkout (and trips the lockcheck monitor).
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        return ShardConnection(sock)

    def checkout_with_retry(self) -> ShardConnection:
        """Connect-phase checkout with the client's bounded backoff retries."""
        last_error: OSError | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                pause = self.retry_backoff * (2 ** (attempt - 1))
                self._record_backoff(pause)
                time.sleep(pause)
            try:
                return self.checkout()
            except OSError as error:
                self._record_connect_failure()
                last_error = error
        assert last_error is not None
        raise last_error

    def checkin(self, connection: ShardConnection) -> None:
        connection.set_blocking(True, self.timeout)
        with self._pool_lock:
            if not self._closed and len(self._idle) < self._pool_size:
                self._idle.append(connection)
                return
        connection.close()

    def discard(self, connection: ShardConnection) -> None:
        connection.close()

    def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        with self._pool_lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    # -- request/response ----------------------------------------------
    def _envelope(self, connection: ShardConnection, op: str, args: Mapping[str, Any]) -> tuple[int, bytes]:
        request_id = connection.next_request_id()
        payload: dict[str, Any] = {"id": request_id, "op": op, "args": dict(args)}
        trace_id = current_trace_id()
        if trace_id is not None:
            payload["trace"] = trace_id
        return request_id, encode_frame(payload)

    @staticmethod
    def _decode_reply(reply: Mapping[str, Any], request_id: int) -> Any:
        if reply.get("id") != request_id:
            raise FrameError(
                f"reply id {reply.get('id')!r} does not match request {request_id}"
            )
        if reply.get("ok"):
            return reply.get("result")
        error_info = reply.get("error")
        raise build_exception(error_info if isinstance(error_info, Mapping) else {})

    def call(self, op: str, args: Mapping[str, Any] | None = None) -> Any:
        """One request/response round trip on a pooled connection.

        Connect-phase failures retry with backoff; a failure after the frame
        reached the wire re-enters the loop only for ops in
        :data:`IDEMPOTENT_OPS` -- resending anything else could double-apply
        a write whose reply was lost (REP011).
        """
        args = args or {}
        idempotent = op in IDEMPOTENT_OPS
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                pause = self.retry_backoff * (2 ** (attempt - 1))
                self._record_backoff(pause)
                time.sleep(pause)
            try:
                connection = self.checkout()
            except OSError as error:
                self._record_connect_failure()
                last_error = error
                continue
            request_id, frame = self._envelope(connection, op, args)
            try:
                connection.send(frame)
                reply = connection.receive(self.timeout)
            except OSError as error:
                self.discard(connection)
                # Post-wire failure: the shard may have applied the op and
                # lost only the reply.  Only an idempotent read may re-enter
                # the retry loop; a resent write could double-apply.
                if not idempotent:
                    raise
                last_error = error
                continue
            self.checkin(connection)
            return self._decode_reply(reply, request_id)
        assert last_error is not None
        raise last_error


class ProcessShard(ShardBackend):
    """A shard served by a spawned process over the binary transport.

    The scatter fast path (:func:`try_pipelined_scatter`) recognises this
    backend and multiplexes its persistent connections; individual method
    calls fall back to one blocking round trip.  Transport failures (after
    the client's bounded retries) are wrapped into
    :class:`~repro.exceptions.ShardUnavailableError`, exactly like
    :class:`~repro.cluster.protocol.RemoteShard`.
    """

    def __init__(self, shard_id: str, client: BinaryShardClient) -> None:
        super().__init__(shard_id)
        self.client = client

    def bind_metrics(self, metrics: Any) -> None:
        self.client.bind_metrics(metrics)

    def _unavailable(self, error: Exception) -> ShardUnavailableError:
        return ShardUnavailableError(self.shard_id, error)

    def _call(self, op: str, args: Mapping[str, Any]) -> Any:
        try:
            return self.client.call(op, args)
        except OSError as error:
            raise self._unavailable(error) from error

    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
    ) -> dict[str, Any]:
        return self._call(
            "create",
            {
                "name": name,
                "kind": kind,
                "memory_kb": memory_kb,
                "value_unit": value_unit,
                "disk_factor": disk_factor,
                "seed": seed,
                "exist_ok": exist_ok,
            },
        )

    def drop(self, name: str) -> None:
        self._call("drop", {"name": name})

    def names(self) -> list[str]:
        return list(self._call("names", {}))

    def ingest(self, name, insert=(), delete=()):
        return self._call(
            "ingest", {"name": name, "insert": list(insert), "delete": list(delete)}
        )

    def query(self, name, queries):
        return self._call("query", {"name": name, "queries": list(queries)})

    def stats(self, name: str) -> dict[str, Any]:
        return self._call("stats", {"name": name})

    def stats_all(self) -> list[dict[str, Any]]:
        return list(self._call("stats_all", {}))

    def snapshot(self, name: str) -> dict[str, Any]:
        return self._call("snapshot", {"name": name})

    def restore(self, name, snapshot):
        return self._call("restore", {"name": name, "snapshot": dict(snapshot)})

    def health(self) -> dict[str, Any]:
        return self._call("health", {})

    def generation(self, name: str) -> int:
        return int(self._call("generation", {"name": name}))


# ----------------------------------------------------------------------
# server side
# ----------------------------------------------------------------------
class BinaryShardServer:
    """Serve one :class:`ShardBackend` over the binary frame protocol.

    One daemon thread accepts; each persistent connection gets its own daemon
    thread (a coordinator holds a handful of connections per shard, not one
    per request, so the thread count is bounded by peers, not load).
    """

    def __init__(
        self, backend: ShardBackend, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.backend = backend
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()

    def start(self) -> BinaryShardServer:
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-shard-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._conn_lock:
                if self._stopping.is_set():
                    sock.close()
                    break
                self._connections.add(sock)
            threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name="repro-shard-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        parser = _FrameParser()
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._stopping.is_set():
                try:
                    payload = parser.pop()
                except FrameError:
                    return  # corrupt stream: drop the connection
                if payload is None:
                    chunk = sock.recv(65536)
                    if not chunk:
                        return
                    parser.feed(chunk)
                    continue
                sock.sendall(encode_frame(self._respond(payload)))
        except OSError:
            pass  # peer went away mid-read/write
        finally:
            sock.close()
            with self._conn_lock:
                self._connections.discard(sock)

    def _respond(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        request_id = payload.get("id")
        op = payload.get("op")
        args = payload.get("args") or {}
        trace_id = payload.get("trace")
        try:
            if op == "ping":
                result: Any = {"status": "ok", "shard": self.backend.shard_id}
            elif not isinstance(op, str) or op not in _OP_POSITIONAL:
                raise ServiceError(f"unknown shard op {op!r}")
            elif not isinstance(args, Mapping):
                raise ServiceError("shard op args must be a JSON object")
            else:
                method = getattr(self.backend, op)
                # Re-activate the caller's trace so shard-side spans and logs
                # carry the same id the coordinator stamped on the request.
                with use_trace(Trace(trace_id) if isinstance(trace_id, str) else None):
                    result = method(**{str(key): value for key, value in args.items()})
            return {"id": request_id, "ok": True, "result": result}
        except Exception as error:
            return {"id": request_id, "ok": False, "error": describe_exception(error)}

    def stop(self) -> None:
        """Close the listener and every open connection (idempotent)."""
        self._stopping.set()
        # A thread blocked in accept() is not reliably woken by close() on
        # Linux; a throwaway self-connection guarantees the accept returns
        # and the loop observes the stop flag.
        try:
            with socket.create_connection(self.address, timeout=1.0):
                pass
        except OSError:
            pass
        self._listener.close()
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for sock in connections:
            sock.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> BinaryShardServer:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ----------------------------------------------------------------------
# non-blocking scatter (coordinator fast path)
# ----------------------------------------------------------------------
class _NotSimpleCall(Exception):
    """The recorded closure did more than one plain backend method call."""


class _RecordedResult:
    """Inert sentinel a recorded call returns; any use means 'not simple'."""

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        raise _NotSimpleCall()

    def __getitem__(self, key: Any) -> Any:
        raise _NotSimpleCall()

    def __iter__(self) -> Any:
        raise _NotSimpleCall()

    def __bool__(self) -> bool:
        raise _NotSimpleCall()


class _CallRecorder:
    """Duck-types a :class:`ShardBackend` to capture one method invocation."""

    def __init__(self, shard_id: str) -> None:
        self.shard_id = shard_id
        self.spec: tuple[str, dict[str, Any]] | None = None
        self.result: _RecordedResult | None = None

    def __getattr__(self, name: str) -> Callable[..., Any]:
        if name not in _OP_POSITIONAL:
            raise _NotSimpleCall()

        def record(*args: Any, **kwargs: Any) -> Any:
            if self.spec is not None:
                raise _NotSimpleCall()  # a second backend call in one leg
            merged = dict(kwargs)
            positional = _OP_POSITIONAL[name]
            if len(args) > len(positional):
                raise _NotSimpleCall()
            for param, value in zip(positional, args):
                merged[param] = value
            self.spec = (name, merged)
            self.result = _RecordedResult()
            return self.result

        return record


def try_pipelined_scatter(
    shards: Mapping[str, ShardBackend], call: Callable[[ShardBackend], Any]
) -> dict[str, tuple[bool, Any, float]] | None:
    """Scatter ``call`` over process shards without executor threads.

    Returns ``{shard_id: (ok, value, elapsed_s)}`` -- ``value`` is the call's
    result when ``ok`` and an exception otherwise (transport failures already
    wrapped as :class:`ShardUnavailableError`, application errors
    reconstructed) -- or ``None`` when the fast path does not apply: a
    non-:class:`ProcessShard` member, or a per-shard closure that is more
    than one plain backend method call (the caller then uses its regular
    executor fan-out, with identical semantics).
    """
    if not shards or not all(
        isinstance(shard, ProcessShard) for shard in shards.values()
    ):
        return None
    specs: dict[str, tuple[str, dict[str, Any]]] = {}
    try:
        for shard_id in shards:
            recorder = _CallRecorder(shard_id)
            outcome = call(recorder)  # type: ignore[arg-type]
            if recorder.spec is None or outcome is not recorder.result:
                return None
            specs[shard_id] = recorder.spec
    except _NotSimpleCall:
        return None
    except Exception:
        # The closure itself failed during recording (e.g. a lookup bug).
        # Fall back so the executor path surfaces it exactly as before.
        return None
    return _execute_scatter({sid: (shards[sid], specs[sid]) for sid in shards})  # type: ignore[dict-item]


def _execute_scatter(
    legs: Mapping[str, tuple[ProcessShard, tuple[str, dict[str, Any]]]],
) -> dict[str, tuple[bool, Any, float]]:
    outcomes: dict[str, tuple[bool, Any, float]] = {}
    pending: dict[str, dict[str, Any]] = {}
    fallback: list[str] = []
    start = time.perf_counter()

    def finish(shard_id: str, ok: bool, value: Any) -> None:
        outcomes[shard_id] = (ok, value, time.perf_counter() - start)

    # Phase 1: connect (retriable) + send every request back-to-back.  The
    # frame either reaches the wire or the leg fails here; REP011 applies
    # from the send onward.
    for shard_id, (shard, (op, args)) in legs.items():
        client = shard.client
        try:
            connection = client.checkout_with_retry()
        except OSError as error:
            finish(shard_id, False, shard._unavailable(error))
            continue
        request_id, frame = client._envelope(connection, op, args)
        try:
            connection.send(frame)
        # repro-verify: ignore[REP011] this `continue` moves to the NEXT leg, never re-sends this one: idempotent ops are re-asked once in phase 3, non-idempotent ones finish as unavailable here
        except OSError as error:
            client.discard(connection)
            # Nothing guarantees the frame left this host, but its fate is
            # unknown: only an idempotent read may be re-asked (REP011).
            if op in IDEMPOTENT_OPS:
                fallback.append(shard_id)
            else:
                finish(shard_id, False, shard._unavailable(error))
            continue
        connection.set_blocking(False)
        pending[shard_id] = {
            "shard": shard,
            "connection": connection,
            "request_id": request_id,
            "op": op,
            "args": args,
        }

    # Phase 2: multiplex the replies on the calling thread.
    if pending:
        deadline = start + max(
            leg["shard"].client.timeout for leg in pending.values()
        )
        selector = selectors.DefaultSelector()
        for shard_id, leg in pending.items():
            selector.register(leg["connection"], selectors.EVENT_READ, shard_id)

        def drop_leg(shard_id: str, error: OSError) -> None:
            leg = pending.pop(shard_id)
            selector.unregister(leg["connection"])
            leg["shard"].client.discard(leg["connection"])
            if leg["op"] in IDEMPOTENT_OPS:
                fallback.append(shard_id)
            else:
                finish(shard_id, False, leg["shard"]._unavailable(error))

        try:
            while pending:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    for shard_id in list(pending):
                        drop_leg(shard_id, socket.timeout("scatter reply timed out"))
                    break
                for key, _events in selector.select(remaining):
                    shard_id = key.data
                    leg = pending.get(shard_id)
                    if leg is None:
                        continue
                    try:
                        reply = leg["connection"].receive_step()
                    except OSError as error:
                        drop_leg(shard_id, error)
                        continue
                    if reply is None:
                        continue
                    del pending[shard_id]
                    selector.unregister(leg["connection"])
                    leg["shard"].client.checkin(leg["connection"])
                    try:
                        value = BinaryShardClient._decode_reply(
                            reply, leg["request_id"]
                        )
                    except FrameError as error:
                        # The reply itself was unusable; same classification
                        # as a dead connection.
                        if leg["op"] in IDEMPOTENT_OPS:
                            fallback.append(shard_id)
                        else:
                            finish(shard_id, False, leg["shard"]._unavailable(error))
                        continue
                    except Exception as error:
                        finish(shard_id, False, error)
                        continue
                    finish(shard_id, True, value)
        finally:
            selector.close()

    # Phase 3: idempotent reads that lost their connection re-ask through the
    # blocking client (a fresh retry loop -- legal for reads only).
    for shard_id in fallback:
        shard, (op, args) = legs[shard_id]
        try:
            finish(shard_id, True, shard.client.call(op, args))
        except OSError as error:
            finish(shard_id, False, shard._unavailable(error))
        except Exception as error:
            finish(shard_id, False, error)
    return outcomes
