"""Shard supervisor: spawn, watch and tear down shard worker processes.

``serve-cluster --spawn-shards N`` (and the benchmarks) use this to turn the
in-process shard set into N real OS processes -- each with its own
:class:`~repro.service.store.HistogramStore`, its own WAL directory and its
own binary-transport port -- so CPU-bound ingest scales with cores instead of
serialising on one interpreter's GIL.

Lifecycle
---------

* :meth:`ShardSupervisor.start` launches ``python -m repro.cluster.worker``
  once per shard, waits for each worker's readiness line (which carries the
  ephemeral port it bound), verifies liveness with a transport ``ping`` and
  returns one :class:`~repro.cluster.transport.ProcessShard` per worker.
* A monitor thread polls the fleet.  A worker that dies unexpectedly is
  respawned **on the same port** (so the coordinator's persistent clients
  reconnect transparently), at most ``max_restarts`` times per shard.  A
  restarted worker recovers whatever its WAL holds -- without a WAL it comes
  back empty -- and in a replicated cluster the operator (or a test) then
  heals it with ``resync``; the supervisor never invents data.
* :meth:`close` is idempotent: it stops the monitor, closes every transport
  client, SIGTERMs every worker, and escalates to SIGKILL after
  ``shutdown_timeout``.

The supervisor never retries an op on a worker's behalf; all request-level
retry discipline lives in the transport client (REP007/REP011).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..exceptions import ClusterError, ConfigurationError
from .transport import READY_PREFIX, BinaryShardClient, ProcessShard

__all__ = ["ShardSupervisor"]


@dataclass
class _ShardHandle:
    shard_id: str
    process: subprocess.Popen
    port: int
    wal_dir: Path | None
    restarts: int = 0
    events: list[str] = field(default_factory=list)


def _parse_ready_line(line: str) -> dict[str, str]:
    fields = dict(
        part.split("=", 1) for part in line.split()[1:] if "=" in part
    )
    return fields


class ShardSupervisor:
    """Run ``n_shards`` shard worker processes and keep them alive.

    Parameters
    ----------
    n_shards:
        Number of worker processes to spawn.
    wal_root:
        Optional base directory; shard ``i`` logs under ``wal_root/shard-i``.
        A restarted worker recovers from its own WAL directory.
    restart:
        Respawn workers that exit unexpectedly (on their original port).
    max_restarts:
        Per-shard cap on automatic respawns; afterwards the shard stays down
        (reads fail over, ``resync`` heals it once it is brought back).
    startup_timeout:
        Seconds to wait for one worker's readiness line.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        host: str = "127.0.0.1",
        wal_root: str | Path | None = None,
        wal_fsync: bool = False,
        restart: bool = True,
        max_restarts: int = 3,
        startup_timeout: float = 30.0,
        shutdown_timeout: float = 5.0,
        poll_interval: float = 0.2,
        client_timeout: float = 10.0,
        client_retries: int = 2,
        client_retry_backoff: float = 0.05,
    ) -> None:
        if n_shards < 1:
            raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
        self._n_shards = int(n_shards)
        self._host = host
        self._wal_root = Path(wal_root) if wal_root is not None else None
        self._wal_fsync = bool(wal_fsync)
        self._restart = bool(restart)
        self._max_restarts = int(max_restarts)
        self._startup_timeout = float(startup_timeout)
        self._shutdown_timeout = float(shutdown_timeout)
        self._poll_interval = float(poll_interval)
        self._client_timeout = float(client_timeout)
        self._client_retries = int(client_retries)
        self._client_retry_backoff = float(client_retry_backoff)
        self._handles: dict[str, _ShardHandle] = {}
        self._clients: dict[str, BinaryShardClient] = {}
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    def _worker_command(self, shard_id: str, port: int, wal_dir: Path | None) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.cluster.worker",
            "--shard-id",
            shard_id,
            "--host",
            self._host,
            "--port",
            str(port),
        ]
        if wal_dir is not None:
            command += ["--wal-dir", str(wal_dir)]
            if self._wal_fsync:
                command.append("--wal-fsync")
        return command

    def _worker_env(self) -> dict[str, str]:
        # The worker must import `repro` exactly as this process does, even
        # when the package is only on sys.path (editable/source checkout).
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        return env

    def _spawn(self, shard_id: str, port: int) -> _ShardHandle:
        wal_dir = self._wal_root / shard_id if self._wal_root is not None else None
        process = subprocess.Popen(
            self._worker_command(shard_id, port, wal_dir),
            stdout=subprocess.PIPE,
            stderr=None,  # workers share the supervisor's stderr for debugging
            env=self._worker_env(),
        )
        try:
            bound_port = self._await_ready(shard_id, process)
        except Exception:
            process.kill()
            process.wait()
            raise
        return _ShardHandle(shard_id, process, bound_port, wal_dir)

    def _await_ready(self, shard_id: str, process: subprocess.Popen) -> int:
        assert process.stdout is not None
        deadline = time.monotonic() + self._startup_timeout
        result: dict[str, Any] = {}

        def read_line() -> None:
            try:
                result["line"] = process.stdout.readline()  # type: ignore[union-attr]
            except Exception as error:  # pragma: no cover - pipe teardown race
                result["error"] = error

        reader = threading.Thread(target=read_line, name="repro-shard-ready", daemon=True)
        reader.start()
        reader.join(max(0.0, deadline - time.monotonic()))
        if reader.is_alive() or "line" not in result:
            raise ClusterError(
                f"shard worker {shard_id!r} did not report readiness within "
                f"{self._startup_timeout:g}s"
            )
        line = result["line"].decode("utf-8", "replace").strip()
        if not line.startswith(READY_PREFIX):
            code = process.poll()
            raise ClusterError(
                f"shard worker {shard_id!r} failed to start "
                f"(exit code {code}, first line {line!r})"
            )
        fields = _parse_ready_line(line)
        try:
            return int(fields["port"])
        except (KeyError, ValueError):
            raise ClusterError(
                f"shard worker {shard_id!r} readiness line is malformed: {line!r}"
            ) from None

    def start(self) -> list[ProcessShard]:
        """Spawn the fleet; returns one :class:`ProcessShard` per worker."""
        if self._started:
            raise ClusterError("supervisor already started")
        self._started = True
        shards: list[ProcessShard] = []
        try:
            for index in range(self._n_shards):
                shard_id = f"shard-{index}"
                handle = self._spawn(shard_id, port=0)
                client = BinaryShardClient(
                    self._host,
                    handle.port,
                    timeout=self._client_timeout,
                    retries=self._client_retries,
                    retry_backoff=self._client_retry_backoff,
                )
                client.call("ping")  # liveness fence before the fleet is handed out
                with self._lock:
                    self._handles[shard_id] = handle
                    self._clients[shard_id] = client
                shards.append(ProcessShard(shard_id, client))
        except Exception:
            self.close()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-shard-supervisor", daemon=True
        )
        self._monitor.start()
        return shards

    # ------------------------------------------------------------------
    # liveness monitoring
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._closing.wait(self._poll_interval):
            with self._lock:
                handles = list(self._handles.values())
            for handle in handles:
                code = handle.process.poll()
                if code is None or self._closing.is_set():
                    continue
                handle.events.append(f"exited with code {code}")
                if not self._restart or handle.restarts >= self._max_restarts:
                    continue
                handle.restarts += 1
                try:
                    # Same port: the coordinator's pooled connections died
                    # with the old process, and its connect-phase retries
                    # land on the respawned worker transparently.
                    replacement = self._spawn(handle.shard_id, port=handle.port)
                except Exception as error:
                    handle.events.append(f"restart failed: {error}")
                    continue
                replacement.restarts = handle.restarts
                replacement.events = handle.events + ["restarted"]
                with self._lock:
                    if self._closing.is_set():
                        replacement.process.kill()
                        replacement.process.wait()
                        return
                    self._handles[handle.shard_id] = replacement

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> list[str]:
        with self._lock:
            return list(self._handles)

    def pid(self, shard_id: str) -> int:
        with self._lock:
            return self._handles[shard_id].process.pid

    def port(self, shard_id: str) -> int:
        with self._lock:
            return self._handles[shard_id].port

    def describe(self) -> dict[str, Any]:
        """Operator-facing fleet state (pids, ports, restart history)."""
        with self._lock:
            return {
                handle.shard_id: {
                    "pid": handle.process.pid,
                    "port": handle.port,
                    "alive": handle.process.poll() is None,
                    "restarts": handle.restarts,
                    "wal_dir": str(handle.wal_dir) if handle.wal_dir else None,
                    "events": list(handle.events),
                }
                for handle in self._handles.values()
            }

    def wait_until_alive(self, shard_id: str, timeout: float = 30.0) -> None:
        """Block until ``shard_id`` answers a transport ping (post-restart)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            client = self._clients[shard_id]
        while True:
            try:
                client.call("ping")
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the fleet down (idempotent): clients, SIGTERM, then SIGKILL."""
        if self._closing.is_set():
            return
        self._closing.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self._shutdown_timeout)
            self._monitor = None
        with self._lock:
            clients = list(self._clients.values())
            handles = list(self._handles.values())
            self._clients.clear()
            self._handles.clear()
        for client in clients:
            client.close()
        for handle in handles:
            if handle.process.poll() is None:
                handle.process.terminate()
        deadline = time.monotonic() + self._shutdown_timeout
        for handle in handles:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait()
            if handle.process.stdout is not None:
                handle.process.stdout.close()

    def __enter__(self) -> ShardSupervisor:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
