"""Scatter-gather coordinator over the cluster's backing shards.

The :class:`ClusterCoordinator` is the single entry point a cluster client
talks to.  It owns a :class:`~repro.cluster.router.ShardRouter` (placement)
and a set of :class:`~repro.cluster.protocol.ShardBackend` members, and it
implements the three cluster-level behaviours no single shard can provide:

**Scatter-gather ingest.**  Writes for an unpartitioned attribute go to its
home shard; writes for a range-partitioned attribute are split per value
(one ``searchsorted`` pass) and fanned out to the piece shards concurrently
through a thread pool.  :meth:`ingest_batch` groups a whole multi-attribute
batch by shard first, so each shard receives exactly one concurrent stream.
Per-shard application is independent: a failing piece never rolls back the
others (the same partial-apply semantics as the service layer; the error
names the failing shard).

**Merged global estimates.**  Queries against a partitioned attribute cannot
be answered by any one shard.  The coordinator rebuilds the paper's Section 8
machinery: it snapshots every piece, superimposes the piece histograms
(:func:`~repro.distributed.union.superimpose` -- lossless) and reduces the
union back to the configured bucket budget
(:func:`~repro.distributed.union.reduce_segments`).  The merged histogram is
cached under the *sum of the piece shards' generation counters*: generations
are read **before** the snapshots, so the cache key can only under-state the
data's freshness -- a write racing the rebuild bumps the sum and forces the
next query to rebuild, never the reverse (a stale histogram served under a
fresh key).  Maintenance is *incremental*: the per-piece snapshots are cached
alongside the merge, so a rebuild re-fetches only the pieces whose probed
generation moved and superimposes them with the retained members -- a write
to one piece of an N-piece attribute costs one snapshot, not N.  At rest, the
cached merge is bit-identical to a from-scratch superimpose + reduce (the
property suite asserts this, incremental refresh included).

**Rebalance / drain.**  :meth:`rebalance` moves an attribute between shards
via snapshot/restore without losing writes: writes arriving during the copy
are buffered at the coordinator, replayed onto the target, and the routing
override flips atomically with the final drain, so every buffered operation
lands exactly once.  :meth:`drain` empties a shard by rebalancing every
attribute homed there onto the surviving members (ring walk with the drained
shard excluded).

**Replication / failover / resync.**  With a router built with
``replication_factor=N``, every attribute (and every piece of a partitioned
attribute) lives on N distinct shards.  Writes fan out to all replicas
concurrently; a write succeeds as long as *one* replica of each touched
group applies it, and a replica that fails (before or after applying --
its fate is unknown) is only **marked stale**, never retried: retrying a
write whose fate is unknown could double-apply it, while a stale replica is
healed wholesale by :meth:`resync` (snapshot from a live replica, restore
over the stale one -- a full-state replace, immune to double-apply by
construction).  Reads try the primary first and fail over to the next live,
non-stale replica on :class:`~repro.exceptions.ShardUnavailableError`.  With
``replica_reads=True`` the coordinator instead *rotates* estimate reads
round-robin across the known-fresh replicas of an attribute (every replica
applies every write, so any non-stale replica answers identically), spreading
query load over the whole replica set; known-stale replicas stay demoted to
last-resort exactly as in failover.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Mapping, Sequence
from typing import Any

from ..core.base import Histogram
from ..distributed.union import UnionHistogram, reduce_segments, superimpose
from ..exceptions import (
    ClusterError,
    ConfigurationError,
    ShardUnavailableError,
    UnknownAttributeError,
)
from ..obs.trace import current_trace, maybe_span, use_trace
from ..persistence import histogram_from_dict
from ..service.store import evaluate_queries
from .protocol import ShardBackend
from .router import RangePartition, ShardRouter
from .transport import try_pipelined_scatter

__all__ = ["ClusterCoordinator", "DEFAULT_GLOBAL_BUCKETS"]

#: Default bucket budget of merged global histograms (the reduce target).
DEFAULT_GLOBAL_BUCKETS = 64


class ClusterCoordinator:
    """Routes, fans out and merges across the cluster's shards.

    Parameters
    ----------
    shards:
        The backing members; their ``shard_id``s must be unique.
    router:
        Placement table; built from the shard ids when omitted.
    global_buckets:
        Bucket budget merged global histograms are reduced to.
    value_unit:
        Domain granularity forwarded to the reduction metric.
    max_workers:
        Fan-out thread-pool size (default: two per shard, at least four).
    replica_reads:
        When true, estimate reads rotate round-robin across the known-fresh
        replicas instead of always hitting the primary, spreading query load
        over the replica set (reads only; writes always fan to all replicas).
    """

    def __init__(
        self,
        shards: Sequence[ShardBackend],
        *,
        router: ShardRouter | None = None,
        global_buckets: int = DEFAULT_GLOBAL_BUCKETS,
        value_unit: float = 1.0,
        max_workers: int | None = None,
        metrics: Any | None = None,
        replica_reads: bool = False,
    ) -> None:
        if not shards:
            raise ConfigurationError("the cluster coordinator needs at least one shard")
        if global_buckets < 1:
            raise ConfigurationError(f"global_buckets must be positive, got {global_buckets}")
        self._shards: dict[str, ShardBackend] = {}
        for shard in shards:
            if shard.shard_id in self._shards:
                raise ConfigurationError(f"duplicate shard id {shard.shard_id!r}")
            self._shards[shard.shard_id] = shard
        self._router = router if router is not None else ShardRouter(list(self._shards))
        for shard_id in self._router.shard_ids:
            if shard_id not in self._shards:
                raise ConfigurationError(f"router routes to unknown shard {shard_id!r}")
        self._global_buckets = int(global_buckets)
        self._value_unit = float(value_unit)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers if max_workers is not None else max(4, 2 * len(shards)),
            thread_name_prefix="repro-cluster",
        )
        self._closed = False
        self._close_lock = threading.Lock()
        # Read-replica mode: estimate reads rotate across fresh replicas.
        # itertools.count.__next__ is a single C call, so the rotation is
        # thread-safe without a lock of its own.
        self._replica_reads = bool(replica_reads)
        self._read_rotation = itertools.count()
        # Merged-histogram cache:
        # name -> (generation_sum, merged histogram, piece_states) where
        # piece_states maps each piece's primary shard id to (the snapshot's
        # own generation, the deserialised member histogram).  The retained
        # members make rebuilds incremental: only pieces whose probed
        # generation differs are re-fetched.
        self._merge_cache: dict[
            str, tuple[int, UnionHistogram, dict[str, tuple[int, Histogram]]]
        ] = {}
        self._merge_locks: dict[str, threading.Lock] = {}
        self._merge_guard = threading.Lock()
        # In-flight rebalances: name -> buffered (op, values) runs, plus a
        # count of applies currently running per attribute.  The condition's
        # lock guards both tables; rebalance registers a move and then waits
        # for the attribute's in-flight applies to drain before snapshotting,
        # so an apply that passed the move check always lands in the snapshot.
        self._moves: dict[str, list[tuple[str, list[float]]]] = {}
        self._inflight: dict[str, int] = {}
        self._moves_cv = threading.Condition()
        # Replicas that missed a write (the fan-out observed a failure whose
        # fate is unknown): reads avoid them until resync heals them.
        self._stale: set = set()
        self._stale_lock = threading.Lock()
        # Acknowledged-then-dropped buffered ops (failure-path compensation
        # could not re-apply them); surfaced by stats() so silent undercount
        # is at least visible to operators.
        self._dropped_buffered_ops = 0
        # Optional observability: per-shard fan-out latency plus the
        # replication health counters.  Metric updates are leaves (repro.obs
        # contract), recorded outside the coordinator's own locks.  Shard
        # backends that carry an HTTP client (RemoteShard) mirror their
        # connect-retry stats into the same registry.
        self.metrics = metrics
        self._m_fanout_seconds = None
        self._m_failovers = None
        self._m_stale_marks = None
        if metrics is not None:
            from ..obs.registry import LATENCY_BUCKETS_S

            self._m_fanout_seconds = metrics.distribution(
                "repro_cluster_fanout_seconds",
                "Latency of one fan-out leg, per shard",
                LATENCY_BUCKETS_S,
                labelnames=("shard",),
            )
            self._m_failovers = metrics.counter(
                "repro_cluster_failovers_total",
                "Read attempts that failed over to another replica",
            )
            self._m_stale_marks = metrics.counter(
                "repro_cluster_stale_marks_total",
                "Replicas marked stale after missing a fan-out write",
            )
            for shard in self._shards.values():
                bind = getattr(shard, "bind_metrics", None)
                if bind is not None:
                    bind(metrics)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def shard_ids(self) -> list[str]:
        return list(self._shards)

    def shard(self, shard_id: str) -> ShardBackend:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise ClusterError(
                f"unknown shard id {shard_id!r}; members: {list(self._shards)}"
            ) from None

    def _scatter_tolerant(
        self,
        shard_ids: Sequence[str],
        call,
        *,
        failure_types: tuple[type, ...] = (ShardUnavailableError,),
    ) -> tuple[dict[str, Any], dict[str, Exception]]:
        """Concurrent ``call(shard)`` per shard, partitioning the outcomes.

        Returns ``(results, errors)`` keyed by shard id: ``failure_types``
        exceptions land in ``errors`` (the caller decides what a tolerable
        failure means -- drop, listing, batch ingest and the replicated
        fan-out all differ), anything else propagates immediately.

        When every target is a :class:`~repro.cluster.transport.ProcessShard`
        and the per-shard call is one plain backend method, the scatter is
        **pipelined**: the calling thread writes every request frame on a
        persistent connection and multiplexes the replies, so no executor
        thread is occupied per shard per request.  Semantics (error
        partitioning, retry discipline, fan-out latency metrics) are
        identical; compound closures fall back to the executor path.
        """
        with maybe_span("fanout:scatter"):
            pipelined = try_pipelined_scatter(
                {shard_id: self.shard(shard_id) for shard_id in shard_ids}, call
            )
        if pipelined is not None:
            results: dict[str, Any] = {}
            errors: dict[str, Exception] = {}
            for shard_id, (ok, value, elapsed) in pipelined.items():
                if self._m_fanout_seconds is not None:
                    self._m_fanout_seconds.observe(elapsed, shard=shard_id)
                if ok:
                    results[shard_id] = value
                elif isinstance(value, failure_types):
                    errors[shard_id] = value
                else:
                    raise value
            return results, errors
        # The active trace is captured BEFORE the executor submits: the pool
        # threads have their own threading.local, so each leg re-activates
        # the request's trace and records its own span.
        trace = current_trace()
        futures = {
            shard_id: self._executor.submit(
                self._traced_leg(shard_id, call, trace), self.shard(shard_id)
            )
            for shard_id in shard_ids
        }
        results: dict[str, Any] = {}
        errors: dict[str, Exception] = {}
        for shard_id, future in futures.items():
            try:
                results[shard_id] = future.result()
            except failure_types as error:
                errors[shard_id] = error
        return results, errors

    def _traced_leg(self, shard_id: str, call, trace):
        """Wrap one fan-out leg with trace propagation and latency metrics."""

        def run(shard: ShardBackend) -> Any:
            start = time.perf_counter()
            try:
                with use_trace(trace), maybe_span(f"fanout:{shard_id}"):
                    return call(shard)
            finally:
                if self._m_fanout_seconds is not None:
                    self._m_fanout_seconds.observe(
                        time.perf_counter() - start, shard=shard_id
                    )

        return run

    # ------------------------------------------------------------------
    # replication plumbing
    # ------------------------------------------------------------------
    @property
    def replication_factor(self) -> int:
        return self._router.replication_factor

    def _mark_stale(self, name: str, shard_id: str) -> None:
        with self._stale_lock:
            self._stale.add((name, shard_id))
        if self._m_stale_marks is not None:
            self._m_stale_marks.inc()

    def _clear_stale(self, name: str, shard_id: str) -> None:
        with self._stale_lock:
            self._stale.discard((name, shard_id))

    def is_stale(self, name: str, shard_id: str) -> bool:
        """True when ``shard_id``'s replica of ``name`` missed a write."""
        with self._stale_lock:
            return (name, shard_id) in self._stale

    def stale_replicas(self) -> list[tuple[str, str]]:
        """The (attribute, shard) pairs currently marked stale, sorted."""
        with self._stale_lock:
            return sorted(self._stale)

    def _failover_order(
        self, name: str, replicas: Sequence[str], *, spread: bool = False
    ) -> list[str]:
        """Read preference: primary first, known-stale replicas demoted last.

        A stale replica is still tried as the last resort -- an estimate
        from a slightly-behind replica beats no estimate at all -- but only
        after every up-to-date candidate proved unreachable.

        With ``spread`` (read-replica mode) the fresh candidates are rotated
        round-robin instead of primary-first: every fresh replica applied
        every acknowledged write (a replica that missed one is marked stale
        and lands in the demoted tail), so any of them answers estimate
        reads identically and the rotation spreads query load evenly.
        """
        with self._stale_lock:
            fresh = [sid for sid in replicas if (name, sid) not in self._stale]
            stale = [sid for sid in replicas if (name, sid) in self._stale]
        if spread and len(fresh) > 1:
            offset = next(self._read_rotation) % len(fresh)
            fresh = fresh[offset:] + fresh[:offset]
        return fresh + stale

    def _call_with_failover(
        self, name: str, replicas: Sequence[str], call, *, spread: bool = False
    ):
        """Run ``call(shard)`` on the first live replica; returns (id, result).

        :class:`ShardUnavailableError` triggers failover.  An application
        error (bad query, unknown attribute) is normally the same on every
        replica and propagates immediately -- with one exception: an
        ``UnknownAttributeError`` from a replica *marked stale* is not an
        answer about the attribute's existence (the replica may simply have
        missed the create), so failover continues; if no fresh replica can
        answer, the unavailability -- the retry/heal signal -- is preferred
        over the misleading "unknown".
        """
        last_unavailable: ShardUnavailableError | None = None
        last_unknown: UnknownAttributeError | None = None
        for shard_id in self._failover_order(name, replicas, spread=spread):
            try:
                start = time.perf_counter()
                try:
                    with maybe_span(f"shard:{shard_id}"):
                        return shard_id, call(self.shard(shard_id))
                finally:
                    if self._m_fanout_seconds is not None:
                        self._m_fanout_seconds.observe(
                            time.perf_counter() - start, shard=shard_id
                        )
            except ShardUnavailableError as error:
                last_unavailable = error
                if self._m_failovers is not None:
                    self._m_failovers.inc()
            except UnknownAttributeError as error:
                if not self.is_stale(name, shard_id):
                    raise
                last_unknown = error
        if last_unavailable is not None:
            raise last_unavailable
        if last_unknown is not None:
            raise last_unknown
        raise ClusterError(  # pragma: no cover - empty replica set
            f"no replicas to serve attribute {name!r}"
        )

    def _fan_out_replicated(
        self,
        name: str,
        groups: Sequence[tuple[tuple[str, ...], Any]],
        *,
        failure_types: tuple[type, ...] = (ShardUnavailableError,),
    ) -> dict[str, Any]:
        """Run one ``call(shard)`` per replica of every group, concurrently.

        ``groups`` holds ``(replica_ids, call)`` pairs.  The shared
        replicated-mutation contract (writes, create, restore): per group,
        success needs at least one replica to apply; a fully-failed group
        raises its first error -- but only after EVERY other group's partial
        failures were marked, or a replica that silently missed this
        mutation would be treated as fresh forever.  A replica that fails
        (``failure_types``) while a sibling succeeds is marked stale for
        ``resync`` to heal and never retried: its fate is unknown, and a
        blind retry could double-apply.  Errors outside ``failure_types``
        (a duplicate create, a bad payload) are the same on every replica
        and propagate immediately.
        """
        call_by_shard = {
            shard_id: call for replicas, call in groups for shard_id in replicas
        }
        results, errors = self._scatter_tolerant(
            list(call_by_shard),
            lambda shard: call_by_shard[shard.shard_id](shard),
            failure_types=failure_types,
        )
        failed: list[str] = []
        fully_failed: Exception | None = None
        for replicas, _ in groups:
            if not any(sid in results for sid in replicas):
                # Nothing applied in this group -- its replicas still agree,
                # so there is nothing to mark; the mutation is lost and raises.
                if fully_failed is None:
                    fully_failed = errors[replicas[0]]
                continue
            for shard_id in replicas:
                if shard_id in errors:
                    self._mark_stale(name, shard_id)
                    failed.append(shard_id)
        if fully_failed is not None:
            raise fully_failed
        return {"results": results, "failed_replicas": sorted(failed)}

    def _first_result(self, applied: Mapping[str, Any], replicas: Sequence[str]):
        """The first replica's result in preference order (primary first)."""
        results = applied["results"]
        return results[next(sid for sid in replicas if sid in results)]

    def _apply_replicated(
        self,
        name: str,
        groups: Sequence[tuple[tuple[str, ...], list[float], list[float]]],
    ) -> dict[str, Any]:
        """Fan one attribute's write out to every replica of every group.

        ``groups`` holds ``(replica_ids, insert, delete)`` triples (one
        group for an unpartitioned attribute, one per piece otherwise).
        ``UnknownAttributeError`` counts as a replica failure: a replica
        that was down during ``create`` does not know the attribute, and
        marking it stale routes it to ``resync`` (whose restore re-creates
        it) instead of poisoning every subsequent write.  When *no* replica
        knows the attribute, the group fully fails and the error still
        propagates as before.
        """
        return self._fan_out_replicated(
            name,
            [
                (
                    replicas,
                    lambda shard, i=insert, d=delete: shard.ingest(
                        name, insert=i, delete=d
                    ),
                )
                for replicas, insert, delete in groups
            ],
            failure_types=(ShardUnavailableError, UnknownAttributeError),
        )

    def _write_groups(
        self, name: str, insert: list[float], delete: list[float]
    ) -> list[tuple[tuple[str, ...], list[float], list[float]]]:
        """Split a write into replica groups (one, or one per touched piece)."""
        partition = self._router.partition_for(name)
        if partition is None:
            return [(self._router.replicas_for(name), insert, delete)]
        insert_groups = partition.split(insert)
        delete_groups = partition.split(delete)
        piece_replicas = self._router.partition_replicas(name)
        return [
            (
                piece_replicas[piece_id],
                insert_groups.get(piece_id, []),
                delete_groups.get(piece_id, []),
            )
            for piece_id in sorted(set(insert_groups) | set(delete_groups))
        ]

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent; pending calls finish first)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> ClusterCoordinator:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
        partition_boundaries: Sequence[float] | None = None,
        partition_shards: Sequence[str] | None = None,
    ) -> dict[str, Any]:
        """Create an attribute cluster-wide.

        Without ``partition_boundaries`` the attribute lands on its routed
        home shard.  With them, the attribute is registered as range-
        partitioned and one piece histogram (same configuration) is created
        on every piece shard; ``partition_shards`` overrides the default
        round-robin piece placement.
        """
        def create_on(shard: ShardBackend) -> dict[str, Any]:
            return shard.create(
                name,
                kind,
                memory_kb=memory_kb,
                value_unit=value_unit,
                disk_factor=disk_factor,
                seed=seed,
                exist_ok=exist_ok,
            )

        if partition_boundaries is None:
            if partition_shards is not None:
                raise ConfigurationError("partition_shards requires partition_boundaries")
            replicas = self._router.replicas_for(name)
            # The replicated-mutation contract (see _fan_out_replicated): one
            # replica creating suffices; an unreachable replica is marked
            # stale so resync re-seeds it -- its missing attribute is then a
            # recorded gap, not a silent one that poisons later writes.
            created = self._fan_out_replicated(name, [(replicas, create_on)])
            result = {
                "name": name,
                "partitioned": False,
                "shard": replicas[0],
                "stats": self._first_result(created, replicas),
            }
            if len(replicas) > 1:
                result["replicas"] = list(replicas)
            if created["failed_replicas"]:
                result["failed_replicas"] = created["failed_replicas"]
            return result

        partition = self._router.partition(name, partition_boundaries, partition_shards)
        try:
            piece_replicas = self._router.partition_replicas(name)
            created = self._fan_out_replicated(
                name, [(ids, create_on) for ids in piece_replicas.values()]
            )
            pieces = {
                piece_id: self._first_result(created, ids)
                for piece_id, ids in piece_replicas.items()
            }
        except Exception:
            # Creation is not atomic across shards; withdrawing the partition
            # keeps routing consistent with whatever was actually created
            # (retry with exist_ok=True after fixing the failing shard).
            self._router.unpartition(name)
            raise
        result = {
            "name": name,
            "partitioned": True,
            "partition": partition.to_dict(),
            "pieces": pieces,
        }
        if self._router.replication_factor > 1:
            result["replicas"] = {
                piece_id: list(ids) for piece_id, ids in piece_replicas.items()
            }
        if created["failed_replicas"]:
            result["failed_replicas"] = created["failed_replicas"]
        return result

    def drop(self, name: str) -> dict[str, Any]:
        """Drop an attribute from every shard holding state for it.

        Replicated-mutation contract: dropping from at least one replica
        that held the attribute succeeds; a replica that already lacks it
        (it missed the create) counts as dropped.  Unreachable replicas are
        reported as ``unreached`` -- their zombie copy resurfaces in
        ``names()`` when they revive, and *retrying the drop then works*
        (the already-dropped replicas count as dropped).  Only when every
        replica lacked the attribute does ``UnknownAttributeError``
        propagate, preserving the single-node API.
        """
        shard_ids = sorted(
            {sid for replicas in self._router.replica_sets_for(name) for sid in replicas}
        )

        def drop_on(shard: ShardBackend) -> str:
            try:
                shard.drop(name)
            except UnknownAttributeError:
                return "already-absent"
            return "dropped"

        outcomes, errors = self._scatter_tolerant(shard_ids, drop_on)
        unreached = sorted(errors)
        dropped = [sid for sid in shard_ids if outcomes.get(sid) == "dropped"]
        if not dropped:
            if unreached:
                raise errors[unreached[0]]
            raise UnknownAttributeError(name)
        if not unreached:
            # Routing (pin / partition) is withdrawn only on a COMPLETE
            # drop: with an unreached replica the placement must survive,
            # or the retried drop would route via the ring and never reach
            # the revived zombie copy of a pinned/partitioned attribute.
            self._router.unpartition(name)
            self._router.unassign(name)
            with self._merge_guard:
                self._merge_cache.pop(name, None)
                self._merge_locks.pop(name, None)
            with self._stale_lock:
                self._stale = {entry for entry in self._stale if entry[0] != name}
        result = {"dropped": name, "shards": sorted(dropped)}
        if unreached:
            result["unreached"] = sorted(unreached)
        return result

    def names(self) -> list[str]:
        """Every attribute name in the cluster (partitioned ones once).

        Tolerates unreachable shards -- with replication every attribute is
        visible on a surviving replica, and an all-shards-down cluster still
        raises.  The alternative (failing the listing because one member is
        restarting) would take ``/health`` and ``resync`` down exactly when
        they are needed.
        """
        gathered, errors = self._scatter_tolerant(
            list(self._shards), lambda shard: shard.names()
        )
        if not gathered and errors:
            raise next(iter(errors.values()))
        return sorted({name for names in gathered.values() for name in names})

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def ingest(
        self, name: str, insert: Sequence[float] = (), delete: Sequence[float] = ()
    ) -> dict[str, Any]:
        """Apply a write batch, scattering partitioned attributes per value."""
        insert = list(insert)
        delete = list(delete)
        if not self._begin_apply(name, insert, delete):
            return {
                "buffered_for_move": True,
                "inserted": len(insert),
                "deleted": len(delete),
            }
        try:
            groups = self._write_groups(name, insert, delete)
            applied = self._apply_replicated(name, groups)
            response = {
                "inserted": len(insert),
                "deleted": len(delete),
                "per_shard": {
                    shard_id: result.get("inserted", 0)
                    for shard_id, result in applied["results"].items()
                },
            }
            if self._router.is_partitioned(name):
                response["partitioned"] = True
            if applied["failed_replicas"]:
                response["failed_replicas"] = applied["failed_replicas"]
            return response
        finally:
            self._end_apply(name)

    def ingest_batch(self, items: Mapping[str, Any]) -> dict[str, Any]:
        """Fan a multi-attribute write batch out: one concurrent stream per shard.

        ``items`` maps attribute name to either a plain sequence of values
        (an insert run, the historical shape) or a mapping with optional
        ``insert`` / ``delete`` value lists.  Every attribute's values are
        grouped by owning shard (splitting partitioned attributes per value),
        then each shard applies its group in one concurrently-submitted run;
        the shard applies an attribute's inserts before its deletes, and the
        delete side rides the store's vectorised ``delete_many`` path.
        """
        per_shard: dict[str, dict[str, tuple[list[float], list[float]]]] = {}
        # One entry per replica group: (name, replica ids, insert, delete);
        # success needs >= 1 live replica per group.
        group_index: list[tuple[str, tuple[str, ...], list[float], list[float]]] = []
        applying: list[str] = []
        buffered = 0
        buffered_deletes = 0
        try:
            for name, values in items.items():
                if isinstance(values, Mapping):
                    insert = list(values.get("insert", ()))
                    delete = list(values.get("delete", ()))
                else:
                    insert = list(values)
                    delete = []
                if not insert and not delete:
                    continue
                if not self._begin_apply(name, insert, delete):
                    buffered += len(insert)
                    buffered_deletes += len(delete)
                    continue
                applying.append(name)
                for replicas, group_insert, group_delete in self._write_groups(
                    name, insert, delete
                ):
                    group_index.append((name, replicas, group_insert, group_delete))
                    for shard_id in replicas:
                        shard_items = per_shard.setdefault(shard_id, {})
                        shard_items[name] = (group_insert, group_delete)

            def apply_group(shard: ShardBackend) -> dict[str, int]:
                applied = {"inserted": 0, "deleted": 0}
                for name, (shard_insert, shard_delete) in per_shard[
                    shard.shard_id
                ].items():
                    result = shard.ingest(name, insert=shard_insert, delete=shard_delete)
                    applied["inserted"] += result.get("inserted", len(shard_insert))
                    applied["deleted"] += result.get("deleted", len(shard_delete))
                return applied

            # A failing shard's whole stream is suspect: some attributes in
            # its group may have applied before the failure, so every one of
            # them is conservatively marked stale below (resync heals by
            # full-state replace).
            gathered, shard_errors = self._scatter_tolerant(
                sorted(per_shard),
                apply_group,
                failure_types=(ShardUnavailableError, UnknownAttributeError),
            )
            failed_replicas: list[str] = []
            # As in _fan_out_replicated: finish the stale-marking sweep over
            # every group before raising for a fully-failed one.
            fully_failed: Exception | None = None
            for name, replicas, _, _ in group_index:
                alive = [sid for sid in replicas if sid not in shard_errors]
                if not alive:
                    if fully_failed is None:
                        fully_failed = shard_errors[replicas[0]]
                    continue
                for shard_id in replicas:
                    if shard_id in shard_errors:
                        self._mark_stale(name, shard_id)
                        failed_replicas.append(f"{name}@{shard_id}")
            if fully_failed is not None:
                raise fully_failed
        finally:
            for name in applying:
                self._end_apply(name)
        # Logical counts come from the submitted values (each group that
        # reached here has >= 1 replica apply); ``per_shard`` keeps its
        # historical meaning of values physically placed per shard -- with
        # replication a value lands on every replica, so the per-shard sum
        # exceeds ``inserted`` by design.
        logical_inserted = sum(len(insert) for _, _, insert, _ in group_index)
        logical_deleted = sum(len(delete) for _, _, _, delete in group_index)
        response = {
            "inserted": logical_inserted + buffered,
            "deleted": logical_deleted + buffered_deletes,
            "buffered_for_move": buffered + buffered_deletes,
            "per_shard": {
                shard_id: result["inserted"] for shard_id, result in gathered.items()
            },
            "per_shard_deleted": {
                shard_id: result["deleted"] for shard_id, result in gathered.items()
            },
        }
        if failed_replicas:
            response["failed_replicas"] = sorted(failed_replicas)
        return response

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """Evaluate a consistent batch of estimate queries.

        Unpartitioned attributes delegate to the home shard's batched query
        (served there from the published snapshot -- no torn estimates, no
        lock), failing over to the next live replica when the home shard is
        unreachable; with ``replica_reads`` the read rotates across the
        fresh replicas instead of always landing on the primary.
        Partitioned attributes are served from the merged global histogram,
        an immutable snapshot, so the whole batch is trivially consistent;
        the returned ``generation`` is the piece generation sum the merge
        was keyed on.
        """
        if not self._router.is_partitioned(name):
            shard_id, result = self._call_with_failover(
                name,
                self._router.replicas_for(name),
                lambda shard: shard.query(name, queries),
                spread=self._replica_reads,
            )
            result["shard"] = shard_id
            return result
        generation_sum, merged = self._merged_entry(name)
        return {
            "generation": generation_sum,
            "results": evaluate_queries(merged, queries),
            "merged": True,
            "buckets": merged.bucket_count,
        }

    def estimate_range(self, name: str, low: float, high: float) -> float:
        """Estimated number of values of ``name`` in the closed range [low, high]."""
        return float(self.query(name, [{"op": "range", "low": low, "high": high}])["results"][0])

    def estimate_equal(self, name: str, value: float) -> float:
        """Estimated number of values of ``name`` equal to ``value``."""
        return float(self.query(name, [{"op": "equal", "value": value}])["results"][0])

    def total_count(self, name: str) -> float:
        """Total number of values represented cluster-wide for ``name``."""
        return float(self.query(name, [{"op": "total"}])["results"][0])

    def cdf(self, name: str, xs: Sequence[float]) -> list[float]:
        """Approximate CDF of ``name`` at each point of ``xs``."""
        return [float(v) for v in self.query(name, [{"op": "cdf", "xs": list(xs)}])["results"][0]]

    # ------------------------------------------------------------------
    # merged global histograms
    # ------------------------------------------------------------------
    def merged_histogram(self, name: str) -> Histogram:
        """The merged global histogram of a partitioned attribute (cached)."""
        return self._merged_entry(name)[1]

    def _partition_of(self, name: str) -> RangePartition:
        partition = self._router.partition_for(name)
        if partition is None:
            raise ClusterError(f"attribute {name!r} is not range-partitioned")
        return partition

    def _gather_pieces(
        self,
        name: str,
        piece_replicas: Mapping[str, tuple[str, ...]],
        call,
        *,
        spread: bool = False,
    ) -> dict[str, Any]:
        """Run ``call`` once per piece, each with replica failover, gathered
        concurrently and keyed by the piece's primary shard id."""
        # As in _scatter_tolerant: capture the trace before crossing into
        # the pool so each piece's failover legs record spans on it.
        trace = current_trace()

        def run(replicas: tuple[str, ...]) -> tuple[str, Any]:
            with use_trace(trace):
                return self._call_with_failover(name, replicas, call, spread=spread)

        futures = {
            piece_id: self._executor.submit(run, replicas)
            for piece_id, replicas in piece_replicas.items()
        }
        return {
            piece_id: future.result()[1] for piece_id, future in futures.items()
        }

    def _piece_generations(
        self, name: str, piece_replicas: Mapping[str, tuple[str, ...]]
    ) -> dict[str, int]:
        """Probe every piece's generation counter (the merge-cache key).

        The per-shard probe is a lock-free published-reference read, and in
        read-replica mode the probes rotate across fresh replicas like any
        other estimate read.
        """
        return {
            piece_id: int(value)
            for piece_id, value in self._gather_pieces(
                name,
                piece_replicas,
                lambda shard: shard.generation(name),
                spread=self._replica_reads,
            ).items()
        }

    def _merge_lock(self, name: str) -> threading.Lock:
        with self._merge_guard:
            lock = self._merge_locks.get(name)
            if lock is None:
                lock = self._merge_locks[name] = threading.Lock()
            return lock

    def _merged_entry(self, name: str) -> tuple[int, UnionHistogram]:
        """The cached merged histogram, refreshed incrementally after writes.

        The hit check compares the cached key against the sum of the piece
        shards' generation counters, read **before** the snapshots: a write
        landing between the generation read and a snapshot makes the cached
        entry *fresher* than its key claims, so the very next query
        observes a larger sum and rebuilds -- the safe direction.  The key
        a rebuilt entry is cached under comes from **the snapshots
        themselves** (each snapshot payload carries its replica's
        generation): under replica failover the generation probe and the
        snapshot fetch may be served by *different* replicas, and keying a
        stale follower's snapshot under the fresh primary's generation
        would pin an under-counting merge until the next write.  Keyed on
        its own snapshots, the entry stops matching as soon as the fresher
        replica answers the probe again.

        A refresh is *incremental*: the cache retains each piece's
        deserialised member histogram together with the generation its
        snapshot reported, and only pieces whose freshly probed generation
        differs from that retained per-piece generation are re-fetched.
        The retained members are immutable inputs (superimpose only reads
        ``buckets()``), and an unchanged generation means an identical
        snapshot, so the incremental superimpose + reduce is bit-identical
        to a from-scratch rebuild over full snapshots -- the probe-before-
        snapshot direction holds per piece exactly as in the all-piece case.
        """
        partition = self._partition_of(name)
        piece_ids = partition.piece_shard_ids
        piece_replicas = self._router.partition_replicas(name)
        generations = self._piece_generations(name, piece_replicas)
        generation_sum = sum(generations.values())
        cached = self._merge_cache.get(name)
        if cached is not None and cached[0] == generation_sum:
            return cached[0], cached[1]
        with self._merge_lock(name):
            cached = self._merge_cache.get(name)
            if cached is not None and cached[0] == generation_sum:
                return cached[0], cached[1]
            retained = cached[2] if cached is not None else {}
            moved = {
                piece_id
                for piece_id in piece_ids
                if piece_id not in retained
                or retained[piece_id][0] != generations[piece_id]
            }
            snapshots = (
                self._gather_pieces(
                    name,
                    {piece_id: piece_replicas[piece_id] for piece_id in moved},
                    lambda shard: shard.snapshot(name),
                )
                if moved
                else {}
            )
            piece_states: dict[str, tuple[int, Histogram]] = {}
            for piece_id in piece_ids:
                if piece_id in snapshots:
                    snapshot = snapshots[piece_id]
                    piece_states[piece_id] = (
                        int(snapshot.get("generation", 0)),
                        histogram_from_dict(dict(snapshot["histogram"])),
                    )
                else:
                    piece_states[piece_id] = retained[piece_id]
            merged = reduce_segments(
                superimpose([piece_states[piece_id][1] for piece_id in piece_ids]),
                self._global_buckets,
                value_unit=self._value_unit,
            )
            snapshot_generation_sum = sum(
                state[0] for state in piece_states.values()
            )
            entry = (snapshot_generation_sum, merged, piece_states)
            # Insert under the guard (stats() iterates the cache under it),
            # and never resurrect an entry a concurrent drop() just removed.
            with self._merge_guard:
                if self._router.partition_for(name) is not None:
                    self._merge_cache[name] = entry
            return entry[0], entry[1]

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, name: str) -> dict[str, Any]:
        """Full serialised state of an unpartitioned attribute.

        Served by the home shard, failing over to the next live replica.
        """
        if self._router.is_partitioned(name):
            raise ClusterError(
                f"attribute {name!r} is range-partitioned; snapshot its pieces "
                "per shard (each piece shard serves /attributes/<name>/snapshot)"
            )
        return self._call_with_failover(
            name, self._router.replicas_for(name), lambda shard: shard.snapshot(name)
        )[1]

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> dict[str, Any]:
        """Restore an unpartitioned attribute onto every replica of its home.

        Follows the replicated-write contract: success needs one replica to
        restore; a replica that fails is marked stale (it now diverges from
        the restored state) for ``resync`` to heal, never silently trusted.
        """
        if self._router.is_partitioned(name):
            raise ClusterError(
                f"attribute {name!r} is range-partitioned; restore its pieces per shard"
            )
        replicas = self._router.replicas_for(name)
        restored = self._fan_out_replicated(
            name, [(replicas, lambda shard: shard.restore(name, snapshot))]
        )
        return self._first_result(restored, replicas)

    # ------------------------------------------------------------------
    # rebalance / drain
    # ------------------------------------------------------------------
    def _begin_apply(self, name: str, insert: list[float], delete: list[float]) -> bool:
        """Atomically either buffer the ops (attribute moving -> False) or
        register an in-flight apply (True; pair with :meth:`_end_apply`).

        The check-and-increment is one critical section: a rebalance that
        registers afterwards will wait for this apply to finish before it
        snapshots, so the write is guaranteed to be inside the snapshot.
        """
        with self._moves_cv:
            buffer = self._moves.get(name)
            if buffer is not None:
                if insert:
                    buffer.append(("insert", list(insert)))
                if delete:
                    buffer.append(("delete", list(delete)))
                return False
            self._inflight[name] = self._inflight.get(name, 0) + 1
            return True

    def _end_apply(self, name: str) -> None:
        with self._moves_cv:
            remaining = self._inflight.get(name, 1) - 1
            if remaining > 0:
                self._inflight[name] = remaining
            else:
                self._inflight.pop(name, None)
                self._moves_cv.notify_all()

    def _replay_buffer_best_effort(
        self, name: str, buffered: list[tuple[str, list[float]]]
    ) -> int:
        """Failure-path compensation: replay formerly-buffered ops through
        the public write path, attempting EVERY op -- one op whose replica
        group is momentarily unreachable must not discard the acknowledged
        ops queued behind it.  An op that still fails is dropped (bounded
        undercount beats double-applying an op whose fate is unknown -- the
        ingest pipeline's rule); the count of dropped ops is returned.
        """
        dropped = 0
        for op, values in buffered:
            try:
                if op == "insert":
                    self.ingest(name, insert=values)
                else:
                    self.ingest(name, delete=values)
            except Exception:
                dropped += 1
        if dropped:
            with self._stale_lock:
                self._dropped_buffered_ops += dropped
        return dropped

    def _replay(self, shard: ShardBackend, name: str, runs: list[tuple[str, list[float]]]) -> int:
        applied = 0
        for op, values in runs:
            if op == "insert":
                shard.ingest(name, insert=values)
            else:
                shard.ingest(name, delete=values)
            applied += len(values)
        return applied

    def rebalance(self, name: str, target_shard_id: str) -> dict[str, Any]:
        """Move an unpartitioned attribute to ``target_shard_id``.

        Protocol (no write is ever lost):

        1. register the move -- from here, cluster writes for ``name`` are
           buffered at the coordinator instead of applied -- then wait for
           the in-flight applies that passed the move check earlier to
           drain, so every applied write is visible to the snapshot;
        2. snapshot on the source, restore on the target;
        3. replay buffered writes onto the target, repeating until a drain
           pass finds the buffer empty *while holding the move lock*, at
           which point the routing override flips to the target and the move
           is unregistered in the same critical section -- a concurrent
           writer either buffered before the flip (replayed) or routes to
           the target after it;
        4. drop the attribute from the source.

        On failure the buffered writes are replayed onto the source (still
        the routed home) before the error propagates.
        """
        target = self.shard(target_shard_id)
        if self._router.replication_factor > 1:
            raise ClusterError(
                "rebalance requires replication_factor=1: a replicated "
                "attribute's placement is its whole replica set -- heal or "
                "reshape it with resync instead"
            )
        if self._router.is_partitioned(name):
            raise ClusterError(
                f"attribute {name!r} is range-partitioned; move pieces by re-partitioning"
            )
        source_id = self._router.shard_for(name)
        if source_id == target_shard_id:
            return {"attribute": name, "from": source_id, "to": target_shard_id, "moved": False}
        source = self.shard(source_id)
        with self._moves_cv:
            if name in self._moves:
                raise ClusterError(f"attribute {name!r} is already being moved")
            self._moves[name] = []
            # Fence: applies that slipped past the move check must reach the
            # source before the snapshot, or their values would be neither in
            # the copy nor in the buffer.
            while self._inflight.get(name, 0) > 0:
                self._moves_cv.wait()
        replayed = 0
        try:
            snapshot = source.snapshot(name)
            target.restore(name, snapshot)
            while True:
                with self._moves_cv:
                    buffered = self._moves[name]
                    if not buffered:
                        # Atomic flip: override + unregister under the same
                        # lock a writer needs to buffer.
                        self._router.assign(name, target_shard_id)
                        del self._moves[name]
                        break
                    self._moves[name] = []
                replayed += self._replay(target, name, buffered)
        except Exception:
            with self._moves_cv:
                buffered = self._moves.pop(name, [])
            # The source is still the routed home; put buffered writes back
            # through the public path so they fence against any later move.
            self._replay_buffer_best_effort(name, buffered)
            raise
        source.drop(name)
        return {
            "attribute": name,
            "from": source_id,
            "to": target_shard_id,
            "moved": True,
            "replayed_buffered_values": replayed,
        }

    def drain(self, shard_id: str) -> dict[str, Any]:
        """Move every attribute homed on ``shard_id`` to the other members.

        Range-partitioned attributes keep their piece on the shard (moving a
        piece is a re-partitioning decision, not a drain) and are reported as
        skipped.
        """
        source = self.shard(shard_id)
        if self._router.replication_factor > 1:
            raise ClusterError(
                "drain requires replication_factor=1; a replicated cluster "
                "heals an emptied-and-recovered shard with resync"
            )
        if len(self._shards) < 2:
            raise ClusterError("cannot drain the only shard in the cluster")
        moved: dict[str, str] = {}
        skipped: list[str] = []
        for name in source.names():
            if self._router.is_partitioned(name):
                skipped.append(name)
                continue
            if self._router.shard_for(name) != shard_id:
                continue  # a stale replica; the routed home is elsewhere
            target_id = self._router.ring_shard_for(name, exclude=(shard_id,))
            self.rebalance(name, target_id)
            moved[name] = target_id
        return {"shard": shard_id, "moved": moved, "skipped_partitioned": sorted(skipped)}

    # ------------------------------------------------------------------
    # resync (replica healing)
    # ------------------------------------------------------------------
    def _resync_attribute(
        self, name: str, replicas: tuple[str, ...], target_id: str
    ) -> str:
        """Re-seed ``target_id``'s replica of one attribute (or piece).

        Snapshot/restore is a *full-state replace*: whatever subset of
        writes the stale replica saw, restoring a live replica's snapshot
        over it can neither lose nor double-apply anything.  Writes racing
        the copy are fenced exactly like a rebalance: the attribute is
        registered as moving (cluster writes buffer at the coordinator),
        in-flight applies drain before the snapshot, and the buffer is
        replayed onto **all** replicas before the move is unregistered, so
        every buffered write lands exactly once everywhere.
        """
        sources = tuple(sid for sid in replicas if sid != target_id)
        assert sources, "resync needs a second replica to copy from"
        with self._moves_cv:
            if name in self._moves:
                raise ClusterError(f"attribute {name!r} is already being moved")
            self._moves[name] = []
            while self._inflight.get(name, 0) > 0:
                self._moves_cv.wait()
        try:
            source_id, snapshot = self._call_with_failover(
                name, sources, lambda shard: shard.snapshot(name)
            )
            self.shard(target_id).restore(name, snapshot)
            # Stale bookkeeping NOW, not after the replay: the restore made
            # the target exactly as fresh as its source (buffered ops are on
            # no replica yet), and a replay failure below may legitimately
            # re-mark it -- a mark that must survive this resync.  When the
            # failover had to fall back to a *stale* source (every fresh
            # sibling unreachable), the target inherits that staleness: a
            # clear here would advertise a copy that may miss acknowledged
            # writes as fresh, and a later resync could then spread it over
            # the one replica that still has them.
            if self.is_stale(name, source_id):
                self._mark_stale(name, target_id)
            else:
                self._clear_stale(name, target_id)
            while True:
                with self._moves_cv:
                    buffered = self._moves[name]
                    if not buffered:
                        del self._moves[name]
                        break
                    self._moves[name] = []
                for index, (op, values) in enumerate(buffered):
                    try:
                        groups = self._write_groups(
                            name,
                            values if op == "insert" else [],
                            values if op == "delete" else [],
                        )
                        self._apply_replicated(name, groups)
                    except Exception:
                        # Push the known-unapplied tail back into the move
                        # buffer so the outer handler replays it -- these
                        # ops were already acknowledged to their writers.
                        # The failing op itself is dropped: its progress is
                        # unknown (some piece groups may have applied), and
                        # a bounded undercount beats double-applying -- the
                        # same rule the ingest pipeline follows.  The drop
                        # is counted so stats() surfaces it.
                        with self._moves_cv:
                            self._moves[name] = (
                                buffered[index + 1 :] + self._moves.get(name, [])
                            )
                        with self._stale_lock:
                            self._dropped_buffered_ops += 1
                        raise
        except Exception:
            with self._moves_cv:
                buffered = self._moves.pop(name, [])
            # Nothing routed away: replay the buffer through the public path
            # so it fences against any later move/resync.
            self._replay_buffer_best_effort(name, buffered)
            raise
        return source_id

    def resync(self, shard_id: str) -> dict[str, Any]:
        """Heal a recovered shard: re-seed every replica it should hold.

        For every attribute (and partitioned piece) whose replica set
        contains ``shard_id``, the freshest reachable sibling replica is
        snapshotted and restored onto the shard, and the (attribute, shard)
        stale mark is cleared.  Attributes whose *only* replica is this
        shard have no surviving copy to heal from and are reported as
        ``unrecoverable`` (their data is whatever the shard itself still
        holds -- e.g. what its own WAL recovered).
        """
        self.shard(shard_id)  # membership check
        resynced: dict[str, str] = {}
        unrecoverable: list[str] = []
        for name in self.names():
            for replicas in self._router.replica_sets_for(name):
                if shard_id not in replicas:
                    continue
                if len(replicas) < 2:
                    unrecoverable.append(name)
                    continue
                resynced[name] = self._resync_attribute(name, replicas, shard_id)
        return {
            "shard": shard_id,
            "resynced": resynced,
            "unrecoverable": sorted(unrecoverable),
        }

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def attribute_stats(self, name: str) -> dict[str, Any]:
        """Cluster-level stats of one attribute (per piece when partitioned)."""
        partition = self._router.partition_for(name)
        if partition is None:
            replicas = self._router.replicas_for(name)
            shard_id, stats = self._call_with_failover(
                name, replicas, lambda shard: shard.stats(name)
            )
            result = {
                "name": name,
                "partitioned": False,
                "shard": shard_id,
                "stats": stats,
            }
            if len(replicas) > 1:
                result["replicas"] = list(replicas)
            return result
        piece_replicas = self._router.partition_replicas(name)
        pieces = self._gather_pieces(
            name, piece_replicas, lambda shard: shard.stats(name)
        )
        cached = self._merge_cache.get(name)
        result = {
            "name": name,
            "partitioned": True,
            "partition": partition.to_dict(),
            "pieces": pieces,
            "merged_generation_sum": None if cached is None else cached[0],
            "merged_buckets": None if cached is None else cached[1].bucket_count,
        }
        if self._router.replication_factor > 1:
            result["replicas"] = {
                piece_id: list(ids) for piece_id, ids in piece_replicas.items()
            }
        return result

    def stats(self) -> dict[str, Any]:
        """Cluster-wide stats: per-shard attribute tables plus placement.

        An unreachable shard is reported (``status: unavailable``) rather
        than failing the whole listing -- operators need exactly this view
        while a member is down.
        """

        gathered, errors = self._scatter_tolerant(
            list(self._shards),
            lambda shard: {"health": shard.health(), "attributes": shard.stats_all()},
        )
        for shard_id, error in errors.items():
            gathered[shard_id] = {
                "health": {"status": "unavailable", "error": str(error)},
                "attributes": [],
            }
        with self._merge_guard:
            merge_cache = {
                name: {"generation_sum": entry[0], "buckets": entry[1].bucket_count}
                for name, entry in self._merge_cache.items()
            }
        return {
            "shards": [
                {"shard_id": shard_id, **gathered[shard_id]} for shard_id in self._shards
            ],
            "placement": self._router.placement(),
            "merge_cache": merge_cache,
            "stale_replicas": [list(entry) for entry in self.stale_replicas()],
            "dropped_buffered_ops": self._dropped_buffered_ops,
            "replica_reads": self._replica_reads,
        }
