"""Scatter-gather coordinator over the cluster's backing shards.

The :class:`ClusterCoordinator` is the single entry point a cluster client
talks to.  It owns a :class:`~repro.cluster.router.ShardRouter` (placement)
and a set of :class:`~repro.cluster.protocol.ShardBackend` members, and it
implements the three cluster-level behaviours no single shard can provide:

**Scatter-gather ingest.**  Writes for an unpartitioned attribute go to its
home shard; writes for a range-partitioned attribute are split per value
(one ``searchsorted`` pass) and fanned out to the piece shards concurrently
through a thread pool.  :meth:`ingest_batch` groups a whole multi-attribute
batch by shard first, so each shard receives exactly one concurrent stream.
Per-shard application is independent: a failing piece never rolls back the
others (the same partial-apply semantics as the service layer; the error
names the failing shard).

**Merged global estimates.**  Queries against a partitioned attribute cannot
be answered by any one shard.  The coordinator rebuilds the paper's Section 8
machinery: it snapshots every piece, superimposes the piece histograms
(:func:`~repro.distributed.union.superimpose` -- lossless) and reduces the
union back to the configured bucket budget
(:func:`~repro.distributed.union.reduce_segments`).  The merged histogram is
cached under the *sum of the piece shards' generation counters*: generations
are read **before** the snapshots, so the cache key can only under-state the
data's freshness -- a write racing the rebuild bumps the sum and forces the
next query to rebuild, never the reverse (a stale histogram served under a
fresh key).  At rest, the cached merge is bit-identical to a from-scratch
superimpose + reduce (the property suite asserts this).

**Rebalance / drain.**  :meth:`rebalance` moves an attribute between shards
via snapshot/restore without losing writes: writes arriving during the copy
are buffered at the coordinator, replayed onto the target, and the routing
override flips atomically with the final drain, so every buffered operation
lands exactly once.  :meth:`drain` empties a shard by rebalancing every
attribute homed there onto the surviving members (ring walk with the drained
shard excluded).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.base import Histogram
from ..distributed.union import UnionHistogram, reduce_segments, superimpose
from ..exceptions import ClusterError, ConfigurationError
from ..persistence import histogram_from_dict
from ..service.store import evaluate_queries
from .protocol import ShardBackend
from .router import RangePartition, ShardRouter

__all__ = ["ClusterCoordinator", "DEFAULT_GLOBAL_BUCKETS"]

#: Default bucket budget of merged global histograms (the reduce target).
DEFAULT_GLOBAL_BUCKETS = 64


class ClusterCoordinator:
    """Routes, fans out and merges across the cluster's shards.

    Parameters
    ----------
    shards:
        The backing members; their ``shard_id``s must be unique.
    router:
        Placement table; built from the shard ids when omitted.
    global_buckets:
        Bucket budget merged global histograms are reduced to.
    value_unit:
        Domain granularity forwarded to the reduction metric.
    max_workers:
        Fan-out thread-pool size (default: two per shard, at least four).
    """

    def __init__(
        self,
        shards: Sequence[ShardBackend],
        *,
        router: Optional[ShardRouter] = None,
        global_buckets: int = DEFAULT_GLOBAL_BUCKETS,
        value_unit: float = 1.0,
        max_workers: Optional[int] = None,
    ) -> None:
        if not shards:
            raise ConfigurationError("the cluster coordinator needs at least one shard")
        if global_buckets < 1:
            raise ConfigurationError(f"global_buckets must be positive, got {global_buckets}")
        self._shards: Dict[str, ShardBackend] = {}
        for shard in shards:
            if shard.shard_id in self._shards:
                raise ConfigurationError(f"duplicate shard id {shard.shard_id!r}")
            self._shards[shard.shard_id] = shard
        self._router = router if router is not None else ShardRouter(list(self._shards))
        for shard_id in self._router.shard_ids:
            if shard_id not in self._shards:
                raise ConfigurationError(f"router routes to unknown shard {shard_id!r}")
        self._global_buckets = int(global_buckets)
        self._value_unit = float(value_unit)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers if max_workers is not None else max(4, 2 * len(shards)),
            thread_name_prefix="repro-cluster",
        )
        # Merged-histogram cache: name -> (generation_sum, merged histogram).
        self._merge_cache: Dict[str, Tuple[int, UnionHistogram]] = {}
        self._merge_locks: Dict[str, threading.Lock] = {}
        self._merge_guard = threading.Lock()
        # In-flight rebalances: name -> buffered (op, values) runs, plus a
        # count of applies currently running per attribute.  The condition's
        # lock guards both tables; rebalance registers a move and then waits
        # for the attribute's in-flight applies to drain before snapshotting,
        # so an apply that passed the move check always lands in the snapshot.
        self._moves: Dict[str, List[Tuple[str, List[float]]]] = {}
        self._inflight: Dict[str, int] = {}
        self._moves_cv = threading.Condition()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def shard_ids(self) -> List[str]:
        return list(self._shards)

    def shard(self, shard_id: str) -> ShardBackend:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise ClusterError(
                f"unknown shard id {shard_id!r}; members: {list(self._shards)}"
            ) from None

    def _scatter(self, shard_ids: Sequence[str], call) -> Dict[str, Any]:
        """Run ``call(shard)`` concurrently on each shard; gather by id.

        The first failure propagates (other calls still complete); the raised
        error identifies the shard through ``ShardUnavailableError`` or the
        exception's own content.
        """
        futures = {
            shard_id: self._executor.submit(call, self.shard(shard_id))
            for shard_id in shard_ids
        }
        return {shard_id: future.result() for shard_id, future in futures.items()}

    def close(self) -> None:
        """Shut the fan-out pool down (pending calls complete first)."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
        partition_boundaries: Optional[Sequence[float]] = None,
        partition_shards: Optional[Sequence[str]] = None,
    ) -> Dict[str, Any]:
        """Create an attribute cluster-wide.

        Without ``partition_boundaries`` the attribute lands on its routed
        home shard.  With them, the attribute is registered as range-
        partitioned and one piece histogram (same configuration) is created
        on every piece shard; ``partition_shards`` overrides the default
        round-robin piece placement.
        """
        if partition_boundaries is None:
            if partition_shards is not None:
                raise ConfigurationError("partition_shards requires partition_boundaries")
            shard_id = self._router.shard_for(name)
            stats = self.shard(shard_id).create(
                name,
                kind,
                memory_kb=memory_kb,
                value_unit=value_unit,
                disk_factor=disk_factor,
                seed=seed,
                exist_ok=exist_ok,
            )
            return {"name": name, "partitioned": False, "shard": shard_id, "stats": stats}

        partition = self._router.partition(name, partition_boundaries, partition_shards)
        try:
            pieces = self._scatter(
                partition.piece_shard_ids,
                lambda shard: shard.create(
                    name,
                    kind,
                    memory_kb=memory_kb,
                    value_unit=value_unit,
                    disk_factor=disk_factor,
                    seed=seed,
                    exist_ok=exist_ok,
                ),
            )
        except Exception:
            # Creation is not atomic across shards; withdrawing the partition
            # keeps routing consistent with whatever was actually created
            # (retry with exist_ok=True after fixing the failing shard).
            self._router.unpartition(name)
            raise
        return {
            "name": name,
            "partitioned": True,
            "partition": partition.to_dict(),
            "pieces": pieces,
        }

    def drop(self, name: str) -> Dict[str, Any]:
        """Drop an attribute from every shard holding state for it."""
        shard_ids = self._router.shards_for(name)
        results = self._scatter(shard_ids, lambda shard: shard.drop(name))
        self._router.unpartition(name)
        self._router.unassign(name)
        with self._merge_guard:
            self._merge_cache.pop(name, None)
            self._merge_locks.pop(name, None)
        return {"dropped": name, "shards": sorted(results)}

    def names(self) -> List[str]:
        """Every attribute name in the cluster (partitioned ones once)."""
        gathered = self._scatter(list(self._shards), lambda shard: shard.names())
        return sorted({name for names in gathered.values() for name in names})

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def ingest(
        self, name: str, insert: Sequence[float] = (), delete: Sequence[float] = ()
    ) -> Dict[str, Any]:
        """Apply a write batch, scattering partitioned attributes per value."""
        insert = list(insert)
        delete = list(delete)
        if not self._begin_apply(name, insert, delete):
            return {
                "buffered_for_move": True,
                "inserted": len(insert),
                "deleted": len(delete),
            }
        try:
            partition = self._router.partition_for(name)
            if partition is None:
                shard_id = self._router.shard_for(name)
                result = self.shard(shard_id).ingest(name, insert=insert, delete=delete)
                result.setdefault("inserted", len(insert))
                result.setdefault("deleted", len(delete))
                result["per_shard"] = {shard_id: result.get("inserted", 0)}
                return result

            insert_groups = partition.split(insert)
            delete_groups = partition.split(delete)
            shard_ids = sorted(set(insert_groups) | set(delete_groups))
            gathered = self._scatter(
                shard_ids,
                lambda shard: shard.ingest(
                    name,
                    insert=insert_groups.get(shard.shard_id, []),
                    delete=delete_groups.get(shard.shard_id, []),
                ),
            )
            return {
                "inserted": len(insert),
                "deleted": len(delete),
                "partitioned": True,
                "per_shard": {
                    shard_id: result.get("inserted", 0)
                    for shard_id, result in gathered.items()
                },
            }
        finally:
            self._end_apply(name)

    def ingest_batch(self, items: Mapping[str, Any]) -> Dict[str, Any]:
        """Fan a multi-attribute write batch out: one concurrent stream per shard.

        ``items`` maps attribute name to either a plain sequence of values
        (an insert run, the historical shape) or a mapping with optional
        ``insert`` / ``delete`` value lists.  Every attribute's values are
        grouped by owning shard (splitting partitioned attributes per value),
        then each shard applies its group in one concurrently-submitted run;
        the shard applies an attribute's inserts before its deletes, and the
        delete side rides the store's vectorised ``delete_many`` path.
        """
        per_shard: Dict[str, Dict[str, Tuple[List[float], List[float]]]] = {}
        applying: List[str] = []
        buffered = 0
        buffered_deletes = 0
        try:
            for name, values in items.items():
                if isinstance(values, Mapping):
                    insert = list(values.get("insert", ()))
                    delete = list(values.get("delete", ()))
                else:
                    insert = list(values)
                    delete = []
                if not insert and not delete:
                    continue
                if not self._begin_apply(name, insert, delete):
                    buffered += len(insert)
                    buffered_deletes += len(delete)
                    continue
                applying.append(name)
                partition = self._router.partition_for(name)
                if partition is None:
                    home = self._router.shard_for(name)
                    insert_groups = {home: insert} if insert else {}
                    delete_groups = {home: delete} if delete else {}
                else:
                    insert_groups = partition.split(insert)
                    delete_groups = partition.split(delete)
                for shard_id in set(insert_groups) | set(delete_groups):
                    shard_items = per_shard.setdefault(shard_id, {})
                    shard_items[name] = (
                        insert_groups.get(shard_id, []),
                        delete_groups.get(shard_id, []),
                    )

            def apply_group(shard: ShardBackend) -> Dict[str, int]:
                applied = {"inserted": 0, "deleted": 0}
                for name, (shard_insert, shard_delete) in per_shard[
                    shard.shard_id
                ].items():
                    result = shard.ingest(name, insert=shard_insert, delete=shard_delete)
                    applied["inserted"] += result.get("inserted", len(shard_insert))
                    applied["deleted"] += result.get("deleted", len(shard_delete))
                return applied

            gathered = self._scatter(sorted(per_shard), apply_group)
        finally:
            for name in applying:
                self._end_apply(name)
        # ``per_shard`` keeps its historical meaning (inserted values placed
        # per shard, reconciling with ``inserted``); the delete placement gets
        # its own breakdown.
        return {
            "inserted": sum(result["inserted"] for result in gathered.values()) + buffered,
            "deleted": sum(result["deleted"] for result in gathered.values())
            + buffered_deletes,
            "buffered_for_move": buffered + buffered_deletes,
            "per_shard": {
                shard_id: result["inserted"] for shard_id, result in gathered.items()
            },
            "per_shard_deleted": {
                shard_id: result["deleted"] for shard_id, result in gathered.items()
            },
        }

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
        """Evaluate a consistent batch of estimate queries.

        Unpartitioned attributes delegate to the home shard's batched query
        (one lock acquisition there -- no torn estimates).  Partitioned
        attributes are served from the merged global histogram, an immutable
        snapshot, so the whole batch is trivially consistent; the returned
        ``generation`` is the piece generation sum the merge was keyed on.
        """
        if not self._router.is_partitioned(name):
            shard_id = self._router.shard_for(name)
            result = self.shard(shard_id).query(name, queries)
            result["shard"] = shard_id
            return result
        generation_sum, merged = self._merged_entry(name)
        return {
            "generation": generation_sum,
            "results": evaluate_queries(merged, queries),
            "merged": True,
            "buckets": merged.bucket_count,
        }

    def estimate_range(self, name: str, low: float, high: float) -> float:
        """Estimated number of values of ``name`` in the closed range [low, high]."""
        return float(self.query(name, [{"op": "range", "low": low, "high": high}])["results"][0])

    def estimate_equal(self, name: str, value: float) -> float:
        """Estimated number of values of ``name`` equal to ``value``."""
        return float(self.query(name, [{"op": "equal", "value": value}])["results"][0])

    def total_count(self, name: str) -> float:
        """Total number of values represented cluster-wide for ``name``."""
        return float(self.query(name, [{"op": "total"}])["results"][0])

    def cdf(self, name: str, xs: Sequence[float]) -> List[float]:
        """Approximate CDF of ``name`` at each point of ``xs``."""
        return [float(v) for v in self.query(name, [{"op": "cdf", "xs": list(xs)}])["results"][0]]

    # ------------------------------------------------------------------
    # merged global histograms
    # ------------------------------------------------------------------
    def merged_histogram(self, name: str) -> Histogram:
        """The merged global histogram of a partitioned attribute (cached)."""
        return self._merged_entry(name)[1]

    def _partition_of(self, name: str) -> RangePartition:
        partition = self._router.partition_for(name)
        if partition is None:
            raise ClusterError(f"attribute {name!r} is not range-partitioned")
        return partition

    def _generation_sum(self, piece_shard_ids: Sequence[str], name: str) -> int:
        gathered = self._scatter(piece_shard_ids, lambda shard: shard.generation(name))
        return sum(gathered.values())

    def _merge_lock(self, name: str) -> threading.Lock:
        with self._merge_guard:
            lock = self._merge_locks.get(name)
            if lock is None:
                lock = self._merge_locks[name] = threading.Lock()
            return lock

    def _merged_entry(self, name: str) -> Tuple[int, UnionHistogram]:
        """The cached merged histogram, rebuilt only after shard writes.

        The cache key is the sum of the piece shards' generation counters,
        read **before** the snapshots: a write landing between the generation
        read and a snapshot makes the cached entry *fresher* than its key
        claims, so the very next query observes a larger sum and rebuilds --
        the cache can cause an extra rebuild but never serves a histogram
        older than its key.
        """
        partition = self._partition_of(name)
        piece_ids = partition.piece_shard_ids
        generation_sum = self._generation_sum(piece_ids, name)
        cached = self._merge_cache.get(name)
        if cached is not None and cached[0] == generation_sum:
            return cached
        with self._merge_lock(name):
            cached = self._merge_cache.get(name)
            if cached is not None and cached[0] == generation_sum:
                return cached
            snapshots = self._scatter(piece_ids, lambda shard: shard.snapshot(name))
            members = [
                histogram_from_dict(dict(snapshots[shard_id]["histogram"]))
                for shard_id in piece_ids
            ]
            merged = reduce_segments(
                superimpose(members),
                self._global_buckets,
                value_unit=self._value_unit,
            )
            entry = (generation_sum, merged)
            # Insert under the guard (stats() iterates the cache under it),
            # and never resurrect an entry a concurrent drop() just removed.
            with self._merge_guard:
                if self._router.partition_for(name) is not None:
                    self._merge_cache[name] = entry
            return entry

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, name: str) -> Dict[str, Any]:
        """Full serialised state of an unpartitioned attribute (home shard)."""
        if self._router.is_partitioned(name):
            raise ClusterError(
                f"attribute {name!r} is range-partitioned; snapshot its pieces "
                "per shard (each piece shard serves /attributes/<name>/snapshot)"
            )
        return self.shard(self._router.shard_for(name)).snapshot(name)

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> Dict[str, Any]:
        """Restore an unpartitioned attribute onto its routed home shard."""
        if self._router.is_partitioned(name):
            raise ClusterError(
                f"attribute {name!r} is range-partitioned; restore its pieces per shard"
            )
        return self.shard(self._router.shard_for(name)).restore(name, snapshot)

    # ------------------------------------------------------------------
    # rebalance / drain
    # ------------------------------------------------------------------
    def _begin_apply(self, name: str, insert: List[float], delete: List[float]) -> bool:
        """Atomically either buffer the ops (attribute moving -> False) or
        register an in-flight apply (True; pair with :meth:`_end_apply`).

        The check-and-increment is one critical section: a rebalance that
        registers afterwards will wait for this apply to finish before it
        snapshots, so the write is guaranteed to be inside the snapshot.
        """
        with self._moves_cv:
            buffer = self._moves.get(name)
            if buffer is not None:
                if insert:
                    buffer.append(("insert", list(insert)))
                if delete:
                    buffer.append(("delete", list(delete)))
                return False
            self._inflight[name] = self._inflight.get(name, 0) + 1
            return True

    def _end_apply(self, name: str) -> None:
        with self._moves_cv:
            remaining = self._inflight.get(name, 1) - 1
            if remaining > 0:
                self._inflight[name] = remaining
            else:
                self._inflight.pop(name, None)
                self._moves_cv.notify_all()

    def _replay(self, shard: ShardBackend, name: str, runs: List[Tuple[str, List[float]]]) -> int:
        applied = 0
        for op, values in runs:
            if op == "insert":
                shard.ingest(name, insert=values)
            else:
                shard.ingest(name, delete=values)
            applied += len(values)
        return applied

    def rebalance(self, name: str, target_shard_id: str) -> Dict[str, Any]:
        """Move an unpartitioned attribute to ``target_shard_id``.

        Protocol (no write is ever lost):

        1. register the move -- from here, cluster writes for ``name`` are
           buffered at the coordinator instead of applied -- then wait for
           the in-flight applies that passed the move check earlier to
           drain, so every applied write is visible to the snapshot;
        2. snapshot on the source, restore on the target;
        3. replay buffered writes onto the target, repeating until a drain
           pass finds the buffer empty *while holding the move lock*, at
           which point the routing override flips to the target and the move
           is unregistered in the same critical section -- a concurrent
           writer either buffered before the flip (replayed) or routes to
           the target after it;
        4. drop the attribute from the source.

        On failure the buffered writes are replayed onto the source (still
        the routed home) before the error propagates.
        """
        target = self.shard(target_shard_id)
        if self._router.is_partitioned(name):
            raise ClusterError(
                f"attribute {name!r} is range-partitioned; move pieces by re-partitioning"
            )
        source_id = self._router.shard_for(name)
        if source_id == target_shard_id:
            return {"attribute": name, "from": source_id, "to": target_shard_id, "moved": False}
        source = self.shard(source_id)
        with self._moves_cv:
            if name in self._moves:
                raise ClusterError(f"attribute {name!r} is already being moved")
            self._moves[name] = []
            # Fence: applies that slipped past the move check must reach the
            # source before the snapshot, or their values would be neither in
            # the copy nor in the buffer.
            while self._inflight.get(name, 0) > 0:
                self._moves_cv.wait()
        replayed = 0
        try:
            snapshot = source.snapshot(name)
            target.restore(name, snapshot)
            while True:
                with self._moves_cv:
                    buffered = self._moves[name]
                    if not buffered:
                        # Atomic flip: override + unregister under the same
                        # lock a writer needs to buffer.
                        self._router.assign(name, target_shard_id)
                        del self._moves[name]
                        break
                    self._moves[name] = []
                replayed += self._replay(target, name, buffered)
        except Exception:
            with self._moves_cv:
                buffered = self._moves.pop(name, [])
            # The source is still the routed home; put buffered writes back
            # through the public path so they fence against any later move.
            for op, values in buffered:
                if op == "insert":
                    self.ingest(name, insert=values)
                else:
                    self.ingest(name, delete=values)
            raise
        source.drop(name)
        return {
            "attribute": name,
            "from": source_id,
            "to": target_shard_id,
            "moved": True,
            "replayed_buffered_values": replayed,
        }

    def drain(self, shard_id: str) -> Dict[str, Any]:
        """Move every attribute homed on ``shard_id`` to the other members.

        Range-partitioned attributes keep their piece on the shard (moving a
        piece is a re-partitioning decision, not a drain) and are reported as
        skipped.
        """
        source = self.shard(shard_id)
        if len(self._shards) < 2:
            raise ClusterError("cannot drain the only shard in the cluster")
        moved: Dict[str, str] = {}
        skipped: List[str] = []
        for name in source.names():
            if self._router.is_partitioned(name):
                skipped.append(name)
                continue
            if self._router.shard_for(name) != shard_id:
                continue  # a stale replica; the routed home is elsewhere
            target_id = self._router.ring_shard_for(name, exclude=(shard_id,))
            self.rebalance(name, target_id)
            moved[name] = target_id
        return {"shard": shard_id, "moved": moved, "skipped_partitioned": sorted(skipped)}

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def attribute_stats(self, name: str) -> Dict[str, Any]:
        """Cluster-level stats of one attribute (per piece when partitioned)."""
        partition = self._router.partition_for(name)
        if partition is None:
            shard_id = self._router.shard_for(name)
            return {
                "name": name,
                "partitioned": False,
                "shard": shard_id,
                "stats": self.shard(shard_id).stats(name),
            }
        pieces = self._scatter(partition.piece_shard_ids, lambda shard: shard.stats(name))
        cached = self._merge_cache.get(name)
        return {
            "name": name,
            "partitioned": True,
            "partition": partition.to_dict(),
            "pieces": pieces,
            "merged_generation_sum": None if cached is None else cached[0],
            "merged_buckets": None if cached is None else cached[1].bucket_count,
        }

    def stats(self) -> Dict[str, Any]:
        """Cluster-wide stats: per-shard attribute tables plus placement."""
        gathered = self._scatter(
            list(self._shards),
            lambda shard: {"health": shard.health(), "attributes": shard.stats_all()},
        )
        with self._merge_guard:
            merge_cache = {
                name: {"generation_sum": entry[0], "buckets": entry[1].bucket_count}
                for name, entry in self._merge_cache.items()
            }
        return {
            "shards": [
                {"shard_id": shard_id, **gathered[shard_id]} for shard_id in self._shards
            ],
            "placement": self._router.placement(),
            "merge_cache": merge_cache,
        }
