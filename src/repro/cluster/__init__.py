"""Sharded statistics cluster: scatter-gather ingest, merged global estimates.

The paper's Section 8 builds a *global* histogram over a shared-nothing union
of sites by superimposing the per-site histograms and reducing the result
back to the memory budget.  This package turns that machinery into a serving
layer: attributes are spread across N backing shards, writes are scattered
concurrently, and global questions about a range-partitioned attribute are
answered from a merged (superimpose + reduce) histogram cached on the shards'
generation counters.

* :class:`~repro.cluster.router.ShardRouter` /
  :class:`~repro.cluster.router.RangePartition` -- deterministic placement:
  consistent hashing, explicit pins, value-range partitioning;
* :class:`~repro.cluster.protocol.ShardBackend` with
  :class:`~repro.cluster.protocol.LocalShard` (in-process store),
  :class:`~repro.cluster.protocol.RemoteShard` (HTTP service) and
  :class:`~repro.cluster.transport.ProcessShard` (spawned worker process
  behind the persistent binary transport) members;
* :class:`~repro.cluster.supervisor.ShardSupervisor` -- spawns each shard as
  its own OS process (own store, own WAL dir, own port), monitors liveness
  and tears the fleet down;
* :class:`~repro.cluster.coordinator.ClusterCoordinator` -- scatter-gather
  ingest, merged global estimates, rebalance / drain;
* :class:`~repro.cluster.server.ClusterServer` /
  :class:`~repro.cluster.server.ClusterClient` -- the JSON HTTP face
  (superset of the single-node service API).
"""

from .coordinator import DEFAULT_GLOBAL_BUCKETS, ClusterCoordinator
from .protocol import LocalShard, RemoteShard, ShardBackend
from .router import RangePartition, ShardRouter, stable_hash
from .server import ClusterClient, ClusterServer
from .supervisor import ShardSupervisor
from .transport import BinaryShardClient, BinaryShardServer, ProcessShard

__all__ = [
    "DEFAULT_GLOBAL_BUCKETS",
    "ClusterCoordinator",
    "ShardBackend",
    "LocalShard",
    "RemoteShard",
    "ProcessShard",
    "BinaryShardClient",
    "BinaryShardServer",
    "ShardSupervisor",
    "RangePartition",
    "ShardRouter",
    "stable_hash",
    "ClusterClient",
    "ClusterServer",
]
