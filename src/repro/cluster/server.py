"""HTTP front-end for the cluster: one JSON API over many shards.

The :class:`ClusterServer` exposes a
:class:`~repro.cluster.coordinator.ClusterCoordinator` over the same
stdlib-only JSON HTTP surface the single-node
:class:`~repro.service.server.StatisticsServer` speaks: every service route
exists here (ingest / estimate / stats / snapshot / restore / drop), so an
existing :class:`StatisticsClient` -- and the ``store-stats`` CLI -- keeps
working against a cluster; response *payloads* carry extra cluster fields
(``per_shard``, ``merged``, ``partitioned``), and per-attribute stats /
snapshot bodies differ in shape for partitioned attributes.  On top it adds
the cluster-only routes:

====== ================================== ===========================================
Method Path                               Meaning
====== ================================== ===========================================
GET    /health                            liveness + shard / attribute counts
GET    /metrics                           Prometheus text exposition (when enabled)
GET    /cluster/stats                     per-shard stats, placement, merge cache
GET    /stats (or /attributes)            flat per-shard attribute stats list
POST   /attributes                        create (supports ``partition_boundaries``)
GET    /attributes/<name>                 cluster-level stats of one attribute
DELETE /attributes/<name>                 drop from every owning shard
POST   /attributes/<name>/ingest          scatter write batch
POST   /attributes/<name>/estimate        consistent query batch (merged when partitioned)
GET    /attributes/<name>/estimate        single query via query string
GET    /attributes/<name>/snapshot        serialised state (unpartitioned attributes)
POST   /attributes/<name>/restore         restore onto the routed home shard
POST   /attributes/<name>/rebalance       ``{"shard": <id>}`` -- move the attribute
POST   /shards/<id>/drain                 move everything off one shard
POST   /shards/<id>/resync                re-seed a recovered shard's replicas
====== ================================== ===========================================

:class:`ClusterClient` extends :class:`StatisticsClient` (create / ingest /
estimate / stats / drop are byte-identical routes) with the cluster verbs.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from collections.abc import Mapping, Sequence
from typing import Any

from ..exceptions import (
    ClusterError,
    DuplicateAttributeError,
    HistogramError,
    ShardUnavailableError,
    UnknownAttributeError,
)
from ..obs.process import ProcessTelemetry
from ..obs.profile import DEFAULT_SAMPLE_INTERVAL_S, SamplingProfiler
from ..obs.registry import MetricsRegistry
from ..obs.trace import TRACE_HEADER, RequestObserver, route_label, use_trace
from ..service.client import StatisticsClient
from ..service.server import METRICS_CONTENT_TYPE
from .coordinator import ClusterCoordinator

__all__ = ["ClusterServer", "ClusterClient"]


class _ClusterRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's coordinator."""

    server_version = "repro-statistics-cluster/1.0"
    protocol_version = "HTTP/1.1"

    # Set by ClusterServer when building the handler class.
    coordinator: ClusterCoordinator
    quiet: bool = True
    metrics: MetricsRegistry | None = None
    observer: RequestObserver | None = None
    process_telemetry: ProcessTelemetry | None = None
    profiler: SamplingProfiler | None = None

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # plumbing (mirrors the service handler)
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        self._send_body(status, json.dumps(payload).encode("utf-8"), "application/json")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self._status_sent = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _route(self) -> tuple[str, ...]:
        from urllib.parse import unquote, urlparse

        parsed = urlparse(self.path)
        return tuple(unquote(part) for part in parsed.path.split("/") if part)

    def _query_params(self) -> dict[str, str]:
        from urllib.parse import parse_qs, urlparse

        parsed = urlparse(self.path)
        return {key: values[-1] for key, values in parse_qs(parsed.query).items()}

    def _handle(self, method: str) -> None:
        observer = self.observer
        trace = None
        start = 0.0
        self._status_sent = 0
        self._trace_id = None
        if observer is not None:
            trace = observer.begin(self.headers.get(TRACE_HEADER))
            if trace is not None:
                self._trace_id = trace.trace_id
            start = time.perf_counter()
        # The trace is active for the whole dispatch, so coordinator fan-out
        # legs (which capture it before crossing into the thread pool) carry
        # the same id down to every shard request.
        with use_trace(trace):
            self._handle_inner(method)
        if observer is not None:
            observer.finish(
                trace,
                method=method,
                route=route_label(self._route()),
                status=self._status_sent,
                elapsed_s=time.perf_counter() - start,
            )

    def _handle_inner(self, method: str) -> None:
        try:
            payload = self._read_json() if method in ("POST", "PUT") else {}
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}"})
            return
        try:
            self._dispatch(method, self._route(), payload)
        except UnknownAttributeError as error:
            # Mirror the single-node service: `name` is the structured field
            # clients parse, the message is for humans.
            self._send_json(404, {"error": str(error), "name": error.name})
        except DuplicateAttributeError as error:
            self._send_json(409, {"error": str(error)})
        except ShardUnavailableError as error:
            self._send_json(503, {"error": str(error), "shard": error.shard_id})
        except (ClusterError, HistogramError, KeyError, TypeError, ValueError) as error:
            self._send_json(400, {"error": f"{type(error).__name__}: {error}"})
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    def do_GET(self) -> None:  # noqa: N802
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _dispatch(self, method: str, route: tuple[str, ...], payload: dict[str, Any]) -> None:
        coordinator = self.coordinator
        if route == ("health",) and method == "GET":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "shards": len(coordinator.shard_ids),
                    "attributes": len(coordinator.names()),
                },
            )
            return
        if route == ("metrics",) and method == "GET":
            if self.metrics is None:
                self._send_json(404, {"error": "metrics are not enabled on this server"})
            else:
                if self.process_telemetry is not None:
                    # Refresh the process vitals gauges (RSS/GC/threads/
                    # uptime) so every scrape carries current values.
                    self.process_telemetry.update()
                self._send_text(200, self.metrics.render(), METRICS_CONTENT_TYPE)
            return
        if route == ("profile",) and method == "GET":
            if self.profiler is None:
                self._send_json(
                    404, {"error": "profiling is not enabled on this server"}
                )
            else:
                self._send_json(200, self.profiler.attribution())
            return
        if route == ("cluster", "stats") and method == "GET":
            self._send_json(200, coordinator.stats())
            return
        if route == ("cluster", "ingest") and method == "POST":
            items = payload.get("items")
            if not isinstance(items, dict):
                raise ValueError('"items" must be a JSON object mapping attribute names')
            for values in items.values():
                if isinstance(values, dict):
                    if not all(
                        isinstance(values.get(key, []), list)
                        for key in ("insert", "delete")
                    ):
                        raise ValueError('"insert" and "delete" must be JSON arrays')
                elif not isinstance(values, list):
                    raise ValueError("batch values must be arrays or insert/delete objects")
            self._send_json(200, coordinator.ingest_batch(items))
            return
        if route in (("stats",), ("attributes",)) and method == "GET":
            # Service-compatible flat listing (what `store-stats` consumes):
            # one row per (shard, attribute), tagged with the shard id.
            attributes = [
                {**stats, "shard": shard["shard_id"]}
                for shard in coordinator.stats()["shards"]
                for stats in shard["attributes"]
            ]
            self._send_json(200, {"attributes": attributes})
            return
        if route == ("attributes",) and method == "POST":
            result = coordinator.create(
                payload["name"],
                payload.get("kind", "dc"),
                memory_kb=float(payload.get("memory_kb", 1.0)),
                value_unit=float(payload.get("value_unit", 1.0)),
                disk_factor=float(payload.get("disk_factor", 20.0)),
                seed=int(payload.get("seed", 0)),
                exist_ok=bool(payload.get("exist_ok", False)),
                partition_boundaries=payload.get("partition_boundaries"),
                partition_shards=payload.get("partition_shards"),
            )
            self._send_json(201, result)
            return
        if len(route) == 2 and route[0] == "attributes":
            name = route[1]
            if method == "GET":
                self._send_json(200, coordinator.attribute_stats(name))
                return
            if method == "DELETE":
                self._send_json(200, coordinator.drop(name))
                return
        if len(route) == 3 and route[0] == "attributes":
            name, action = route[1], route[2]
            if action == "ingest" and method == "POST":
                inserts = payload.get("insert") or []
                deletes = payload.get("delete") or []
                if not isinstance(inserts, list) or not isinstance(deletes, list):
                    raise ValueError('"insert" and "delete" must be JSON arrays of numbers')
                self._send_json(200, coordinator.ingest(name, insert=inserts, delete=deletes))
                return
            if action == "estimate":
                if method == "POST":
                    queries = payload.get("queries")
                    if not isinstance(queries, list):
                        raise ValueError('estimate body must contain a "queries" list')
                    self._send_json(200, coordinator.query(name, queries))
                    return
                if method == "GET":
                    query = {
                        key: (value if key == "op" else float(value))
                        for key, value in self._query_params().items()
                    }
                    response = coordinator.query(name, [query])
                    self._send_json(
                        200,
                        {"generation": response["generation"],
                         "result": response["results"][0]},
                    )
                    return
            if action == "snapshot" and method == "GET":
                self._send_json(200, coordinator.snapshot(name))
                return
            if action == "restore" and method == "POST":
                snapshot = payload.get("snapshot", payload)
                self._send_json(200, coordinator.restore(name, snapshot))
                return
            if action == "rebalance" and method == "POST":
                self._send_json(200, coordinator.rebalance(name, payload["shard"]))
                return
        if len(route) == 3 and route[0] == "shards" and route[2] == "drain" and method == "POST":
            self._send_json(200, coordinator.drain(route[1]))
            return
        if len(route) == 3 and route[0] == "shards" and route[2] == "resync" and method == "POST":
            self._send_json(200, coordinator.resync(route[1]))
            return
        self._send_json(404, {"error": f"no route for {method} {self.path}"})


class ClusterServer:
    """A threaded HTTP façade over a :class:`ClusterCoordinator`.

    Same lifecycle contract as the single-node server: ``port=0`` binds an
    ephemeral port, :meth:`start` serves from a daemon thread,
    :meth:`serve_forever` serves in the foreground, and the context manager
    starts / stops around the block (closing the coordinator's fan-out pool
    on exit).
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        metrics: MetricsRegistry | None = None,
        slow_request_ms: float | None = None,
        trace: bool = False,
        trace_sink: Any | None = None,
        profile: bool | float = False,
    ) -> None:
        self.coordinator = coordinator
        # Default to the coordinator's registry so one scrape covers HTTP,
        # fan-out and replication metrics; tracing or a slow-request
        # threshold forces a registry into existence.
        registry = metrics if metrics is not None else coordinator.metrics
        if registry is None and (trace or slow_request_ms is not None):
            registry = MetricsRegistry()
        self.metrics = registry
        observer = None
        if registry is not None:
            observer = RequestObserver(
                registry,
                server_label="cluster",
                slow_request_ms=slow_request_ms,
                trace=trace,
                sink=trace_sink,
            )
        # profile=True samples at the default interval; a float is an
        # explicit sampling interval in seconds (same knob as the service
        # server -- GET /profile reports collapsed hot-path attribution).
        self.profiler: SamplingProfiler | None = None
        if profile:
            interval = (
                DEFAULT_SAMPLE_INTERVAL_S if profile is True else float(profile)
            )
            self.profiler = SamplingProfiler(interval)
        telemetry = ProcessTelemetry(registry) if registry is not None else None
        handler = type(
            "_BoundClusterRequestHandler",
            (_ClusterRequestHandler,),
            {
                "coordinator": coordinator,
                "quiet": quiet,
                "metrics": registry,
                "observer": observer,
                "process_telemetry": telemetry,
                "profiler": self.profiler,
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._started = False
        self._stopped = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> ClusterServer:
        """Serve requests from a background daemon thread."""
        if self._thread is None:
            if self.profiler is not None:
                self.profiler.start()
            self._started = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-cluster-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until interrupted."""
        if self.profiler is not None:
            self.profiler.start()
        self._started = True
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop serving, close the socket and the coordinator's fan-out pool.

        Idempotent: a second call (e.g. a signal handler racing the
        ``--duration`` teardown) returns without touching the closed socket.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._started:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self.profiler is not None:
            self.profiler.stop()
        self.coordinator.close()

    def __enter__(self) -> ClusterServer:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class ClusterClient(StatisticsClient):
    """Cluster-aware client: the service client plus the cluster verbs.

    The inherited per-attribute surface (``ingest`` / ``query`` /
    ``estimate_*`` / ``stats(name)`` / ``drop`` / ``total_count``) hits the
    identical routes on a :class:`ClusterServer`.
    """

    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
        partition_boundaries: Sequence[float] | None = None,
        partition_shards: Sequence[str] | None = None,
    ) -> dict[str, Any]:
        """Create an attribute; pass ``partition_boundaries`` to range-partition it."""
        payload: dict[str, Any] = {
            "name": name,
            "kind": kind,
            "memory_kb": memory_kb,
            "value_unit": value_unit,
            "disk_factor": disk_factor,
            "seed": seed,
            "exist_ok": exist_ok,
        }
        if partition_boundaries is not None:
            payload["partition_boundaries"] = list(partition_boundaries)
        if partition_shards is not None:
            payload["partition_shards"] = list(partition_shards)
        return self._request("POST", "/attributes", payload)

    def cluster_stats(self) -> dict[str, Any]:
        """Per-shard stats, placement rules and the merge-cache state."""
        return self._request("GET", "/cluster/stats")

    def ingest_batch(self, items: Mapping[str, Any]) -> dict[str, Any]:
        """Apply a multi-attribute write batch in one round trip.

        Each entry maps an attribute name to either a list of values to
        insert or an object with ``insert`` / ``delete`` value lists; the
        coordinator groups the whole batch per shard and applies one
        concurrent stream per shard.
        """
        return self._request("POST", "/cluster/ingest", {"items": dict(items)})

    def rebalance(self, name: str, shard_id: str) -> dict[str, Any]:
        """Move an unpartitioned attribute to ``shard_id``."""
        return self._request(
            "POST", self._attribute_path(name, "rebalance"), {"shard": shard_id}
        )

    def drain(self, shard_id: str) -> dict[str, Any]:
        """Move every attribute off ``shard_id``."""
        from urllib.parse import quote

        return self._request("POST", f"/shards/{quote(shard_id, safe='')}/drain", {})

    def resync(self, shard_id: str) -> dict[str, Any]:
        """Heal a recovered shard: re-seed every replica it should hold."""
        from urllib.parse import quote

        return self._request("POST", f"/shards/{quote(shard_id, safe='')}/resync", {})
