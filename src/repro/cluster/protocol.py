"""The shard protocol: one abstraction over local stores and remote servers.

The cluster coordinator talks to every backing shard through
:class:`ShardBackend` -- a small, JSON-shaped protocol (all methods return
plain dictionaries, exactly what the HTTP service already speaks).  Two
implementations cover the deployment spectrum:

* :class:`LocalShard` wraps an in-process
  :class:`~repro.service.store.HistogramStore` -- zero serialisation, used by
  tests, the ``serve-cluster`` CLI and single-host deployments;
* :class:`RemoteShard` wraps a
  :class:`~repro.service.client.StatisticsClient` pointed at a running
  :class:`~repro.service.server.StatisticsServer` -- a shared-nothing remote
  site, as in Section 8 of the paper.

Because both speak the same protocol, a cluster can mix them freely; the
coordinator neither knows nor cares.  Transport failures surface as
:class:`~repro.exceptions.ShardUnavailableError` (after the client's bounded
retries), so callers can distinguish "shard down" from "bad request".
"""

from __future__ import annotations

import abc
from http.client import HTTPException
from collections.abc import Mapping, Sequence
from typing import Any

from ..exceptions import ConfigurationError, ShardUnavailableError
from ..service.client import StatisticsClient
from ..service.store import HistogramStore

__all__ = ["ShardBackend", "LocalShard", "RemoteShard"]


class ShardBackend(abc.ABC):
    """Uniform protocol the coordinator uses against one backing shard."""

    def __init__(self, shard_id: str) -> None:
        if not shard_id or not isinstance(shard_id, str):
            raise ConfigurationError("shard_id must be a non-empty string")
        self.shard_id = shard_id

    # -- registry -------------------------------------------------------
    @abc.abstractmethod
    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
    ) -> dict[str, Any]:
        """Create an attribute on this shard; returns its stats dict."""

    @abc.abstractmethod
    def drop(self, name: str) -> None:
        """Remove an attribute from this shard."""

    @abc.abstractmethod
    def names(self) -> list[str]:
        """Attribute names this shard currently holds, sorted."""

    # -- writes ---------------------------------------------------------
    @abc.abstractmethod
    def ingest(
        self, name: str, insert: Sequence[float] = (), delete: Sequence[float] = ()
    ) -> dict[str, Any]:
        """Apply a batch of inserts then deletes; returns counts + generation."""

    # -- reads ----------------------------------------------------------
    @abc.abstractmethod
    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """Evaluate a query batch under the shard's consistent-read primitive."""

    @abc.abstractmethod
    def stats(self, name: str) -> dict[str, Any]:
        """Point-in-time stats dict of one attribute."""

    @abc.abstractmethod
    def stats_all(self) -> list[dict[str, Any]]:
        """Stats dicts of every attribute on this shard."""

    # -- snapshot / restore --------------------------------------------
    @abc.abstractmethod
    def snapshot(self, name: str) -> dict[str, Any]:
        """Full serialised state of one attribute."""

    @abc.abstractmethod
    def restore(self, name: str, snapshot: Mapping[str, Any]) -> dict[str, Any]:
        """Restore an attribute from a snapshot payload; returns its stats."""

    # -- liveness -------------------------------------------------------
    @abc.abstractmethod
    def health(self) -> dict[str, Any]:
        """Liveness probe."""

    def generation(self, name: str) -> int:
        """The attribute's generation counter (merge-cache key ingredient)."""
        return int(self.stats(name)["generation"])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.shard_id!r})"


class LocalShard(ShardBackend):
    """An in-process shard backed by a :class:`HistogramStore`."""

    def __init__(self, shard_id: str, store: HistogramStore | None = None) -> None:
        super().__init__(shard_id)
        self.store = store if store is not None else HistogramStore()

    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
    ) -> dict[str, Any]:
        return self.store.create(
            name,
            kind,
            memory_kb=memory_kb,
            value_unit=value_unit,
            disk_factor=disk_factor,
            seed=seed,
            exist_ok=exist_ok,
        ).to_dict()

    def drop(self, name: str) -> None:
        self.store.drop(name)

    def names(self) -> list[str]:
        return self.store.names()

    def ingest(
        self, name: str, insert: Sequence[float] = (), delete: Sequence[float] = ()
    ) -> dict[str, Any]:
        inserted = self.store.insert(name, insert) if len(insert) else 0
        deleted = self.store.delete(name, delete) if len(delete) else 0
        return {
            "inserted": inserted,
            "deleted": deleted,
            "generation": self.store.stats(name).generation,
        }

    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        return self.store.query(name, queries)

    def generation(self, name: str) -> int:
        # Lock-free: the store reads its published (generation, snapshot)
        # reference, so the coordinator's merge-cache probes never contend
        # with this shard's writers.
        return self.store.generation(name)

    def stats(self, name: str) -> dict[str, Any]:
        return self.store.stats(name).to_dict()

    def stats_all(self) -> list[dict[str, Any]]:
        return [stats.to_dict() for stats in self.store.stats_all()]

    def snapshot(self, name: str) -> dict[str, Any]:
        return self.store.snapshot(name)

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> dict[str, Any]:
        return self.store.restore(name, snapshot).to_dict()

    def health(self) -> dict[str, Any]:
        return {"status": "ok", "attributes": len(self.store)}


class RemoteShard(ShardBackend):
    """A shard served by a remote :class:`StatisticsServer`.

    Connection-level failures (after the client's own bounded
    retry-with-backoff) are wrapped into
    :class:`~repro.exceptions.ShardUnavailableError` carrying this shard's id,
    so scatter-gather errors identify the failing member.
    """

    #: Transport-level failures (the client's bounded retries already ran):
    #: connect errors surface as OSError, a connection dying mid-response as
    #: http.client.HTTPException (IncompleteRead, BadStatusLine, ...).
    _TRANSPORT_ERRORS: tuple[type, ...] = (OSError, HTTPException)

    def __init__(self, shard_id: str, client: StatisticsClient) -> None:
        super().__init__(shard_id)
        self.client = client

    def bind_metrics(self, metrics: Any) -> None:
        """Mirror the client's connect-retry stats into ``metrics``.

        The coordinator calls this for every shard backend that has it, so
        per-endpoint retry/backoff counters land in the cluster's registry.
        """
        self.client.bind_metrics(metrics)

    def _unavailable(self, error: Exception) -> ShardUnavailableError:
        return ShardUnavailableError(self.shard_id, error)

    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
    ) -> dict[str, Any]:
        try:
            return self.client.create(
                name,
                kind,
                memory_kb=memory_kb,
                value_unit=value_unit,
                disk_factor=disk_factor,
                seed=seed,
                exist_ok=exist_ok,
            )
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def drop(self, name: str) -> None:
        try:
            self.client.drop(name)
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def names(self) -> list[str]:
        try:
            return sorted(stats["name"] for stats in self.client.stats()["attributes"])
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def ingest(
        self, name: str, insert: Sequence[float] = (), delete: Sequence[float] = ()
    ) -> dict[str, Any]:
        try:
            return self.client.ingest(name, insert=insert, delete=delete)
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        try:
            return self.client.query(name, queries)
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def stats(self, name: str) -> dict[str, Any]:
        try:
            return self.client.stats(name)
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def stats_all(self) -> list[dict[str, Any]]:
        try:
            return self.client.stats()["attributes"]
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def snapshot(self, name: str) -> dict[str, Any]:
        try:
            return self.client.snapshot(name)
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> dict[str, Any]:
        try:
            return self.client.restore(name, snapshot)
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error

    def health(self) -> dict[str, Any]:
        try:
            return self.client.health()
        except self._TRANSPORT_ERRORS as error:
            raise self._unavailable(error) from error
