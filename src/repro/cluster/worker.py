"""Shard worker process: one store behind a binary transport server.

``python -m repro.cluster.worker --shard-id shard-0 --port 0 [--wal-dir D]``
builds a :class:`~repro.service.store.HistogramStore` (recovering an existing
WAL when ``--wal-dir`` points at one), serves it through
:class:`~repro.cluster.transport.BinaryShardServer`, prints a single
machine-readable readiness line::

    REPRO-SHARD-READY shard=<id> port=<bound port> pid=<pid>

on stdout, and then runs until SIGTERM/SIGINT (clean shutdown: transport
closed, store -- and therefore WAL -- closed) or until its parent kills it.
The :class:`~repro.cluster.supervisor.ShardSupervisor` parses the readiness
line to learn the ephemeral port and to fence startup races.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from pathlib import Path



def _build_store(wal_dir: str | None, fsync: bool):
    from ..service import DurabilityConfig, HistogramStore

    if wal_dir is None:
        return HistogramStore()
    config = DurabilityConfig(Path(wal_dir), fsync=fsync)
    if config.has_state():
        return HistogramStore.recover(wal_dir, fsync=fsync)
    return HistogramStore(durability=config)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="repro shard worker process")
    parser.add_argument("--shard-id", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port to bind (0 picks an ephemeral one)"
    )
    parser.add_argument(
        "--wal-dir", default=None, help="write-ahead-log directory (recovered if present)"
    )
    parser.add_argument("--wal-fsync", action="store_true")
    args = parser.parse_args(argv)

    from .protocol import LocalShard
    from .transport import READY_PREFIX, BinaryShardServer

    store = _build_store(args.wal_dir, args.wal_fsync)
    backend = LocalShard(args.shard_id, store)
    server = BinaryShardServer(backend, host=args.host, port=args.port)
    server.start()
    host, port = server.address
    print(f"{READY_PREFIX} shard={args.shard_id} port={port} pid={os.getpid()}", flush=True)

    stop = threading.Event()

    def on_signal(signum, frame):  # pragma: no cover - signal delivery timing
        stop.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    try:
        stop.wait()
    finally:
        server.stop()
        store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
