"""Small shared validation helpers.

These helpers keep argument checking uniform across the library: every public
constructor validates its inputs eagerly and raises
:class:`repro.exceptions.ConfigurationError` with a message that names the
offending parameter, so mistakes surface at configuration time rather than deep
inside an update loop.
"""

from __future__ import annotations

import math

from .exceptions import ConfigurationError

__all__ = [
    "require_positive_int",
    "require_non_negative_int",
    "require_positive_float",
    "require_non_negative_float",
    "require_probability",
    "require_finite",
    "require_in_range",
]


def require_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def require_non_negative_int(value: int, name: str) -> int:
    """Return ``value`` if it is a non-negative integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return value


def require_positive_float(value: float, name: str) -> float:
    """Return ``value`` as float if it is a finite positive number, else raise."""
    result = require_finite(value, name)
    if result <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return result


def require_non_negative_float(value: float, name: str) -> float:
    """Return ``value`` as float if it is a finite non-negative number, else raise."""
    result = require_finite(value, name)
    if result < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return result


def require_probability(value: float, name: str) -> float:
    """Return ``value`` as float if it lies in the closed interval [0, 1]."""
    result = require_finite(value, name)
    if not 0.0 <= result <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return result


def require_finite(value: float, name: str) -> float:
    """Return ``value`` as float if it is a finite real number, else raise."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(result) or math.isinf(result):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return result


def require_in_range(
    value: float,
    name: str,
    low: float | None = None,
    high: float | None = None,
) -> float:
    """Return ``value`` as float if it lies in the closed range [low, high]."""
    result = require_finite(value, name)
    if low is not None and result < low:
        raise ConfigurationError(f"{name} must be >= {low}, got {value}")
    if high is not None and result > high:
        raise ConfigurationError(f"{name} must be <= {high}, got {value}")
    return result
