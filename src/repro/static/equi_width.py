"""Equi-Width histogram: Equi-Sum(V, S) in the framework of Section 2.1.

The attribute-value axis is partitioned into buckets of equal value range.
Included as the classic baseline that both the paper and earlier work [8] show
to be inferior to Equi-Depth and the V-Optimal family; it also stands in for
the Birch-style fixed-radius clusters the paper mentions in Section 2.
"""

from __future__ import annotations

import numpy as np

from ..core.bucket import Bucket
from ..metrics.distribution import DataDistribution
from .base import StaticHistogram, extract_value_frequencies

__all__ = ["EquiWidthHistogram"]


class EquiWidthHistogram(StaticHistogram):
    """Buckets of equal value-range width."""

    @classmethod
    def build(cls, data: DataDistribution, n_buckets: int) -> EquiWidthHistogram:
        """Partition ``[min_value, max_value]`` into ``n_buckets`` equal ranges."""
        cls._validate_bucket_budget(n_buckets)
        values, frequencies = extract_value_frequencies(data)

        low, high = float(values[0]), float(values[-1])
        if low == high:
            return cls([Bucket(low, high, float(frequencies.sum()))])

        n_buckets = min(n_buckets, len(values))
        borders = np.linspace(low, high, n_buckets + 1)
        # Assign each distinct value to a bucket; the last border is inclusive.
        indices = np.clip(np.searchsorted(borders, values, side="right") - 1, 0, n_buckets - 1)
        counts = np.bincount(indices, weights=frequencies, minlength=n_buckets)

        buckets = [
            Bucket(float(borders[i]), float(borders[i + 1]), float(counts[i]))
            for i in range(n_buckets)
        ]
        return cls(buckets)
