"""Optimal histogram partitioning by dynamic programming.

The Static V-Optimal (SVO) and Static Average-Deviation Optimal (SADO)
histograms minimise, over all partitions of the value domain into ``B``
contiguous buckets, the total within-bucket deviation of per-value frequencies
from the bucket average -- squared deviations for SVO (Eq. 3), absolute
deviations for SADO (Eq. 5).  Both are solved exactly with the classic
O(V^2 * B) dynamic program over a precomputed segment-cost matrix.

The partition operates on *weighted frequency elements* (see
:func:`repro.static.base.frequency_elements`): element ``i`` represents
``weights[i]`` domain values that each carry frequency ``frequencies[i]``.
Present distinct values have weight 1; maximal runs of absent values are
compressed into single zero-frequency elements whose weight is the run length,
which is mathematically identical to enumerating every absent value (as the
paper's Eq. 3 does) at a fraction of the cost.

Costs:

* the *variance* cost of a segment is computed in O(1) per entry from weighted
  prefix sums of the frequencies and their squares;
* the *absolute-deviation* cost has no prefix-sum form; it is computed with a
  Fenwick (binary indexed) tree over frequency ranks, extending each segment
  one element at a time, which gives O(V^2 log V) for the full matrix.

The paper notes that V-Optimal construction is far more expensive than SSBM;
Figure 13 quantifies that gap, and the DP here is the standard construction
for the (V, F) histograms used throughout.
"""

from __future__ import annotations


import numpy as np

from .._validation import require_positive_int
from ..core.deviation import DeviationMetric
from ..exceptions import ConfigurationError

__all__ = [
    "variance_cost_matrix",
    "absolute_cost_matrix",
    "optimal_partition",
    "MAX_DP_VALUES",
]

#: Guard rail: the DP materialises a V x V cost matrix.
MAX_DP_VALUES = 6000


def _as_weights(frequencies: np.ndarray, weights: np.ndarray | None) -> np.ndarray:
    if weights is None:
        return np.ones(len(frequencies), dtype=float)
    weights_arr = np.asarray(weights, dtype=float)
    if weights_arr.shape != np.asarray(frequencies).shape:
        raise ConfigurationError(
            f"weights shape {weights_arr.shape} does not match frequencies shape "
            f"{np.asarray(frequencies).shape}"
        )
    if np.any(weights_arr <= 0):
        raise ConfigurationError("weights must be positive")
    return weights_arr


def variance_cost_matrix(
    frequencies: np.ndarray, weights: np.ndarray | None = None
) -> np.ndarray:
    """Matrix ``C[i, j]`` = weighted sum of squared deviations of elements ``i..j``.

    Entries with ``j < i`` are zero.  Computed column-by-column from weighted
    prefix sums, fully vectorised.
    """
    freqs = np.asarray(frequencies, dtype=float)
    n = len(freqs)
    _check_size(n)
    w = _as_weights(freqs, weights)
    prefix_w = np.concatenate(([0.0], np.cumsum(w)))
    prefix_wf = np.concatenate(([0.0], np.cumsum(w * freqs)))
    prefix_wff = np.concatenate(([0.0], np.cumsum(w * freqs * freqs)))

    cost = np.zeros((n, n), dtype=float)
    for j in range(n):
        i = np.arange(j + 1)
        seg_w = prefix_w[j + 1] - prefix_w[i]
        seg_wf = prefix_wf[j + 1] - prefix_wf[i]
        seg_wff = prefix_wff[j + 1] - prefix_wff[i]
        cost[: j + 1, j] = np.maximum(seg_wff - seg_wf * seg_wf / seg_w, 0.0)
    return cost


class _FenwickTree:
    """Fenwick tree over frequency ranks storing weights and weighted frequency sums."""

    def __init__(self, size: int) -> None:
        self._weights = np.zeros(size + 1, dtype=float)
        self._sums = np.zeros(size + 1, dtype=float)
        self._size = size

    def add(self, rank: int, weight: float, weighted_frequency: float) -> None:
        index = rank + 1
        while index <= self._size:
            self._weights[index] += weight
            self._sums[index] += weighted_frequency
            index += index & (-index)

    def prefix(self, rank: int) -> tuple[float, float]:
        """(total weight, total weighted frequency) of ranks <= ``rank``."""
        weight = 0.0
        total = 0.0
        index = rank + 1
        while index > 0:
            weight += self._weights[index]
            total += self._sums[index]
            index -= index & (-index)
        return weight, total


def absolute_cost_matrix(
    frequencies: np.ndarray, weights: np.ndarray | None = None
) -> np.ndarray:
    """Matrix ``C[i, j]`` = weighted sum of absolute deviations of elements ``i..j``.

    For each segment the deviations are measured from the segment's weighted
    mean frequency (matching Eq. 5, which deviates from the average frequency).
    """
    freqs = np.asarray(frequencies, dtype=float)
    n = len(freqs)
    _check_size(n)
    w = _as_weights(freqs, weights)
    unique_freqs = np.unique(freqs)
    ranks = np.searchsorted(unique_freqs, freqs)

    cost = np.zeros((n, n), dtype=float)
    for start in range(n):
        tree = _FenwickTree(len(unique_freqs))
        running_weight = 0.0
        running_sum = 0.0
        for end in range(start, n):
            tree.add(int(ranks[end]), float(w[end]), float(w[end] * freqs[end]))
            running_weight += float(w[end])
            running_sum += float(w[end] * freqs[end])
            mean = running_sum / running_weight
            below_rank = int(np.searchsorted(unique_freqs, mean, side="right")) - 1
            weight_below, sum_below = (
                tree.prefix(below_rank) if below_rank >= 0 else (0.0, 0.0)
            )
            weight_above = running_weight - weight_below
            sum_above = running_sum - sum_below
            cost[start, end] = (sum_above - weight_above * mean) + (
                weight_below * mean - sum_below
            )
    return cost


def optimal_partition(
    frequencies: np.ndarray,
    n_buckets: int,
    metric: DeviationMetric | str = DeviationMetric.VARIANCE,
    *,
    weights: np.ndarray | None = None,
) -> list[tuple[int, int]]:
    """Optimal partition of the (weighted) frequency sequence into contiguous buckets.

    Returns inclusive ``(start_index, end_index)`` pairs covering
    ``range(len(frequencies))``, minimising the total within-bucket deviation
    under the requested metric.  If ``n_buckets`` is at least the number of
    elements, every element gets its own bucket (total cost zero).
    """
    require_positive_int(n_buckets, "n_buckets")
    metric = DeviationMetric.coerce(metric)
    freqs = np.asarray(frequencies, dtype=float)
    n = len(freqs)
    if n == 0:
        return []
    if n_buckets >= n:
        return [(i, i) for i in range(n)]

    cost = (
        variance_cost_matrix(freqs, weights)
        if metric is DeviationMetric.VARIANCE
        else absolute_cost_matrix(freqs, weights)
    )

    # dp[j] = minimal cost of covering elements [0..j] with the current number
    # of buckets; choice[b, j] = start index of the last bucket in the optimum.
    dp = cost[0, :].copy()
    choice = np.zeros((n_buckets, n), dtype=int)

    for bucket_index in range(1, n_buckets):
        new_dp = np.full(n, np.inf)
        for j in range(bucket_index, n):
            starts = np.arange(bucket_index, j + 1)
            candidates = dp[starts - 1] + cost[starts, j]
            best = int(np.argmin(candidates))
            new_dp[j] = candidates[best]
            choice[bucket_index, j] = int(starts[best])
        dp = new_dp

    partition: list[tuple[int, int]] = []
    end = n - 1
    for bucket_index in range(n_buckets - 1, 0, -1):
        start = int(choice[bucket_index, end])
        partition.append((start, end))
        end = start - 1
    partition.append((0, end))
    partition.reverse()
    return partition


def _check_size(n_values: int) -> None:
    if n_values > MAX_DP_VALUES:
        raise ConfigurationError(
            f"the optimal DP supports at most {MAX_DP_VALUES} elements, got {n_values}; "
            "use SSBMHistogram for larger inputs"
        )
