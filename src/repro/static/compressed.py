"""Static Compressed histogram: Compressed(V, F), the paper's "SC".

A Compressed histogram stores the highest-frequency values individually in
*singular* (singleton) buckets and partitions the remaining values as an
Equi-Depth histogram (Section 2.1 and [9]).  A value deserves a singleton
bucket when its frequency exceeds the equi-depth share ``T = N / n`` of the
remaining data; the selection is iterated because removing a heavy value
changes the share of the rest.
"""

from __future__ import annotations


import numpy as np

from ..core.bucket import Bucket
from ..metrics.distribution import DataDistribution
from .base import StaticHistogram, extract_value_frequencies, value_range_bucket
from .equi_depth import equi_depth_partition

__all__ = ["CompressedHistogram"]


class CompressedHistogram(StaticHistogram):
    """Singleton buckets for heavy values plus equi-depth buckets for the rest."""

    @classmethod
    def build(
        cls, data: DataDistribution, n_buckets: int, *, value_unit: float = 1.0
    ) -> CompressedHistogram:
        """Build a Compressed(V, F) histogram with at most ``n_buckets`` buckets."""
        cls._validate_bucket_budget(n_buckets)
        values, frequencies = extract_value_frequencies(data)
        n_values = len(values)
        n_buckets = min(n_buckets, n_values)

        singular = _select_singular_values(frequencies, n_buckets)

        buckets: list[Bucket] = []
        regular_mask = np.ones(n_values, dtype=bool)
        for index in sorted(singular):
            regular_mask[index] = False
            buckets.append(Bucket(float(values[index]), float(values[index]), float(frequencies[index])))

        regular_values = values[regular_mask]
        regular_frequencies = frequencies[regular_mask]
        remaining_buckets = n_buckets - len(singular)
        if len(regular_values) and remaining_buckets > 0:
            for start, end in equi_depth_partition(regular_values, regular_frequencies, remaining_buckets):
                buckets.append(
                    value_range_bucket(
                        float(regular_values[start]),
                        float(regular_values[end]),
                        float(regular_frequencies[start : end + 1].sum()),
                        value_unit=value_unit,
                    )
                )

        buckets.sort(key=lambda bucket: (bucket.left, bucket.right))
        return cls(buckets)


def _select_singular_values(frequencies: np.ndarray, n_buckets: int) -> set[int]:
    """Indices of values that earn singleton buckets.

    Iteratively moves the most frequent remaining value to a singleton bucket
    while its frequency exceeds the equi-depth share of the remaining data and
    at least one regular bucket is left.
    """
    singular: set[int] = set()
    order = np.argsort(-frequencies, kind="stable")
    remaining_total = float(frequencies.sum())
    remaining_values = len(frequencies)

    for index in order:
        remaining_buckets = n_buckets - len(singular)
        if remaining_buckets <= 1:
            break
        if remaining_values <= remaining_buckets:
            break
        threshold = remaining_total / remaining_buckets
        if frequencies[index] > threshold:
            singular.add(int(index))
            remaining_total -= float(frequencies[index])
            remaining_values -= 1
        else:
            break
    return singular
