"""Static Average-Deviation Optimal (SADO) histogram (Section 4.1).

Identical to the V-Optimal construction except that the partition minimises
the sum of *absolute* deviations of frequencies from the bucket average
(Eq. 5) instead of squared deviations.  The paper introduces this histogram
and observes that in the static case it performs essentially the same as
V-Optimal, whereas the corresponding *dynamic* histograms (DADO vs. DVO)
differ noticeably because absolute deviations are more robust to the random
oscillations of a data stream.
"""

from __future__ import annotations

from ..core.deviation import DeviationMetric
from .v_optimal import VOptimalHistogram

__all__ = ["SADOHistogram"]


class SADOHistogram(VOptimalHistogram):
    """Optimal partition under the absolute-deviation constraint."""

    metric = DeviationMetric.ABSOLUTE
