"""Successive Similar Bucket Merge (SSBM) static histogram (Section 5).

SSBM starts from the exact histogram (one bucket per non-empty distinct value)
and repeatedly merges the neighbouring pair of buckets whose *merged* deviation
phi_M (Eq. 4) is smallest, until only the requested number of buckets remains.
Because construction happens while the full data is available, phi_M is
evaluated over the exact per-value frequencies of the values covered by the
candidate pair, with absent domain values contributing frequency zero (they
are compressed into weighted gap elements, see
:func:`repro.static.base.frequency_elements`).

With a lazy priority queue the construction costs O(V log V) heap operations
plus O(1) phi evaluations for the variance metric (via weighted prefix sums) --
far cheaper than the V-Optimal dynamic program, which is exactly the cost gap
Figure 13 of the paper illustrates.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.deviation import DeviationMetric
from ..metrics.distribution import DataDistribution
from .base import StaticHistogram, frequency_elements, value_range_bucket

__all__ = ["SSBMHistogram", "ssbm_partition"]


def ssbm_partition(
    frequencies: np.ndarray,
    n_buckets: int,
    metric: DeviationMetric | str = DeviationMetric.VARIANCE,
    *,
    weights: np.ndarray | None = None,
) -> list[tuple[int, int]]:
    """Greedy SSBM partition of a weighted frequency sequence into buckets.

    Element ``i`` stands for ``weights[i]`` domain values, each with frequency
    ``frequencies[i]`` (weight 1 and no gaps reduces to the plain per-value
    case).  Returns inclusive ``(start_index, end_index)`` pairs.  If
    ``n_buckets`` is at least the number of elements the partition is exact.
    """
    metric = DeviationMetric.coerce(metric)
    freqs = np.asarray(frequencies, dtype=float)
    n_values = len(freqs)
    if n_values == 0:
        return []
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be positive, got {n_buckets}")
    if n_buckets >= n_values:
        return [(i, i) for i in range(n_values)]

    if weights is None:
        w = np.ones(n_values, dtype=float)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != freqs.shape:
            raise ValueError("weights must have the same shape as frequencies")

    prefix_w = np.concatenate(([0.0], np.cumsum(w)))
    prefix_wf = np.concatenate(([0.0], np.cumsum(w * freqs)))
    prefix_wff = np.concatenate(([0.0], np.cumsum(w * freqs * freqs)))

    def merged_cost(start: int, end: int) -> float:
        """phi of the elements [start, end] around their own average frequency."""
        seg_w = prefix_w[end + 1] - prefix_w[start]
        seg_wf = prefix_wf[end + 1] - prefix_wf[start]
        if metric is DeviationMetric.VARIANCE:
            seg_wff = prefix_wff[end + 1] - prefix_wff[start]
            return max(seg_wff - seg_wf * seg_wf / seg_w, 0.0)
        mean = seg_wf / seg_w
        segment = slice(start, end + 1)
        return float(np.sum(w[segment] * np.abs(freqs[segment] - mean)))

    # Doubly linked list of live buckets, each identified by its original index.
    start_of = list(range(n_values))
    end_of = list(range(n_values))
    next_bucket: list[int | None] = [
        i + 1 if i + 1 < n_values else None for i in range(n_values)
    ]
    prev_bucket: list[int | None] = [i - 1 if i > 0 else None for i in range(n_values)]
    version = [0] * n_values
    alive = [True] * n_values

    heap: list[tuple[float, int, int, int, int]] = []
    for bucket_id in range(n_values - 1):
        cost = merged_cost(start_of[bucket_id], end_of[bucket_id + 1])
        heapq.heappush(
            heap, (cost, bucket_id, bucket_id + 1, version[bucket_id], version[bucket_id + 1])
        )

    remaining = n_values
    while remaining > n_buckets and heap:
        cost, left_id, right_id, left_version, right_version = heapq.heappop(heap)
        if not (alive[left_id] and alive[right_id]):
            continue
        if version[left_id] != left_version or version[right_id] != right_version:
            continue
        if next_bucket[left_id] != right_id:
            continue

        # Merge right_id into left_id.
        end_of[left_id] = end_of[right_id]
        alive[right_id] = False
        version[left_id] += 1
        successor = next_bucket[right_id]
        next_bucket[left_id] = successor
        if successor is not None:
            prev_bucket[successor] = left_id
        remaining -= 1

        predecessor = prev_bucket[left_id]
        if predecessor is not None:
            new_cost = merged_cost(start_of[predecessor], end_of[left_id])
            heapq.heappush(
                heap, (new_cost, predecessor, left_id, version[predecessor], version[left_id])
            )
        if successor is not None:
            new_cost = merged_cost(start_of[left_id], end_of[successor])
            heapq.heappush(
                heap, (new_cost, left_id, successor, version[left_id], version[successor])
            )

    partition: list[tuple[int, int]] = []
    bucket_id: int | None = 0
    while bucket_id is not None:
        if alive[bucket_id]:
            partition.append((start_of[bucket_id], end_of[bucket_id]))
        bucket_id = next_bucket[bucket_id]
    return partition


class SSBMHistogram(StaticHistogram):
    """Successive-Similar-Bucket-Merge histogram with a configurable phi metric."""

    #: Deviation metric used to pick the most similar neighbouring pair.
    metric = DeviationMetric.VARIANCE

    @classmethod
    def build(
        cls,
        data: DataDistribution,
        n_buckets: int,
        *,
        metric: DeviationMetric | str | None = None,
        value_unit: float = 1.0,
        include_gaps: bool = True,
    ) -> SSBMHistogram:
        """Build an SSBM histogram with ``n_buckets`` buckets.

        ``value_unit`` and ``include_gaps`` control whether absent domain
        values participate as zero frequencies (they do by default, matching
        the paper's deviation definition).
        """
        cls._validate_bucket_budget(n_buckets)
        starts, ends, frequencies, weights = frequency_elements(
            data, value_unit=value_unit, include_gaps=include_gaps
        )
        chosen_metric = cls.metric if metric is None else DeviationMetric.coerce(metric)
        partition = ssbm_partition(frequencies, n_buckets, chosen_metric, weights=weights)
        buckets = []
        for start, end in partition:
            count = float(np.dot(frequencies[start : end + 1], weights[start : end + 1]))
            buckets.append(
                value_range_bucket(
                    float(starts[start]), float(ends[end]), count, value_unit=value_unit
                )
            )
        return cls(buckets)
