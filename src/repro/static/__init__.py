"""Static histogram constructions.

These are the baselines the paper compares against (Section 7, Figures 9-13)
plus the two *new* static histograms the paper introduces:

* :class:`~repro.static.exact.ExactHistogram` -- one bucket per distinct value.
* :class:`~repro.static.equi_width.EquiWidthHistogram` -- Equi-Sum(V, S).
* :class:`~repro.static.equi_depth.EquiDepthHistogram` -- Equi-Sum(V, F).
* :class:`~repro.static.compressed.CompressedHistogram` -- Compressed(V, F),
  the paper's "SC".
* :class:`~repro.static.v_optimal.VOptimalHistogram` -- V-Optimal(V, F) via
  dynamic programming, the paper's "SVO".
* :class:`~repro.static.sado.SADOHistogram` -- Static Average-Deviation
  Optimal, introduced in Section 4.1.
* :class:`~repro.static.ssbm.SSBMHistogram` -- Successive Similar Bucket
  Merge, introduced in Section 5.

All are built from an exact :class:`~repro.metrics.distribution.DataDistribution`
and expose the shared read API of :class:`~repro.core.base.Histogram`.
"""

from .base import StaticHistogram
from .exact import ExactHistogram
from .equi_width import EquiWidthHistogram
from .equi_depth import EquiDepthHistogram
from .compressed import CompressedHistogram
from .v_optimal import VOptimalHistogram
from .sado import SADOHistogram
from .ssbm import SSBMHistogram
from .optimal_dp import optimal_partition, variance_cost_matrix, absolute_cost_matrix

__all__ = [
    "StaticHistogram",
    "ExactHistogram",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "CompressedHistogram",
    "VOptimalHistogram",
    "SADOHistogram",
    "SSBMHistogram",
    "optimal_partition",
    "variance_cost_matrix",
    "absolute_cost_matrix",
]
