"""The exact histogram: one point-mass bucket per distinct value.

This is the starting configuration of the SSBM construction (Section 5) and a
convenient "perfect" baseline: its KS statistic against the data it was built
from is exactly zero.
"""

from __future__ import annotations

from ..core.bucket import Bucket
from ..metrics.distribution import DataDistribution
from .base import StaticHistogram, extract_value_frequencies

__all__ = ["ExactHistogram"]


class ExactHistogram(StaticHistogram):
    """A lossless histogram with one singleton bucket per distinct value."""

    @classmethod
    def build(cls, data: DataDistribution, n_buckets: int = 0) -> ExactHistogram:
        """Build the exact histogram.

        ``n_buckets`` is accepted for interface uniformity but ignored -- the
        exact histogram always uses one bucket per distinct value.
        """
        values, frequencies = extract_value_frequencies(data)
        buckets = [
            Bucket(float(value), float(value), float(frequency))
            for value, frequency in zip(values, frequencies, strict=True)
        ]
        return cls(buckets)
