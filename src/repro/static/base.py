"""Shared base class for static histograms.

A static histogram is built once from a complete :class:`DataDistribution` and
is immutable afterwards.  Concrete classes implement a ``build`` classmethod
that computes the bucket list; everything else (estimation, CDFs, KS support)
comes from :class:`~repro.core.base.Histogram`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._validation import require_positive_int
from ..core.base import Histogram
from ..core.bucket import Bucket
from ..core.bucket_array import BucketArray
from ..core.segment_view import SegmentView
from ..exceptions import ConfigurationError, InsufficientDataError
from ..metrics.distribution import DataDistribution

__all__ = [
    "StaticHistogram",
    "extract_value_frequencies",
    "frequency_elements",
    "value_range_bucket",
]


def value_range_bucket(
    value_start: float,
    value_end: float,
    count: float,
    *,
    value_unit: float = 1.0,
) -> Bucket:
    """Build a bucket covering the *cells* of a run of domain values.

    A bucket that groups the domain values ``value_start .. value_end`` under
    the continuous-value assumption should spread its count over those values'
    cells, i.e. the continuous range ``[value_start - unit/2, value_end +
    unit/2]``; a bucket holding a single distinct value stays an exact point
    mass.  Centering the cells this way keeps the approximate CDF unbiased at
    the domain values themselves, which matters for the KS metric.
    """
    if value_end < value_start:
        raise ConfigurationError(
            f"value range is inverted: [{value_start}, {value_end}]"
        )
    if value_end == value_start:
        return Bucket(float(value_start), float(value_end), float(count))
    half_cell = value_unit / 2.0
    return Bucket(float(value_start) - half_cell, float(value_end) + half_cell, float(count))


def extract_value_frequencies(data: DataDistribution) -> tuple[np.ndarray, np.ndarray]:
    """Sorted distinct values and their frequencies, validating non-emptiness."""
    if data.total_count == 0:
        raise InsufficientDataError("cannot build a static histogram from an empty distribution")
    return data.values, data.frequencies


def frequency_elements(
    data: DataDistribution,
    *,
    value_unit: float = 1.0,
    include_gaps: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand a distribution into frequency *elements* for optimal partitioning.

    The V-Optimal family measures the deviation of per-value frequencies from
    the bucket average over *all domain values inside the bucket*, including
    values that never appear in the data (Section 4, Eq. 3).  Materialising
    every absent value would be wasteful, so this helper returns a compressed
    representation: one element per present distinct value (frequency = its
    count, weight = 1) and, when ``include_gaps`` is set, one element per
    maximal run of absent values between two present neighbours (frequency 0,
    weight = number of absent values in the run).

    Returns
    -------
    (starts, ends, frequencies, weights):
        Parallel arrays; element ``i`` covers the closed value range
        ``[starts[i], ends[i]]``, each of its ``weights[i]`` domain values
        carrying frequency ``frequencies[i]``.
    """
    if value_unit <= 0:
        raise ConfigurationError(f"value_unit must be positive, got {value_unit}")
    values, freqs = extract_value_frequencies(data)

    starts: list[float] = []
    ends: list[float] = []
    frequencies: list[float] = []
    weights: list[float] = []
    for index, (value, frequency) in enumerate(zip(values, freqs, strict=True)):
        if include_gaps and index > 0:
            previous = values[index - 1]
            missing = int(round((value - previous) / value_unit)) - 1
            if missing > 0:
                gap_start = previous + value_unit
                gap_end = max(gap_start, value - value_unit)
                starts.append(float(gap_start))
                ends.append(float(gap_end))
                frequencies.append(0.0)
                weights.append(float(missing))
        starts.append(float(value))
        ends.append(float(value))
        frequencies.append(float(frequency))
        weights.append(1.0)
    return (
        np.asarray(starts, dtype=float),
        np.asarray(ends, dtype=float),
        np.asarray(frequencies, dtype=float),
        np.asarray(weights, dtype=float),
    )


class StaticHistogram(Histogram):
    """A histogram whose buckets are fixed at construction time.

    The supplied bucket list is converted once into a contiguous
    :class:`~repro.core.bucket_array.BucketArray` (the borders/counts single
    source of truth) and the vectorised segment view is built eagerly from
    those arrays; every estimation call afterwards is an O(log B) array
    lookup, and :meth:`buckets` is a derived view materialised on demand.
    """

    def __init__(self, buckets: Sequence[Bucket]) -> None:
        if not buckets:
            raise ConfigurationError("a static histogram needs at least one bucket")
        ordered = list(buckets)
        for previous, current in zip(ordered, ordered[1:], strict=False):
            if current.left < previous.left:
                raise ConfigurationError("buckets must be supplied in ascending value order")
        self._array = BucketArray(
            np.asarray([bucket.left for bucket in ordered], dtype=float),
            np.asarray([bucket.right for bucket in ordered], dtype=float),
            np.asarray([bucket.count for bucket in ordered], dtype=float).reshape(-1, 1),
        )
        self.segment_view()

    @property
    def bucket_array(self) -> BucketArray:
        """The immutable border/count arrays backing this histogram."""
        return self._array

    def buckets(self) -> list[Bucket]:
        array = self._array
        return [
            Bucket(float(array.lefts[i]), float(array.rights[i]), float(array.sub_counts[i, 0]))
            for i in range(len(array))
        ]

    def _build_view(self) -> SegmentView:
        array = self._array
        return SegmentView(array.lefts, array.rights, array.sub_counts[:, 0])

    @classmethod
    def build(cls, data: DataDistribution, n_buckets: int) -> StaticHistogram:
        """Build the histogram from an exact distribution.

        Subclasses must override this; the base implementation exists only to
        document the signature.
        """
        raise NotImplementedError(f"{cls.__name__} does not implement build()")

    @staticmethod
    def _validate_bucket_budget(n_buckets: int) -> int:
        return require_positive_int(n_buckets, "n_buckets")
