"""Equi-Depth histogram: Equi-Sum(V, F) in the framework of Section 2.1.

The attribute-value axis is partitioned so that every bucket holds (as nearly
as possible) the same number of points.  It is the non-singleton part of the
Compressed histogram and the basis of the Approximate Histograms of Gibbons et
al. [10].
"""

from __future__ import annotations


import numpy as np

from ..core.bucket import Bucket
from ..metrics.distribution import DataDistribution
from .base import StaticHistogram, extract_value_frequencies, value_range_bucket

__all__ = ["EquiDepthHistogram", "equi_depth_partition"]


def equi_depth_partition(
    values: np.ndarray, frequencies: np.ndarray, n_buckets: int
) -> list[tuple[int, int]]:
    """Partition sorted distinct values into roughly equal-count groups.

    Returns inclusive ``(start_index, end_index)`` pairs into ``values``.  A
    single distinct value never straddles two buckets, so when one value's
    frequency exceeds the ideal depth the actual bucket counts deviate; fewer
    than ``n_buckets`` groups may be produced in that case.
    """
    n_values = len(values)
    if n_values == 0:
        return []
    n_buckets = min(n_buckets, n_values)
    cumulative = np.cumsum(frequencies)
    total = float(cumulative[-1])

    boundaries: list[int] = []
    previous_end = -1
    for bucket_index in range(1, n_buckets):
        target = total * bucket_index / n_buckets
        end = int(np.searchsorted(cumulative, target, side="left"))
        end = max(end, previous_end + 1)
        if end >= n_values - 1:
            break
        boundaries.append(end)
        previous_end = end

    groups: list[tuple[int, int]] = []
    start = 0
    for end in boundaries:
        groups.append((start, end))
        start = end + 1
    groups.append((start, n_values - 1))
    return groups


class EquiDepthHistogram(StaticHistogram):
    """Buckets of (approximately) equal point counts."""

    @classmethod
    def build(
        cls, data: DataDistribution, n_buckets: int, *, value_unit: float = 1.0
    ) -> EquiDepthHistogram:
        """Build an equi-depth histogram with at most ``n_buckets`` buckets."""
        cls._validate_bucket_budget(n_buckets)
        values, frequencies = extract_value_frequencies(data)
        groups = equi_depth_partition(values, frequencies, n_buckets)
        buckets = [
            value_range_bucket(
                float(values[start]),
                float(values[end]),
                float(frequencies[start : end + 1].sum()),
                value_unit=value_unit,
            )
            for start, end in groups
        ]
        return cls(buckets)
