"""Static V-Optimal histogram: V-Optimal(V, F), the paper's "SVO".

The partition of the value domain into buckets minimises the total
within-bucket variance of per-value frequencies (Eq. 2 / Eq. 3), where the
frequencies range over *all* domain values inside a bucket -- values absent
from the data contribute frequency zero, which is what makes the optimal
partition respect the spatial structure of the data.  Among the classical
static histograms this is the most accurate for selectivity estimation [8, 9]
and also by far the most expensive to construct, which motivates the SSBM
histogram of Section 5.
"""

from __future__ import annotations

import numpy as np

from ..core.deviation import DeviationMetric
from ..metrics.distribution import DataDistribution
from .base import StaticHistogram, frequency_elements, value_range_bucket
from .optimal_dp import optimal_partition

__all__ = ["VOptimalHistogram"]


class VOptimalHistogram(StaticHistogram):
    """Optimal partition under the variance constraint, via dynamic programming."""

    #: Deviation metric optimised by this class.
    metric = DeviationMetric.VARIANCE

    @classmethod
    def build(
        cls,
        data: DataDistribution,
        n_buckets: int,
        *,
        value_unit: float = 1.0,
        include_gaps: bool = True,
    ) -> VOptimalHistogram:
        """Build the optimal ``n_buckets``-bucket histogram for ``data``.

        Parameters
        ----------
        data:
            The exact distribution to approximate.
        n_buckets:
            Bucket budget.
        value_unit:
            Spacing between adjacent domain values (1 for integer domains).
        include_gaps:
            Whether absent domain values participate as zero frequencies
            (the paper's formulation); disable to partition only the present
            values.
        """
        cls._validate_bucket_budget(n_buckets)
        starts, ends, frequencies, weights = frequency_elements(
            data, value_unit=value_unit, include_gaps=include_gaps
        )
        partition = optimal_partition(frequencies, n_buckets, cls.metric, weights=weights)
        buckets = []
        for start, end in partition:
            count = float(np.dot(frequencies[start : end + 1], weights[start : end + 1]))
            buckets.append(
                value_range_bucket(
                    float(starts[start]), float(ends[end]), count, value_unit=value_unit
                )
            )
        return cls(buckets)
