"""Command-line interface for running the paper's experiments.

The CLI mirrors what the benchmark harness does, but as a user-facing tool:

* ``repro-experiments list`` -- enumerate the available figure experiments;
* ``repro-experiments run fig05 fig08`` -- run selected figures (or ``all``)
  and print their sweep tables, optionally at a different scale / repetition
  count and optionally exporting CSV files;
* ``repro-experiments compare`` -- build every histogram class on the reference
  distribution at equal memory and print a leaderboard.

Invoke either through the installed ``repro-experiments`` script or with
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from .core.factory import build_dynamic_histogram, build_static_histogram
from .datagen.clusters import generate_cluster_values
from .datagen.reference import reference_config
from .experiments import figures
from .experiments.config import ExperimentSettings, SweepResult
from .experiments.reporting import format_sweep_table, sweep_to_csv
from .metrics.distribution import DataDistribution
from .metrics.ks import ks_statistic
from .workloads.streams import random_insertions

__all__ = ["main", "available_experiments"]


def available_experiments() -> Dict[str, Callable[..., SweepResult]]:
    """Mapping from experiment name to the function that runs it."""
    names = [
        "fig05_center_skew",
        "fig06_size_skew",
        "fig07_cluster_sd",
        "fig08_memory",
        "fig09_static_center_skew",
        "fig10_static_size_skew",
        "fig11_static_cluster_sd",
        "fig12_static_memory",
        "fig13_construction_time",
        "fig14_ac_disk_space",
        "fig15_sorted_insertions",
        "fig16_precision_vs_inserted_fraction",
        "fig17_random_deletions",
        "fig18_deletions_after_sorted_inserts",
        "fig19_mail_order",
        "fig20_distributed_memory",
        "fig21_distributed_intrasite_skew",
        "fig22_distributed_site_count",
        "fig23_distributed_site_size_skew",
        "ablation_sub_buckets",
        "ablation_alpha_min",
        "ablation_repartition_threshold",
    ]
    return {name.split("_")[0] if name.startswith("fig") else name: getattr(figures, name)
            for name in names}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the experiments of 'Dynamic Histograms: Capturing Evolving Data Sets'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available figure experiments")

    run_parser = subparsers.add_parser("run", help="run one or more figure experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (e.g. fig05 fig19 ablation_alpha_min) or 'all'",
    )
    run_parser.add_argument("--scale", type=float, default=0.06,
                            help="fraction of the paper's data volume (default 0.06)")
    run_parser.add_argument("--runs", type=int, default=2,
                            help="random seeds averaged per configuration (default 2)")
    run_parser.add_argument("--memory-kb", type=float, default=1.0,
                            help="histogram memory for non-memory-sweep experiments (default 1.0)")
    run_parser.add_argument("--csv-dir", type=Path, default=None,
                            help="directory to write one CSV per experiment")

    compare_parser = subparsers.add_parser(
        "compare", help="leaderboard of every histogram class at equal memory"
    )
    compare_parser.add_argument("--memory-kb", type=float, default=0.5)
    compare_parser.add_argument("--scale", type=float, default=0.05)
    compare_parser.add_argument("--seed", type=int, default=0)
    return parser


def _command_list(out) -> int:
    registry = available_experiments()
    out.write("available experiments:\n")
    for name, function in registry.items():
        summary = (function.__doc__ or "").strip().splitlines()[0]
        out.write(f"  {name:<28} {summary}\n")
    return 0


def _command_run(args, out) -> int:
    registry = available_experiments()
    if len(args.experiments) == 1 and args.experiments[0].lower() == "all":
        selected = list(registry)
    else:
        selected = args.experiments
    unknown = [name for name in selected if name not in registry]
    if unknown:
        out.write(f"unknown experiment(s): {', '.join(unknown)}\n")
        out.write("use 'repro-experiments list' to see the available names\n")
        return 2

    settings = ExperimentSettings(scale=args.scale, n_runs=args.runs, memory_kb=args.memory_kb)
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)

    for name in selected:
        start = time.perf_counter()
        result = registry[name](settings)
        elapsed = time.perf_counter() - start
        out.write(format_sweep_table(result) + "\n")
        out.write(f"  (completed in {elapsed:.1f}s)\n\n")
        if args.csv_dir is not None:
            sweep_to_csv(result, path=str(args.csv_dir / f"{result.name}.csv"))
    return 0


_COMPARE_STATIC = ("equi_width", "equi_depth", "sc", "ssbm", "svo", "sado")
_COMPARE_DYNAMIC = ("dc", "dvo", "dado", "ac")


def _command_compare(args, out) -> int:
    config = reference_config(n_clusters=200, scale=args.scale, seed=args.seed)
    values = generate_cluster_values(config)
    truth = DataDistribution(values)
    stream = random_insertions(values, seed=args.seed)

    rows = []
    for kind in _COMPARE_STATIC:
        histogram = build_static_histogram(kind, truth, args.memory_kb)
        rows.append((kind.upper(), "static", ks_statistic(truth, histogram, value_unit=1.0)))
    for kind in _COMPARE_DYNAMIC:
        histogram = build_dynamic_histogram(kind, args.memory_kb, disk_factor=2.0, seed=args.seed)
        live = DataDistribution()
        for op in stream:
            histogram.insert(op.value)
            live.add(op.value)
        rows.append((kind.upper(), "dynamic", ks_statistic(live, histogram, value_unit=1.0)))

    rows.sort(key=lambda row: row[2])
    out.write(
        f"reference distribution at scale {args.scale}, memory {args.memory_kb} KB\n"
    )
    out.write(f"{'histogram':<12} {'kind':<8} {'KS statistic':>12}\n")
    for name, kind, error in rows:
        out.write(f"{name:<12} {kind:<8} {error:>12.5f}\n")
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list(out)
    if args.command == "run":
        return _command_run(args, out)
    if args.command == "compare":
        return _command_compare(args, out)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
