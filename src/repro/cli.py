"""Command-line interface for running the paper's experiments.

The CLI mirrors what the benchmark harness does, but as a user-facing tool:

* ``repro-experiments list`` -- enumerate the available figure experiments;
* ``repro-experiments run fig05 fig08`` -- run selected figures (or ``all``)
  and print their sweep tables, optionally at a different scale / repetition
  count and optionally exporting CSV files;
* ``repro-experiments compare`` -- build every histogram class on the reference
  distribution at equal memory and print a leaderboard;
* ``repro-experiments serve`` -- run the statistics service HTTP server
  (:mod:`repro.service`) with a configurable set of attributes;
* ``repro-experiments store-stats`` -- pretty-print the attribute stats of a
  running statistics server;
* ``repro-experiments serve-cluster`` -- run a sharded statistics cluster
  (:mod:`repro.cluster`): N in-process shards behind one scatter-gather HTTP
  front-end, with optional value-range partitioning of hot attributes,
  N-way replication (``--replication-factor``, with ``--replica-reads`` to
  rotate estimate reads over fresh replicas) and per-shard write-ahead
  logs (``--wal-dir``);
* ``repro-experiments cluster-stats`` -- pretty-print per-shard stats and
  placement rules of a running cluster server;
* ``repro-experiments resync`` -- heal a recovered shard of a running
  replicated cluster (re-seed its replicas from live siblings).

``serve`` takes ``--wal-dir`` to make the single-node catalog durable: an
existing WAL directory is recovered on start, so the served histograms
survive crashes and restarts.

Invoke either through the installed ``repro-experiments`` script or with
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import threading
import time
from pathlib import Path
from collections.abc import Callable, Sequence

from .core.factory import build_dynamic_histogram, build_static_histogram
from .datagen.clusters import generate_cluster_values
from .datagen.reference import reference_config
from .experiments import figures
from .experiments.config import ExperimentSettings, SweepResult
from .experiments.reporting import format_sweep_table, sweep_to_csv
from .metrics.distribution import DataDistribution
from .metrics.ks import ks_statistic
from .workloads.streams import random_insertions

__all__ = ["main", "available_experiments", "format_store_stats"]


def available_experiments() -> dict[str, Callable[..., SweepResult]]:
    """Mapping from experiment name to the function that runs it."""
    names = [
        "fig05_center_skew",
        "fig06_size_skew",
        "fig07_cluster_sd",
        "fig08_memory",
        "fig09_static_center_skew",
        "fig10_static_size_skew",
        "fig11_static_cluster_sd",
        "fig12_static_memory",
        "fig13_construction_time",
        "fig14_ac_disk_space",
        "fig15_sorted_insertions",
        "fig16_precision_vs_inserted_fraction",
        "fig17_random_deletions",
        "fig18_deletions_after_sorted_inserts",
        "fig19_mail_order",
        "fig20_distributed_memory",
        "fig21_distributed_intrasite_skew",
        "fig22_distributed_site_count",
        "fig23_distributed_site_size_skew",
        "ablation_sub_buckets",
        "ablation_alpha_min",
        "ablation_repartition_threshold",
    ]
    return {name.split("_")[0] if name.startswith("fig") else name: getattr(figures, name)
            for name in names}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the experiments of 'Dynamic Histograms: Capturing Evolving Data Sets'.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available figure experiments")

    run_parser = subparsers.add_parser("run", help="run one or more figure experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (e.g. fig05 fig19 ablation_alpha_min) or 'all'",
    )
    run_parser.add_argument("--scale", type=float, default=0.06,
                            help="fraction of the paper's data volume (default 0.06)")
    run_parser.add_argument("--runs", type=int, default=2,
                            help="random seeds averaged per configuration (default 2)")
    run_parser.add_argument("--memory-kb", type=float, default=1.0,
                            help="histogram memory for non-memory-sweep experiments (default 1.0)")
    run_parser.add_argument("--csv-dir", type=Path, default=None,
                            help="directory to write one CSV per experiment")

    compare_parser = subparsers.add_parser(
        "compare", help="leaderboard of every histogram class at equal memory"
    )
    compare_parser.add_argument("--memory-kb", type=float, default=0.5)
    compare_parser.add_argument("--scale", type=float, default=0.05)
    compare_parser.add_argument("--seed", type=int, default=0)

    serve_parser = subparsers.add_parser(
        "serve", help="run the statistics service HTTP server"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8181,
                              help="TCP port to bind (0 picks an ephemeral port)")
    serve_parser.add_argument(
        "--attribute", "-a", action="append", default=[],
        metavar="NAME[:KIND[:MEMORY_KB]]",
        help="pre-create an attribute, e.g. 'age:dc:1.0' (repeatable; kind "
             "defaults to dc, memory to 1.0 KB)",
    )
    serve_parser.add_argument("--max-batch", type=int, default=1024,
                              help="ingest pipeline size trigger (default 1024)")
    serve_parser.add_argument(
        "--flush-interval", type=float, default=0.25,
        help="seconds between background flushes of buffered ingests; "
             "0 applies every ingest request synchronously (default 0.25)",
    )
    serve_parser.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds then exit (default: run until interrupted)",
    )
    serve_parser.add_argument(
        "--wal-dir", type=Path, default=None,
        help="directory for write-ahead-log durability; an existing WAL is "
             "recovered on start, so the catalog survives crashes/restarts",
    )
    serve_parser.add_argument(
        "--wal-fsync", action="store_true",
        help="fsync every WAL append (durable against power loss, slower)",
    )
    serve_parser.add_argument(
        "--slow-request-ms", type=float, default=None, metavar="MS",
        help="emit a structured JSON log line (with per-span timings) for "
             "requests slower than this many milliseconds; implies tracing",
    )
    serve_parser.add_argument(
        "--trace", action="store_true",
        help="generate/propagate X-Repro-Trace-Id on every request",
    )
    serve_parser.add_argument(
        "--accuracy-sample", type=float, default=0.0, metavar="FRACTION",
        help="replay this fraction of estimate queries against exact shadow "
             "counts, exporting observed selectivity error as a /metrics "
             "distribution (0 disables; see README caveats)",
    )
    serve_parser.add_argument(
        "--profile", action="store_true",
        help="run the sampling profiler for the server's lifetime and "
             "expose collapsed hot-path attribution on GET /profile",
    )

    store_stats_parser = subparsers.add_parser(
        "store-stats", help="pretty-print the stats of a running statistics server"
    )
    store_stats_parser.add_argument("--host", default="127.0.0.1")
    store_stats_parser.add_argument("--port", type=int, default=8181)

    cluster_parser = subparsers.add_parser(
        "serve-cluster", help="run a sharded statistics cluster HTTP server"
    )
    cluster_parser.add_argument("--host", default="127.0.0.1")
    cluster_parser.add_argument("--port", type=int, default=8282,
                                help="TCP port to bind (0 picks an ephemeral port)")
    cluster_parser.add_argument("--shards", type=int, default=2,
                                help="number of in-process backing shards (default 2)")
    cluster_parser.add_argument(
        "--spawn-shards", type=int, default=None, metavar="N",
        help="run N shard worker PROCESSES (each with its own store, its own "
             "WAL directory under --wal-dir, and its own binary-transport "
             "port) instead of in-process shards; CPU-bound ingest then "
             "scales with cores. Overrides --shards; workers that crash are "
             "respawned on the same port",
    )
    cluster_parser.add_argument(
        "--attribute", "-a", action="append", default=[],
        metavar="NAME[:KIND[:MEMORY_KB]]",
        help="pre-create an attribute, e.g. 'age:dc:1.0' (repeatable)",
    )
    cluster_parser.add_argument(
        "--partition", "-p", action="append", default=[],
        metavar="NAME:B1,B2,...",
        help="range-partition an attribute at the given ascending cut points, "
             "e.g. 'price:100,1000' splits price into 3 pieces (repeatable; "
             "combine with -a to set kind/memory, else dc:1.0)",
    )
    cluster_parser.add_argument(
        "--global-buckets", type=int, default=64,
        help="bucket budget of merged global histograms (default 64)",
    )
    cluster_parser.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds then exit (default: run until interrupted)",
    )
    cluster_parser.add_argument(
        "--replication-factor", type=int, default=1,
        help="place every attribute (and partition piece) on this many "
             "distinct shards; writes fan out to all replicas, reads fail "
             "over, 'resync' heals a recovered shard (default 1)",
    )
    cluster_parser.add_argument(
        "--replica-reads", action="store_true",
        help="rotate estimate reads over an attribute's fresh (non-stale) "
             "replicas instead of always hitting the primary first -- "
             "spreads query load when --replication-factor > 1",
    )
    cluster_parser.add_argument(
        "--wal-dir", type=Path, default=None,
        help="base directory for per-shard write-ahead logs (shard-<i> "
             "subdirectories); existing WALs are recovered on start. Note: "
             "WALs persist shard DATA only -- router placement is rebuilt "
             "from these flags, so runtime placement changes (rebalance "
             "pins, HTTP-created partitions) must be re-applied after a "
             "restart",
    )
    cluster_parser.add_argument(
        "--wal-fsync", action="store_true",
        help="fsync every per-shard WAL append (durable against power loss, slower)",
    )
    cluster_parser.add_argument(
        "--slow-request-ms", type=float, default=None, metavar="MS",
        help="emit a structured JSON log line (with per-shard fan-out spans) "
             "for requests slower than this many milliseconds; implies tracing",
    )
    cluster_parser.add_argument(
        "--trace", action="store_true",
        help="generate/propagate X-Repro-Trace-Id on every request",
    )
    cluster_parser.add_argument(
        "--profile", action="store_true",
        help="run the sampling profiler for the server's lifetime and "
             "expose collapsed hot-path attribution on GET /profile",
    )

    cluster_stats_parser = subparsers.add_parser(
        "cluster-stats", help="pretty-print per-shard stats of a running cluster server"
    )
    cluster_stats_parser.add_argument("--host", default="127.0.0.1")
    cluster_stats_parser.add_argument("--port", type=int, default=8282)

    resync_parser = subparsers.add_parser(
        "resync", help="heal a recovered shard of a running cluster server"
    )
    resync_parser.add_argument("shard", help="shard id to re-seed (e.g. shard-1)")
    resync_parser.add_argument("--host", default="127.0.0.1")
    resync_parser.add_argument("--port", type=int, default=8282)

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="fetch the Prometheus text exposition of a running server "
             "(service or cluster)",
    )
    metrics_parser.add_argument("--host", default="127.0.0.1")
    metrics_parser.add_argument("--port", type=int, default=8181)
    metrics_parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="scrape twice this many seconds apart and print per-metric "
             "deltas and rates (counters) and current values (gauges) "
             "instead of the raw exposition",
    )
    return parser


def _command_list(out) -> int:
    registry = available_experiments()
    out.write("available experiments:\n")
    for name, function in registry.items():
        summary = (function.__doc__ or "").strip().splitlines()[0]
        out.write(f"  {name:<28} {summary}\n")
    return 0


def _command_run(args, out) -> int:
    registry = available_experiments()
    all_requested = len(args.experiments) == 1 and args.experiments[0].lower() == "all"
    selected = list(registry) if all_requested else args.experiments
    unknown = [name for name in selected if name not in registry]
    if unknown:
        out.write(f"unknown experiment(s): {', '.join(unknown)}\n")
        out.write("use 'repro-experiments list' to see the available names\n")
        return 2

    settings = ExperimentSettings(scale=args.scale, n_runs=args.runs, memory_kb=args.memory_kb)
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)

    for name in selected:
        start = time.perf_counter()
        result = registry[name](settings)
        elapsed = time.perf_counter() - start
        out.write(format_sweep_table(result) + "\n")
        out.write(f"  (completed in {elapsed:.1f}s)\n\n")
        if args.csv_dir is not None:
            sweep_to_csv(result, path=str(args.csv_dir / f"{result.name}.csv"))
    return 0


_COMPARE_STATIC = ("equi_width", "equi_depth", "sc", "ssbm", "svo", "sado")
_COMPARE_DYNAMIC = ("dc", "dvo", "dado", "ac")


def _command_compare(args, out) -> int:
    config = reference_config(n_clusters=200, scale=args.scale, seed=args.seed)
    values = generate_cluster_values(config)
    truth = DataDistribution(values)
    stream = random_insertions(values, seed=args.seed)

    rows = []
    for kind in _COMPARE_STATIC:
        histogram = build_static_histogram(kind, truth, args.memory_kb)
        rows.append((kind.upper(), "static", ks_statistic(truth, histogram, value_unit=1.0)))
    for kind in _COMPARE_DYNAMIC:
        histogram = build_dynamic_histogram(kind, args.memory_kb, disk_factor=2.0, seed=args.seed)
        live = DataDistribution()
        for op in stream:
            histogram.insert(op.value)
            live.add(op.value)
        rows.append((kind.upper(), "dynamic", ks_statistic(live, histogram, value_unit=1.0)))

    rows.sort(key=lambda row: row[2])
    out.write(
        f"reference distribution at scale {args.scale}, memory {args.memory_kb} KB\n"
    )
    out.write(f"{'histogram':<12} {'kind':<8} {'KS statistic':>12}\n")
    for name, kind, error in rows:
        out.write(f"{name:<12} {kind:<8} {error:>12.5f}\n")
    return 0


def _parse_attribute_spec(spec: str):
    """Parse a ``NAME[:KIND[:MEMORY_KB]]`` attribute specification."""
    parts = spec.split(":")
    if not parts[0] or len(parts) > 3:
        raise ValueError(f"invalid attribute spec {spec!r}; expected NAME[:KIND[:MEMORY_KB]]")
    name = parts[0]
    kind = parts[1] if len(parts) > 1 and parts[1] else "dc"
    memory_kb = float(parts[2]) if len(parts) > 2 and parts[2] else 1.0
    return name, kind, memory_kb


def _build_durable_store(wal_dir, fsync: bool, metrics=None, accuracy_sampler=None):
    """Open (recovering) or create a durable store at ``wal_dir``."""
    from .service import DurabilityConfig, HistogramStore

    config = DurabilityConfig(Path(wal_dir), fsync=fsync)
    if config.has_state():
        store = HistogramStore.recover(wal_dir, fsync=fsync, metrics=metrics)
        store.attach_accuracy_sampler(accuracy_sampler)
        return store, True
    return (
        HistogramStore(
            durability=config, metrics=metrics, accuracy_sampler=accuracy_sampler
        ),
        False,
    )


def _command_serve(args, out) -> int:
    from .obs import AccuracySampler, MetricsRegistry
    from .service import HistogramStore, IngestPipeline, StatisticsServer

    metrics = MetricsRegistry()
    sampler = None
    if args.accuracy_sample and args.accuracy_sample > 0:
        try:
            sampler = AccuracySampler(metrics, fraction=args.accuracy_sample)
        except ValueError as error:
            out.write(f"{error}\n")
            return 2
    recovered = False
    if args.wal_dir is not None:
        store, recovered = _build_durable_store(
            args.wal_dir, args.wal_fsync, metrics=metrics, accuracy_sampler=sampler
        )
    else:
        store = HistogramStore(metrics=metrics, accuracy_sampler=sampler)
    try:
        specs = [_parse_attribute_spec(spec) for spec in args.attribute]
    except ValueError as error:
        out.write(f"{error}\n")
        return 2
    for name, kind, memory_kb in specs:
        store.create(name, kind, memory_kb=memory_kb, exist_ok=True)

    pipeline = None
    if args.flush_interval and args.flush_interval > 0:
        pipeline = IngestPipeline(
            store,
            max_batch=args.max_batch,
            auto_flush_interval=args.flush_interval,
            metrics=metrics,
        )
    server = StatisticsServer(
        store,
        host=args.host,
        port=args.port,
        pipeline=pipeline,
        metrics=metrics,
        slow_request_ms=args.slow_request_ms,
        trace=args.trace,
        profile=args.profile,
    )
    host, port = server.address
    attributes = ", ".join(store.names()) or "none"
    out.write(f"statistics service listening on http://{host}:{port}\n")
    out.write(f"attributes: {attributes}\n")
    if args.trace or args.slow_request_ms is not None:
        threshold = (
            f", slow-request log above {args.slow_request_ms:g} ms"
            if args.slow_request_ms is not None
            else ""
        )
        out.write(f"tracing: X-Repro-Trace-Id enabled{threshold}\n")
    if sampler is not None:
        out.write(
            f"accuracy sampling: {args.accuracy_sample:g} of estimate batches\n"
        )
    if args.wal_dir is not None:
        state = "recovered existing catalog" if recovered else "fresh log"
        out.write(f"durability: WAL at {args.wal_dir} ({state})\n")
    if hasattr(out, "flush"):
        out.flush()
    if args.duration is not None:
        server.start()
        time.sleep(args.duration)
        server.stop()
        store.close()
        return 0
    try:  # pragma: no cover - interactive foreground mode
        with contextlib.suppress(KeyboardInterrupt):
            server.serve_forever()
    finally:  # pragma: no cover
        server.stop()
        store.close()
    return 0  # pragma: no cover


def _parse_partition_spec(spec: str):
    """Parse a ``NAME:B1,B2,...`` range-partition specification."""
    name, separator, cut_text = spec.partition(":")
    if not name or not separator or not cut_text:
        raise ValueError(f"invalid partition spec {spec!r}; expected NAME:B1,B2,...")
    try:
        boundaries = [float(cut) for cut in cut_text.split(",")]
    except ValueError:
        raise ValueError(f"invalid partition spec {spec!r}; boundaries must be numbers") from None
    return name, boundaries


def _command_serve_cluster(args, out) -> int:
    from .cluster import (
        ClusterCoordinator,
        ClusterServer,
        LocalShard,
        ShardRouter,
        ShardSupervisor,
    )
    from .obs import MetricsRegistry

    spawn = args.spawn_shards is not None
    if spawn and args.spawn_shards < 1:
        out.write("--spawn-shards must be at least 1\n")
        return 2
    if not spawn and args.shards < 1:
        out.write("--shards must be at least 1\n")
        return 2
    n_shards = args.spawn_shards if spawn else args.shards
    if not 1 <= args.replication_factor <= n_shards:
        out.write("--replication-factor must be between 1 and the shard count\n")
        return 2
    try:
        specs = [_parse_attribute_spec(spec) for spec in args.attribute]
        partitions = dict(_parse_partition_spec(spec) for spec in args.partition)
    except ValueError as error:
        out.write(f"{error}\n")
        return 2

    # One registry for the whole process: shard stores/WALs, the
    # coordinator's fan-out metrics and the HTTP layer all land in one
    # /metrics exposition (per-attribute labels aggregate across shards).
    # Spawned workers keep their stores in their own processes, so only the
    # coordinator/HTTP side of the registry is populated in that mode.
    metrics = MetricsRegistry()
    stores = []
    supervisor = None
    recovered_any = False
    if spawn:
        if args.wal_dir is not None:
            recovered_any = any(
                (Path(args.wal_dir) / f"shard-{index}").exists()
                for index in range(n_shards)
            )
        supervisor = ShardSupervisor(
            n_shards,
            wal_root=args.wal_dir,
            wal_fsync=args.wal_fsync,
        )
        shards = supervisor.start()
    else:
        for index in range(n_shards):
            if args.wal_dir is not None:
                store, recovered = _build_durable_store(
                    Path(args.wal_dir) / f"shard-{index}",
                    fsync=args.wal_fsync,
                    metrics=metrics,
                )
                recovered_any = recovered_any or recovered
            else:
                from .service import HistogramStore

                store = HistogramStore(metrics=metrics)
            stores.append(store)
        shards = [
            LocalShard(f"shard-{index}", store) for index, store in enumerate(stores)
        ]
    router = ShardRouter(
        [shard.shard_id for shard in shards],
        replication_factor=args.replication_factor,
    )
    try:
        coordinator = ClusterCoordinator(
            shards,
            router=router,
            global_buckets=args.global_buckets,
            metrics=metrics,
            replica_reads=args.replica_reads,
        )
        attribute_specs = {name: (kind, memory_kb) for name, kind, memory_kb in specs}
        for name in partitions:
            attribute_specs.setdefault(name, ("dc", 1.0))
        for name, (kind, memory_kb) in attribute_specs.items():
            coordinator.create(
                name,
                kind,
                memory_kb=memory_kb,
                exist_ok=True,
                partition_boundaries=partitions.get(name),
            )

        server = ClusterServer(
            coordinator,
            host=args.host,
            port=args.port,
            metrics=metrics,
            slow_request_ms=args.slow_request_ms,
            trace=args.trace,
            profile=args.profile,
        )
    except BaseException:
        if supervisor is not None:
            supervisor.close()
        for store in stores:
            store.close()
        raise
    host, port = server.address
    out.write(f"statistics cluster listening on http://{host}:{port}\n")
    if supervisor is not None:
        fleet = supervisor.describe()
        out.write(
            "shards: "
            + ", ".join(
                f"{shard_id} (pid {info['pid']}, port {info['port']})"
                for shard_id, info in fleet.items()
            )
            + "\n"
        )
    else:
        out.write(f"shards: {', '.join(coordinator.shard_ids)}\n")
    attributes = ", ".join(
        f"{name} (partitioned)" if name in partitions else name
        for name in sorted(attribute_specs)
    ) or "none"
    out.write(f"attributes: {attributes}\n")
    if args.replication_factor > 1:
        out.write(f"replication factor: {args.replication_factor}\n")
    if args.replica_reads:
        out.write("replica reads: rotating over fresh replicas\n")
    if args.wal_dir is not None:
        state = "recovered existing catalogs" if recovered_any else "fresh logs"
        owner = " (worker-owned)" if supervisor is not None else ""
        out.write(f"durability: per-shard WALs under {args.wal_dir} ({state}){owner}\n")
    if args.trace or args.slow_request_ms is not None:
        detail = "tracing: X-Repro-Trace-Id enabled"
        if args.slow_request_ms is not None:
            detail += f", slow-request log above {args.slow_request_ms:g} ms"
        out.write(detail + "\n")
    if hasattr(out, "flush"):
        out.flush()

    # Idempotent teardown: the --duration finally block, the serve_forever
    # finally block and any racing signal handler can each call this without
    # double-closing sockets, the fan-out pool, the fleet or the WALs.
    shutdown_done = threading.Event()

    def shutdown() -> None:
        if shutdown_done.is_set():
            return
        shutdown_done.set()
        server.stop()  # also closes the coordinator's fan-out pool
        if supervisor is not None:
            supervisor.close()
        for store in stores:
            store.close()

    if args.duration is not None:
        server.start()
        try:
            # The finally guarantees teardown even when the sleep is cut
            # short (KeyboardInterrupt, test harness timeouts): no leaked
            # fan-out executor threads, worker processes or WAL handles.
            time.sleep(args.duration)
        finally:
            shutdown()
        return 0
    try:  # pragma: no cover - interactive foreground mode
        with contextlib.suppress(KeyboardInterrupt):
            server.serve_forever()
    finally:  # pragma: no cover
        shutdown()
    return 0  # pragma: no cover


def format_store_stats(attributes) -> str:
    """A ``compare``-style table of per-attribute store statistics.

    ``attributes`` is a list of stat dictionaries as returned by the server's
    ``/stats`` endpoint (or ``AttributeStats.to_dict()``).
    """
    header = (
        f"{'attribute':<16} {'kind':<6} {'mem KB':>7} {'buckets':>8} "
        f"{'total':>12} {'gen':>6} {'repart':>7} {'inserted':>10} {'deleted':>8} {'state':<8}"
    )
    lines = [header]
    for stats in attributes:
        state = "loading" if stats.get("is_loading") else "serving"
        lines.append(
            f"{stats['name']:<16} {stats['kind']:<6} {stats['memory_kb']:>7.2f} "
            f"{stats['bucket_count']:>8d} {stats['total_count']:>12.0f} "
            f"{stats['generation']:>6d} {stats['repartition_count']:>7d} "
            f"{stats['inserted']:>10d} {stats['deleted']:>8d} {state:<8}"
        )
    return "\n".join(lines)


def _command_store_stats(args, out) -> int:
    from .exceptions import ServiceError
    from .service import StatisticsClient

    client = StatisticsClient(args.host, args.port)
    try:
        attributes = client.stats()["attributes"]
    except (OSError, ServiceError) as error:
        out.write(f"cannot reach statistics server at {args.host}:{args.port}: {error}\n")
        return 2
    out.write(f"statistics server at {args.host}:{args.port} "
              f"({len(attributes)} attribute(s))\n")
    out.write(format_store_stats(attributes) + "\n")
    return 0


def parse_exposition(text: str):
    """Parse Prometheus text exposition into (types, samples).

    ``types`` maps metric name -> declared type (``counter``/``gauge``/
    ``histogram``); ``samples`` maps the full series string (name plus label
    set) -> float value.  Only the subset of the text format 0.0.4 our own
    ``MetricsRegistry.render`` emits needs to parse, but unknown lines are
    skipped rather than fatal so the command works against other exporters.
    """
    types: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        series, _, value_text = line.rpartition(" ")
        if not series:
            continue
        try:
            samples[series] = float(value_text)
        except ValueError:
            continue
    return types, samples


def _series_base_name(series: str) -> str:
    """The metric family a series belongs to (labels and suffixes stripped)."""
    name = series.split("{", 1)[0]
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def format_metrics_watch(
    types: dict[str, str],
    before: dict[str, float],
    after: dict[str, float],
    elapsed_s: float,
) -> str:
    """Per-series deltas between two scrapes, one table.

    Counter-like series (counters, histogram ``_count``/``_sum``) report
    delta and rate per second, with zero-delta series suppressed to keep the
    output readable; gauges report their current value.  Histogram
    ``_bucket`` series are skipped -- the ``_count``/``_sum`` pair already
    summarises them.
    """
    lines = [f"{'series':<64} {'kind':<8} {'value':>14} {'rate/s':>12}"]
    for series in sorted(after):
        name = series.split("{", 1)[0]
        base = _series_base_name(series)
        kind = types.get(base, types.get(name, ""))
        if kind == "histogram":
            if name.endswith("_bucket"):
                continue
            kind = "counter"
        current = after[series]
        if kind == "counter":
            delta = current - before.get(series, 0.0)
            if delta == 0.0:
                continue
            rate = delta / elapsed_s if elapsed_s > 0 else 0.0
            lines.append(f"{series:<64} {'counter':<8} {f'+{delta:g}':>14} {rate:>12.1f}")
        else:
            lines.append(f"{series:<64} {kind or 'gauge':<8} {current:>14g} {'':>12}")
    if len(lines) == 1:
        lines.append("(no activity between scrapes)")
    return "\n".join(lines)


def _command_metrics(args, out) -> int:
    from .exceptions import ServiceError
    from .service import StatisticsClient

    client = StatisticsClient(args.host, args.port)
    try:
        text = client.metrics_text()
    except (OSError, ServiceError) as error:
        out.write(f"cannot reach server at {args.host}:{args.port}: {error}\n")
        return 2
    if args.watch is None:
        out.write(text)
        return 0
    if args.watch <= 0:
        out.write("--watch must be a positive number of seconds\n")
        return 2
    types, before = parse_exposition(text)
    start = time.perf_counter()
    time.sleep(args.watch)
    try:
        second = client.metrics_text()
    except (OSError, ServiceError) as error:
        out.write(f"cannot reach server at {args.host}:{args.port}: {error}\n")
        return 2
    elapsed = time.perf_counter() - start
    second_types, after = parse_exposition(second)
    types.update(second_types)
    out.write(
        f"metrics delta over {elapsed:.2f}s "
        f"(counters: delta + rate; gauges: current)\n"
    )
    out.write(format_metrics_watch(types, before, after, elapsed) + "\n")
    return 0


def _command_cluster_stats(args, out) -> int:
    from .cluster import ClusterClient
    from .exceptions import ServiceError

    client = ClusterClient(args.host, args.port)
    try:
        stats = client.cluster_stats()
    except (OSError, ServiceError) as error:
        out.write(f"cannot reach cluster server at {args.host}:{args.port}: {error}\n")
        return 2
    placement = stats.get("placement", {})
    shards = stats.get("shards", [])
    out.write(
        f"statistics cluster at {args.host}:{args.port} ({len(shards)} shard(s))\n"
    )
    for shard in shards:
        attributes = shard.get("attributes", [])
        out.write(f"\n[{shard['shard_id']}] {len(attributes)} attribute(s)\n")
        if attributes:
            out.write(format_store_stats(attributes) + "\n")
    overrides = placement.get("overrides", {})
    if overrides:
        out.write("\npinned attributes:\n")
        for name, shard_id in sorted(overrides.items()):
            out.write(f"  {name} -> {shard_id}\n")
    partitions = placement.get("partitions", {})
    if partitions:
        out.write("\nrange partitions:\n")
        for name, partition in sorted(partitions.items()):
            out.write(
                f"  {name}: boundaries={partition['boundaries']} "
                f"shards={partition['shard_ids']}\n"
            )
    merge_cache = stats.get("merge_cache", {})
    if merge_cache:
        out.write("\nmerged global histograms (cached):\n")
        for name, entry in sorted(merge_cache.items()):
            out.write(
                f"  {name}: generation_sum={entry['generation_sum']} "
                f"buckets={entry['buckets']}\n"
            )
    return 0


def _command_resync(args, out) -> int:
    from .cluster import ClusterClient
    from .exceptions import ServiceError

    client = ClusterClient(args.host, args.port)
    try:
        report = client.resync(args.shard)
    except (OSError, ServiceError) as error:
        out.write(f"resync of {args.shard!r} failed: {error}\n")
        return 2
    resynced = report.get("resynced", {})
    out.write(f"resynced {len(resynced)} attribute(s) onto {report['shard']}\n")
    for name, source in sorted(resynced.items()):
        out.write(f"  {name} <- {source}\n")
    for name in report.get("unrecoverable", []):
        out.write(f"  {name}: no surviving replica to copy from\n")
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list(out)
    if args.command == "run":
        return _command_run(args, out)
    if args.command == "compare":
        return _command_compare(args, out)
    if args.command == "serve":
        return _command_serve(args, out)
    if args.command == "store-stats":
        return _command_store_stats(args, out)
    if args.command == "metrics":
        return _command_metrics(args, out)
    if args.command == "serve-cluster":
        return _command_serve_cluster(args, out)
    if args.command == "cluster-stats":
        return _command_cluster_stats(args, out)
    if args.command == "resync":
        return _command_resync(args, out)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
