"""Write-ahead log for the statistics service (crash durability).

A :class:`~repro.service.store.HistogramStore` holds every histogram in
memory: a process crash loses the whole catalog.  The WAL closes that gap
with the classic recipe -- every mutation is appended to an on-disk log
*before* it is applied, and :meth:`HistogramStore.recover` replays the log to
rebuild the exact pre-crash state.

Record format
-------------

The log is a sequence of self-framing binary records::

    MAGIC (2 bytes, b"WR") | length (4 bytes, big-endian) |
    crc32 (4 bytes, big-endian, over the payload) | payload (UTF-8 JSON)

The JSON payload is an envelope ``{"seq": <int>, "record": {...}}`` where
``seq`` is a monotonically increasing sequence number and ``record`` is one of
the store's mutation records (``op`` of ``create`` / ``drop`` / ``insert`` /
``delete`` / ``restore``).  Floats survive the JSON round trip bit-exactly
(``json`` emits the shortest round-tripping repr), and replaying an ``insert``
record re-runs ``insert_many`` with the *recorded* maintenance interval, so a
replayed store is bit-identical to the original apply sequence.

The same framing discipline (magic + length + crc32 + JSON payload) carries
requests between the cluster coordinator and spawned shard workers -- see the
wire-format section of :mod:`repro.cluster.transport`, which uses magic
``b"SB"`` so a WAL record can never be mistaken for a transport frame.

Torn-tail rule
--------------

A crash can tear the final record (partial header, partial payload) or a disk
error can corrupt any byte.  :func:`replay_wal` stops at the **first** record
that fails framing or checksum validation and reports the byte offset of the
end of the last intact record; everything before that offset is trusted,
everything after is discarded (recovery truncates the file there before
appending again).  Validation failures are never raised during replay -- a
torn tail is an expected crash artefact, not an error.

Compaction
----------

An ever-growing log makes recovery ever slower.  ``HistogramStore.compact``
writes the whole catalog as a snapshot checkpoint (``snapshot.json``, built on
:mod:`repro.persistence`) recording the highest sequence number it contains,
then truncates the log.  Recovery loads the checkpoint first and skips
replayed records with ``seq <= last_seq``, so a crash *between* the snapshot
rename and the log truncation can never double-apply a record.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import Any

from ..exceptions import ConfigurationError

__all__ = [
    "DurabilityConfig",
    "WriteAheadLog",
    "WalRecord",
    "iter_wal",
    "replay_wal",
    "WAL_FILE_NAME",
    "SNAPSHOT_FILE_NAME",
]

#: Per-record frame header: magic + payload length + payload crc32.
_MAGIC = b"WR"
_HEADER = struct.Struct(">2sII")

WAL_FILE_NAME = "wal.log"
SNAPSHOT_FILE_NAME = "snapshot.json"


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record plus its position in the file."""

    seq: int
    record: dict[str, Any]
    #: Byte offset of the end of this record's frame (= start of the next).
    end_offset: int


@dataclass(frozen=True)
class DurabilityConfig:
    """Opt-in durability settings for a :class:`HistogramStore`.

    Parameters
    ----------
    wal_dir:
        Directory holding the log (``wal.log``) and the compaction
        checkpoint (``snapshot.json``).  Created if missing.
    fsync:
        Force every append to stable storage (``os.fsync``).  Off by
        default: the log is then durable against process crashes but a
        whole-machine power loss may tear the tail -- which recovery
        tolerates by design.
    compact_every:
        Automatically compact after this many appended records; ``None``
        disables auto-compaction (``compact()`` can still be called
        explicitly).
    """

    wal_dir: str | Path
    fsync: bool = False
    compact_every: int | None = 10_000

    def __post_init__(self) -> None:
        if self.compact_every is not None and self.compact_every < 1:
            raise ConfigurationError(
                f"compact_every must be positive or None, got {self.compact_every}"
            )

    @property
    def wal_path(self) -> Path:
        return Path(self.wal_dir) / WAL_FILE_NAME

    @property
    def snapshot_path(self) -> Path:
        return Path(self.wal_dir) / SNAPSHOT_FILE_NAME

    def has_state(self) -> bool:
        """True when the directory already holds recoverable state.

        The single definition of "holds state" -- the store constructor
        refuses such a directory (recover() is the only safe way in) and
        the CLI uses the same predicate to pick recover-vs-fresh.
        """
        return self.snapshot_path.exists() or (
            self.wal_path.exists() and self.wal_path.stat().st_size > 0
        )


def _encode_frame(seq: int, record: dict[str, Any]) -> bytes:
    payload = json.dumps({"seq": seq, "record": record}, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


def iter_wal(path: str | Path) -> Iterator[WalRecord]:
    """Stream a log file's intact records one frame at a time.

    Recovery memory stays O(one record) regardless of log size (a log left
    just short of the compaction threshold can be large).  Iteration stops
    -- silently, per the torn-tail rule -- at the first record with a short
    or mismatched frame, a checksum failure, or an undecodable payload; the
    byte offset after the last intact record is each yielded record's
    ``end_offset``.
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "rb") as handle:
        offset = 0
        while True:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return  # torn header (or clean EOF)
            magic, length, checksum = _HEADER.unpack(header)
            if magic != _MAGIC:
                return  # corrupted frame boundary
            payload = handle.read(length)
            if len(payload) < length:
                return  # torn payload
            if zlib.crc32(payload) != checksum:
                return  # corrupted payload
            payload_end = offset + _HEADER.size + length
            try:
                envelope = json.loads(payload.decode("utf-8"))
                record = WalRecord(
                    seq=int(envelope["seq"]),
                    record=dict(envelope["record"]),
                    end_offset=payload_end,
                )
            except (ValueError, KeyError, TypeError):
                return  # checksum collision on garbage; treat as corruption
            yield record
            offset = payload_end


def replay_wal(path: str | Path) -> tuple[list[WalRecord], int]:
    """Decode every intact record of a log file into a list.

    Returns ``(records, valid_end_offset)``.  Convenience wrapper over
    :func:`iter_wal` for tools and tests; recovery streams instead.
    """
    records = list(iter_wal(path))
    return records, records[-1].end_offset if records else 0


class WriteAheadLog:
    """Appender over one log file: thread-safe, crash-tolerant.

    Appends are serialised under one internal lock, which also assigns the
    sequence numbers -- file order and sequence order always agree.  The
    store appends while holding the written attribute's lock, so per
    attribute the log order equals the apply order (the property replay
    depends on); records of *different* attributes commute.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = False,
        start_seq: int = 0,
        truncate_at: int | None = None,
        metrics: Any | None = None,
    ) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        self._seq = int(start_seq)
        self._appended = 0
        # Observability is optional and recorded outside self._lock: the
        # metric locks are leaves, but keeping the WAL lock I/O-only also
        # keeps append latency numbers honest about what the lock covers.
        self._m_append_seconds = None
        self._m_fsync_seconds = None
        self._m_appended_bytes = None
        if metrics is not None:
            from ..obs.registry import LATENCY_BUCKETS_S

            self._m_append_seconds = metrics.distribution(
                "repro_wal_append_seconds",
                "Wall time of one WAL append (serialise + write + flush + fsync)",
                LATENCY_BUCKETS_S,
            )
            self._m_fsync_seconds = metrics.distribution(
                "repro_wal_fsync_seconds",
                "Wall time of the fsync portion of WAL appends",
                LATENCY_BUCKETS_S,
            )
            self._m_appended_bytes = metrics.counter(
                "repro_wal_appended_bytes_total",
                "Bytes appended to the write-ahead log",
            )
        # Drop a torn/corrupt tail before appending after it: anything past
        # the last intact record is unreadable garbage that would otherwise
        # poison the framing of every later append.
        if (
            truncate_at is not None
            and self._path.exists()
            and self._path.stat().st_size > truncate_at
        ):
            with open(self._path, "r+b") as handle:
                handle.truncate(truncate_at)
        self._file = open(self._path, "ab")  # noqa: SIM115 - long-lived appender handle

    @property
    def path(self) -> Path:
        return self._path

    @property
    def last_seq(self) -> int:
        """The sequence number of the most recently appended record."""
        with self._lock:
            return self._seq

    @property
    def appended_count(self) -> int:
        """Records appended through this handle (compaction trigger input)."""
        with self._lock:
            return self._appended

    def append(self, record: dict[str, Any]) -> int:
        """Append one record durably; returns its sequence number."""
        start = time.perf_counter()
        fsync_elapsed = 0.0
        with self._lock:
            if self._file.closed:
                raise ConfigurationError(f"write-ahead log {self._path} is closed")
            self._seq += 1
            frame = _encode_frame(self._seq, record)
            self._file.write(frame)
            self._file.flush()
            if self._fsync:
                fsync_start = time.perf_counter()
                os.fsync(self._file.fileno())
                fsync_elapsed = time.perf_counter() - fsync_start
            self._appended += 1
            seq = self._seq
        if self._m_append_seconds is not None:
            self._m_append_seconds.observe(time.perf_counter() - start)
            self._m_appended_bytes.inc(len(frame))
            if self._fsync:
                self._m_fsync_seconds.observe(fsync_elapsed)
        return seq

    def rotate(self) -> None:
        """Truncate the log (its records are now covered by a checkpoint)."""
        with self._lock:
            self._file.close()
            self._file = open(self._path, "wb")  # noqa: SIM115 - long-lived appender handle
            if self._fsync:
                self._file.flush()
                os.fsync(self._file.fileno())
            self._appended = 0

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                if self._fsync:
                    os.fsync(self._file.fileno())
                self._file.close()

    def __enter__(self) -> WriteAheadLog:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def records(self) -> Iterator[WalRecord]:
        """Decode the log's intact records (flushes buffered appends first)."""
        with self._lock:
            if not self._file.closed:
                self._file.flush()
        records, _ = replay_wal(self._path)
        return iter(records)
