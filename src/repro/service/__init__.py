"""Statistics service: concurrent multi-attribute histogram serving.

The paper's dynamic histograms live inside a DBMS catalog where they serve
selectivity estimates for many attributes at once while updates stream in.
This package is that serving layer:

* :class:`~repro.service.store.HistogramStore` -- a thread-safe catalog of
  named dynamic histograms with per-attribute locking, generation counters,
  consistent batched queries, and snapshot/restore built on
  :mod:`repro.persistence`;
* :class:`~repro.service.ingest.IngestPipeline` -- a batching write pipeline
  that buffers per-attribute inserts/deletes and flushes through the
  vectorised ``insert_many`` path on size or time triggers;
* :class:`~repro.service.server.StatisticsServer` /
  :class:`~repro.service.client.StatisticsClient` -- a stdlib-only JSON HTTP
  API (``ThreadingHTTPServer``) exposing create / ingest / estimate /
  snapshot / restore, and the matching client;
* :class:`~repro.service.wal.WriteAheadLog` /
  :class:`~repro.service.wal.DurabilityConfig` -- opt-in crash durability:
  mutations are logged before they are applied, periodic compaction rewrites
  the log as a checkpoint plus tail, and ``HistogramStore.recover`` replays
  them back to the exact pre-crash state (torn tails tolerated).
"""

from .client import StatisticsClient
from .ingest import IngestPipeline
from .server import StatisticsServer
from .store import AttributeStats, HistogramStore
from .wal import DurabilityConfig, WriteAheadLog

__all__ = [
    "AttributeStats",
    "DurabilityConfig",
    "HistogramStore",
    "IngestPipeline",
    "StatisticsServer",
    "StatisticsClient",
    "WriteAheadLog",
]
