"""Stdlib-only JSON HTTP server for the statistics service.

Exposes a :class:`~repro.service.store.HistogramStore` over HTTP using
``http.server.ThreadingHTTPServer`` -- one thread per connection, which is
exactly the concurrency shape the store's per-attribute locking is built for.
No third-party dependencies.

Routes (all payloads JSON):

====== ================================== ===========================================
Method Path                               Meaning
====== ================================== ===========================================
GET    /health                            liveness + attribute count
GET    /metrics                           Prometheus text exposition (when enabled)
GET    /stats                             stats of every attribute (+ pipeline counters)
GET    /attributes                        same as /stats
POST   /attributes                        create an attribute
GET    /attributes/<name>                 stats of one attribute
DELETE /attributes/<name>                 drop an attribute
POST   /attributes/<name>/ingest          {"insert": [..], "delete": [..]}
POST   /attributes/<name>/estimate        {"queries": [{"op": ...}, ...]}
GET    /attributes/<name>/estimate        single query via query string
GET    /attributes/<name>/snapshot        full serialised state
POST   /attributes/<name>/restore         restore from a snapshot payload
====== ================================== ===========================================

Estimate batches are evaluated under one store lock acquisition
(:meth:`HistogramStore.query`), so one response is always internally
consistent.  When the server is constructed with an
:class:`~repro.service.ingest.IngestPipeline`, ingest requests are buffered
through it (the response reports ``"buffered": true``); otherwise they are
applied synchronously before the response is sent.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, unquote, urlparse

from ..exceptions import (
    ConfigurationError,
    DuplicateAttributeError,
    HistogramError,
    UnknownAttributeError,
)
from ..obs.process import ProcessTelemetry
from ..obs.profile import DEFAULT_SAMPLE_INTERVAL_S, SamplingProfiler
from ..obs.registry import MetricsRegistry
from ..obs.trace import TRACE_HEADER, RequestObserver, route_label, use_trace
from .ingest import IngestPipeline
from .store import HistogramStore

__all__ = ["StatisticsServer"]

#: The exposition content type Prometheus scrapers expect.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's store."""

    server_version = "repro-statistics/1.0"
    protocol_version = "HTTP/1.1"

    # Set by StatisticsServer when building the handler class.
    store: HistogramStore
    pipeline: IngestPipeline | None = None
    quiet: bool = True
    metrics: MetricsRegistry | None = None
    observer: RequestObserver | None = None
    process_telemetry: ProcessTelemetry | None = None
    profiler: SamplingProfiler | None = None

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json")

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_body(status, text.encode("utf-8"), content_type)

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self._status_sent = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            # Echo the request's trace id so callers can correlate responses
            # with the slow-request log.
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _route(self) -> tuple[str, ...]:
        parsed = urlparse(self.path)
        parts = tuple(unquote(part) for part in parsed.path.split("/") if part)
        return parts

    def _query_params(self) -> dict[str, str]:
        parsed = urlparse(self.path)
        return {key: values[-1] for key, values in parse_qs(parsed.query).items()}

    def _handle(self, method: str) -> None:
        observer = self.observer
        trace = None
        start = 0.0
        self._status_sent = 0
        self._trace_id = None
        if observer is not None:
            trace = observer.begin(self.headers.get(TRACE_HEADER))
            if trace is not None:
                self._trace_id = trace.trace_id
            start = time.perf_counter()
        # use_trace(None) is a no-op context, so the untraced path pays only
        # one threading.local store/restore.
        with use_trace(trace):
            self._handle_inner(method)
        if observer is not None:
            observer.finish(
                trace,
                method=method,
                route=route_label(self._route()),
                status=self._status_sent,
                elapsed_s=time.perf_counter() - start,
            )

    def _handle_inner(self, method: str) -> None:
        try:
            payload = self._read_json() if method in ("POST", "PUT") else {}
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}"})
            return
        try:
            self._dispatch(method, self._route(), payload)
        except UnknownAttributeError as error:
            # `name` is the structured field clients parse; the message is
            # for humans (its quoting is not a stable contract).
            self._send_json(404, {"error": str(error), "name": error.name})
        except DuplicateAttributeError as error:
            self._send_json(409, {"error": str(error)})
        except (HistogramError, KeyError, TypeError, ValueError) as error:
            self._send_json(400, {"error": f"{type(error).__name__}: {error}"})
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(error).__name__}: {error}"})

    def do_GET(self) -> None:  # noqa: N802
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _dispatch(self, method: str, route: tuple[str, ...], payload: dict[str, Any]) -> None:
        store = self.store
        if route == ("health",) and method == "GET":
            self._send_json(200, {"status": "ok", "attributes": len(store)})
            return
        if route == ("metrics",) and method == "GET":
            if self.metrics is None:
                self._send_json(404, {"error": "metrics are not enabled on this server"})
            else:
                if self.process_telemetry is not None:
                    # Refresh the process vitals gauges (RSS/GC/threads/
                    # uptime) so every scrape carries current values.
                    self.process_telemetry.update()
                self._send_text(200, self.metrics.render(), METRICS_CONTENT_TYPE)
            return
        if route == ("profile",) and method == "GET":
            if self.profiler is None:
                self._send_json(
                    404, {"error": "profiling is not enabled on this server"}
                )
            else:
                self._send_json(200, self.profiler.attribution())
            return
        if route in (("stats",), ("attributes",)) and method == "GET":
            body: dict[str, Any] = {
                "attributes": [stats.to_dict() for stats in store.stats_all()]
            }
            # /stats is the operator surface: it also reports the ingest
            # pipeline's lifetime counters (requeued/dropped make the
            # bounded-undercount policy visible).
            if route == ("stats",) and self.pipeline is not None:
                body["pipeline"] = self.pipeline.stats
            self._send_json(200, body)
            return
        if route == ("attributes",) and method == "POST":
            stats = store.create(
                payload["name"],
                payload.get("kind", "dc"),
                memory_kb=float(payload.get("memory_kb", 1.0)),
                value_unit=float(payload.get("value_unit", 1.0)),
                disk_factor=float(payload.get("disk_factor", 20.0)),
                seed=int(payload.get("seed", 0)),
                exist_ok=bool(payload.get("exist_ok", False)),
            )
            self._send_json(201, stats.to_dict())
            return
        if len(route) == 2 and route[0] == "attributes":
            name = route[1]
            if method == "GET":
                self._send_json(200, store.stats(name).to_dict())
                return
            if method == "DELETE":
                store.drop(name)
                self._send_json(200, {"dropped": name})
                return
        if len(route) == 3 and route[0] == "attributes":
            name, action = route[1], route[2]
            if action == "ingest" and method == "POST":
                self._ingest(name, payload)
                return
            if action == "estimate":
                if method == "POST":
                    queries = payload.get("queries")
                    if not isinstance(queries, list):
                        raise ValueError('estimate body must contain a "queries" list')
                    self._send_json(200, store.query(name, queries))
                    return
                if method == "GET":
                    query = {
                        key: (value if key == "op" else float(value))
                        for key, value in self._query_params().items()
                    }
                    response = store.query(name, [query])
                    self._send_json(
                        200,
                        {"generation": response["generation"],
                         "result": response["results"][0]},
                    )
                    return
            if action == "snapshot" and method == "GET":
                self._send_json(200, store.snapshot(name))
                return
            if action == "restore" and method == "POST":
                snapshot = payload.get("snapshot", payload)
                self._send_json(200, store.restore(name, snapshot).to_dict())
                return
        self._send_json(404, {"error": f"no route for {method} {self.path}"})

    def _ingest(self, name: str, payload: dict[str, Any]) -> None:
        inserts = payload.get("insert") or []
        deletes = payload.get("delete") or []
        if not isinstance(inserts, list) or not isinstance(deletes, list):
            raise ValueError('"insert" and "delete" must be JSON arrays of numbers')
        if name not in self.store:
            raise UnknownAttributeError(name)
        if self.pipeline is not None:
            self.pipeline.submit(name, inserts)
            self.pipeline.submit_delete(name, deletes)
            self._send_json(
                202,
                {
                    "buffered": True,
                    "inserted": len(inserts),
                    "deleted": len(deletes),
                    "pending": self.pipeline.pending_count(name),
                },
            )
            return
        try:
            inserted = self.store.insert(name, inserts)
        except ConfigurationError:
            # Boundary validation rejects the batch before any mutation, so
            # the generic 400 handler is accurate here.
            raise
        except HistogramError as error:
            # insert_many cannot report how much of the batch was applied;
            # flag the partial apply and return the new generation so clients
            # know not to blindly retry.
            self._send_json(
                400,
                {
                    "error": f"{type(error).__name__}: {error}",
                    "partial": True,
                    "generation": self.store.stats(name).generation,
                },
            )
            return
        try:
            deleted = self.store.delete(name, deletes)
        except HistogramError as error:
            # The insert half is already committed; a plain 400 would invite
            # the client to retry the whole batch and double-insert, so the
            # error response reports what was applied.
            self._send_json(
                400,
                {
                    "error": f"{type(error).__name__}: {error}",
                    "partial": True,
                    "inserted": inserted,
                    "generation": self.store.stats(name).generation,
                },
            )
            return
        self._send_json(
            200,
            {
                "buffered": False,
                "inserted": inserted,
                "deleted": deleted,
                "generation": self.store.stats(name).generation,
            },
        )


class StatisticsServer:
    """A threaded HTTP façade over a :class:`HistogramStore`.

    ``port=0`` binds an ephemeral port (the default, right for tests); the
    bound address is available as :attr:`address` after :meth:`start`.  The
    server runs in a daemon thread, so it never blocks interpreter exit; use
    :meth:`serve_forever` to run it in the foreground instead (the CLI does).

    Also usable as a context manager: entering starts the server, leaving
    stops it and closes the ingest pipeline (when one was supplied).
    """

    def __init__(
        self,
        store: HistogramStore | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        pipeline: IngestPipeline | None = None,
        quiet: bool = True,
        metrics: MetricsRegistry | None = None,
        slow_request_ms: float | None = None,
        trace: bool = False,
        trace_sink: Any | None = None,
        profile: bool | float = False,
    ) -> None:
        self.store = store if store is not None else HistogramStore()
        self.pipeline = pipeline
        # The server reports into the store's registry by default, so one
        # scrape covers HTTP, store, WAL and pipeline metrics; tracing or a
        # slow-request threshold forces a registry into existence.
        registry = metrics if metrics is not None else self.store.metrics
        if registry is None and (trace or slow_request_ms is not None):
            registry = MetricsRegistry()
        self.metrics = registry
        observer = None
        if registry is not None:
            observer = RequestObserver(
                registry,
                server_label="service",
                slow_request_ms=slow_request_ms,
                trace=trace,
                sink=trace_sink,
            )
        # profile=True samples at the default interval; a float is an
        # explicit sampling interval in seconds.  The profiler runs for the
        # server's whole lifetime and GET /profile reports the collapsed
        # hot-path attribution so far.
        self.profiler: SamplingProfiler | None = None
        if profile:
            interval = (
                DEFAULT_SAMPLE_INTERVAL_S if profile is True else float(profile)
            )
            self.profiler = SamplingProfiler(interval)
        telemetry = ProcessTelemetry(registry) if registry is not None else None
        handler = type(
            "_BoundServiceRequestHandler",
            (_ServiceRequestHandler,),
            {
                "store": self.store,
                "pipeline": pipeline,
                "quiet": quiet,
                "metrics": registry,
                "observer": observer,
                "process_telemetry": telemetry,
                "profiler": self.profiler,
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._started = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` pair."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> StatisticsServer:
        """Serve requests from a background daemon thread."""
        if self._thread is None:
            if self.pipeline is not None:
                self.pipeline.start()
            if self.profiler is not None:
                self.profiler.start()
            self._started = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-statistics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until interrupted."""
        if self.pipeline is not None:
            self.pipeline.start()
        if self.profiler is not None:
            self.profiler.start()
        self._started = True
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop serving, close the socket and drain the ingest pipeline.

        Safe to call on a server that was constructed but never started:
        ``BaseServer.shutdown`` would block forever waiting for a
        ``serve_forever`` loop that never ran, so it is only invoked after a
        start, while the bound socket is always closed.
        """
        if self._started:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self.profiler is not None:
            self.profiler.stop()
        if self.pipeline is not None:
            self.pipeline.close()

    def __enter__(self) -> StatisticsServer:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
