"""Stdlib HTTP client for the statistics service.

A thin JSON wrapper over :mod:`http.client` mirroring every server route, so
tests (and the CLI's ``store-stats`` command) can drive an in-process
:class:`~repro.service.server.StatisticsServer` without third-party
dependencies.  Each call opens its own connection, which makes the client
trivially safe to share between threads.

Attribute names are URL-escaped with :func:`urllib.parse.quote` (``safe=''``),
so names containing ``/``, spaces or ``%`` route correctly; the server
unquotes each path segment on the way in.

Connection failures are retried with bounded exponential backoff (the cluster
coordinator's scatter-gather fan-out hits shards that may still be binding or
briefly restarting).  Retries never risk double-applying a write: a *connect*
failure is always retriable because nothing reached the server, while a
failure after the request was handed to the transport is only retried for
idempotent ``GET`` requests -- a ``POST`` whose fate is unknown is raised
immediately so the caller decides.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.client import HTTPConnection, HTTPException
from collections.abc import Mapping, Sequence
from typing import Any
from urllib.parse import quote

from .._validation import require_positive_float
from ..exceptions import ServiceError, UnknownAttributeError
from ..obs.trace import TRACE_HEADER, current_trace_id

__all__ = ["StatisticsClient"]


class StatisticsClient:
    """Client for a running :class:`StatisticsServer` at ``host:port``.

    Parameters
    ----------
    retries:
        Additional attempts after a retriable transport failure (0 disables
        retrying; default 2, i.e. up to 3 connection attempts).
    retry_backoff:
        Sleep before the first retry, doubled on each subsequent one.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retries:
            require_positive_float(retry_backoff, "retry_backoff")
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        # Transport telemetry: connect-retry attempts and total backoff time.
        # Always kept as a client-side stat; additionally mirrored into a
        # metrics registry after bind_metrics() (RemoteShard does this so the
        # coordinator's registry sees per-endpoint retry behaviour).
        self.transport_stats = {"connect_retries": 0, "backoff_seconds": 0.0}
        self._stats_lock = threading.Lock()
        self._m_connect_retries: Any | None = None
        self._m_backoff_seconds: Any | None = None
        self._endpoint = f"{host}:{port}"

    def bind_metrics(self, metrics: Any) -> None:
        """Mirror transport stats into ``metrics`` with an endpoint label."""
        self._m_connect_retries = metrics.counter(
            "repro_client_connect_retries_total",
            "Connection attempts that failed and were retried, per endpoint",
            labelnames=("endpoint",),
        )
        self._m_backoff_seconds = metrics.counter(
            "repro_client_retry_backoff_seconds_total",
            "Total time slept in retry backoff, per endpoint",
            labelnames=("endpoint",),
        )

    def _record_connect_failure(self) -> None:
        with self._stats_lock:
            self.transport_stats["connect_retries"] += 1
        if self._m_connect_retries is not None:
            self._m_connect_retries.inc(1, endpoint=self._endpoint)

    def _record_backoff(self, pause: float) -> None:
        with self._stats_lock:
            self.transport_stats["backoff_seconds"] += pause
        if self._m_backoff_seconds is not None:
            self._m_backoff_seconds.inc(pause, endpoint=self._endpoint)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _raw_request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, bytes]:
        headers = dict(headers or {})
        # Propagate the active trace so one id follows the request through
        # coordinator fan-out legs down to each shard's request log.
        trace_id = current_trace_id()
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                pause = self.retry_backoff * (2 ** (attempt - 1))
                self._record_backoff(pause)
                time.sleep(pause)
            connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
            try:
                try:
                    # Connect separately from sending: a failure here cannot
                    # have reached the server, so it is always safe to retry.
                    connection.connect()
                except OSError as error:
                    self._record_connect_failure()
                    last_error = error
                    continue
                try:
                    connection.request(method, path, body=body, headers=headers)
                    response = connection.getresponse()
                    raw = response.read()
                except (OSError, HTTPException) as error:
                    # The request may or may not have been processed; only an
                    # idempotent GET can be retried without double-applying.
                    if method != "GET":
                        raise
                    last_error = error
                    continue
            finally:
                connection.close()
            return response.status, raw
        assert last_error is not None
        raise last_error

    def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, raw = self._raw_request(method, path, body, headers)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if status >= 400:
            message = decoded.get("error", f"HTTP {status}")
            if status == 404 and "unknown attribute" in str(message):
                raise UnknownAttributeError(
                    self._unknown_attribute_name(decoded, str(message))
                )
            error = ServiceError(f"HTTP {status}: {message}")
            # Expose the structured body (e.g. partial-apply reports from
            # /ingest) to callers that need more than the message.
            error.payload = decoded
            raise error
        return decoded

    @staticmethod
    def _unknown_attribute_name(decoded: Mapping[str, Any], message: str) -> str:
        """Best-effort attribute name from a 404 body.

        Prefers the server's structured ``name`` field; falls back to the
        first quoted token of the human-readable message.  A body without
        either (an old server, a proxy error page that happens to contain
        the trigger phrase) yields the whole message rather than crashing
        the client on a parse assumption.
        """
        name = decoded.get("name")
        if isinstance(name, str) and name:
            return name
        match = re.search(r"'([^']*)'", message)
        if match is not None:
            return match.group(1)
        return message

    @staticmethod
    def _attribute_path(name: str, action: str = "") -> str:
        path = f"/attributes/{quote(name, safe='')}"
        return f"{path}/{action}" if action else path

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """Liveness probe."""
        return self._request("GET", "/health")

    def metrics_text(self) -> str:
        """Fetch the Prometheus text exposition (``GET /metrics``) verbatim."""
        status, raw = self._raw_request("GET", "/metrics")
        text = raw.decode("utf-8")
        if status >= 400:
            raise ServiceError(f"HTTP {status}: {text.strip()}")
        return text

    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
    ) -> dict[str, Any]:
        """Create an attribute on the server; returns its stats."""
        return self._request(
            "POST",
            "/attributes",
            {
                "name": name,
                "kind": kind,
                "memory_kb": memory_kb,
                "value_unit": value_unit,
                "disk_factor": disk_factor,
                "seed": seed,
                "exist_ok": exist_ok,
            },
        )

    def drop(self, name: str) -> dict[str, Any]:
        """Drop an attribute."""
        return self._request("DELETE", self._attribute_path(name))

    def stats(self, name: str | None = None) -> dict[str, Any]:
        """Stats of one attribute, or of every attribute when ``name`` is None."""
        if name is None:
            return self._request("GET", "/stats")
        return self._request("GET", self._attribute_path(name))

    def ingest(
        self,
        name: str,
        insert: Sequence[float] = (),
        delete: Sequence[float] = (),
    ) -> dict[str, Any]:
        """Send a batch of inserts and/or deletes for one attribute."""
        return self._request(
            "POST",
            self._attribute_path(name, "ingest"),
            {"insert": list(insert), "delete": list(delete)},
        )

    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """Evaluate a consistent batch of estimate queries (one lock on the server)."""
        return self._request(
            "POST", self._attribute_path(name, "estimate"), {"queries": list(queries)}
        )

    def estimate_range(self, name: str, low: float, high: float) -> float:
        """Estimated number of values in the closed range [low, high]."""
        response = self.query(name, [{"op": "range", "low": low, "high": high}])
        return float(response["results"][0])

    def estimate_equal(self, name: str, value: float) -> float:
        """Estimated number of values equal to ``value``."""
        response = self.query(name, [{"op": "equal", "value": value}])
        return float(response["results"][0])

    def cdf(self, name: str, xs: Sequence[float]) -> list[float]:
        """Approximate CDF evaluated at each point of ``xs``."""
        response = self.query(name, [{"op": "cdf", "xs": list(xs)}])
        return [float(v) for v in response["results"][0]]

    def total_count(self, name: str) -> float:
        """Total number of values represented for ``name``."""
        response = self.query(name, [{"op": "total"}])
        return float(response["results"][0])

    def snapshot(self, name: str) -> dict[str, Any]:
        """Fetch the full serialised state of one attribute."""
        return self._request("GET", self._attribute_path(name, "snapshot"))

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> dict[str, Any]:
        """Restore an attribute from a :meth:`snapshot` payload."""
        return self._request(
            "POST", self._attribute_path(name, "restore"), {"snapshot": dict(snapshot)}
        )
