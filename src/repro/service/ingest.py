"""Batched write pipeline for the statistics service.

Per-value inserts against a :class:`~repro.service.store.HistogramStore` pay a
registry lookup, a lock round-trip and a maintenance check for every single
value.  The :class:`IngestPipeline` amortises all three: submitted values are
buffered per attribute and flushed through the store's bulk paths
(``insert_many`` with a maintenance batching interval; delete runs through
the equally vectorised ``delete_many``) when

* an attribute's buffer reaches ``max_batch`` pending operations
  (*size trigger*), or
* :meth:`flush` is called explicitly, or
* the optional background flusher fires every ``auto_flush_interval`` seconds
  (*time trigger*), bounding the staleness of the served estimates.

Ordering: within one attribute, operations are applied in submission order
(interleaved inserts and deletes are preserved as separate runs); each
attribute buffer has its own lock, held across its flush, so concurrent
flushes of the same attribute cannot reorder and different attributes flush in
parallel.

Durability: when the backing store was configured with a
:class:`~repro.service.wal.DurabilityConfig`, every flushed run is appended
to the store's write-ahead log *before* it is applied (inside the attribute
lock that orders the apply), so a crash mid-flush loses at most the still
buffered -- never the acknowledged-as-flushed -- operations, and
``HistogramStore.recover`` replays the flushed runs exactly.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable

from .._validation import require_positive_float, require_positive_int
from ..exceptions import UnknownAttributeError
from .store import HistogramStore

__all__ = ["IngestPipeline"]

_INSERT = "insert"
_DELETE = "delete"


class _Buffer:
    """Pending operation runs plus lifetime counters for one attribute.

    The counters live on the buffer (not the pipeline) so they are only ever
    mutated under this buffer's lock; pipeline-level stats aggregate them.
    """

    __slots__ = (
        "lock",
        "runs",
        "pending",
        "submitted",
        "flushed_values",
        "flushed_batches",
        "flush_errors",
        "requeued_values",
        "dropped_values",
    )

    def __init__(self) -> None:
        self.lock = threading.Lock()
        # Consecutive same-kind operations collapse into one run, so a pure
        # insert stream flushes as a single insert_many call.
        self.runs: list[tuple[str, list[float]]] = []
        self.pending = 0
        self.submitted = 0
        self.flushed_values = 0
        self.flushed_batches = 0
        self.flush_errors = 0
        self.requeued_values = 0
        self.dropped_values = 0


class IngestPipeline:
    """Buffers inserts/deletes per attribute and flushes them in batches.

    Parameters
    ----------
    store:
        The target :class:`HistogramStore`.
    max_batch:
        Size trigger: an attribute buffer is flushed as soon as it holds this
        many pending operations (default 1024).
    auto_flush_interval:
        Optional time trigger in seconds.  When set, :meth:`start` (or the
        context manager) runs a daemon thread that flushes every buffered
        attribute at this cadence, so estimates never lag a slow stream by
        more than roughly one interval.
    repartition_interval:
        Maintenance batching hint forwarded to the store's bulk-insert path;
        ``None`` uses the store default.

    The pipeline is a context manager: leaving the ``with`` block flushes all
    buffers and stops the background flusher.
    """

    def __init__(
        self,
        store: HistogramStore,
        *,
        max_batch: int = 1024,
        auto_flush_interval: float | None = None,
        repartition_interval: int | None = None,
        metrics: object | None = None,
    ) -> None:
        require_positive_int(max_batch, "max_batch")
        if auto_flush_interval is not None:
            require_positive_float(auto_flush_interval, "auto_flush_interval")
        self._store = store
        self._max_batch = max_batch
        self._auto_flush_interval = auto_flush_interval
        self._repartition_interval = repartition_interval
        self._buffers_lock = threading.Lock()
        self._buffers: dict[str, _Buffer] = {}
        self._stop_event = threading.Event()
        self._flusher: threading.Thread | None = None
        self._close_lock = threading.Lock()
        # Optional observability.  Flush metrics are recorded under the
        # buffer lock, which is safe by the repro.obs contract (metric locks
        # are leaves) and keeps the counters in lockstep with the buffer's
        # own lifetime stats.
        self._m_flush_seconds = None
        self._m_flush_values = None
        self._m_flushed = None
        self._m_requeued = None
        self._m_dropped = None
        self._m_flush_errors = None
        if metrics is not None:
            from ..obs.registry import LATENCY_BUCKETS_S, SIZE_BUCKETS

            self._m_flush_seconds = metrics.distribution(
                "repro_pipeline_flush_seconds",
                "Wall time of one attribute-buffer flush",
                LATENCY_BUCKETS_S,
            )
            self._m_flush_values = metrics.distribution(
                "repro_pipeline_flush_batch_values",
                "Pending values drained by one buffer flush",
                SIZE_BUCKETS,
            )
            self._m_flushed = metrics.counter(
                "repro_pipeline_flushed_values_total",
                "Values applied to the store by pipeline flushes",
            )
            self._m_requeued = metrics.counter(
                "repro_pipeline_requeued_values_total",
                "Values requeued after a failed flush (known-unapplied tail)",
            )
            self._m_dropped = metrics.counter(
                "repro_pipeline_dropped_values_total",
                "Values dropped by the bounded-undercount failure policy",
            )
            self._m_flush_errors = metrics.counter(
                "repro_pipeline_flush_errors_total",
                "Buffer flushes that hit an error",
            )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, name: str, values: Iterable[float]) -> None:
        """Queue values for insertion into attribute ``name``."""
        self._enqueue(name, _INSERT, values)

    def submit_delete(self, name: str, values: Iterable[float]) -> None:
        """Queue values for deletion from attribute ``name``."""
        self._enqueue(name, _DELETE, values)

    def _buffer(self, name: str) -> _Buffer:
        # Lock-free fast path: dict reads are atomic under the GIL, and a
        # buffer is never removed once created.
        buffer = self._buffers.get(name)
        if buffer is None:
            with self._buffers_lock:
                buffer = self._buffers.setdefault(name, _Buffer())
        return buffer

    def _enqueue(self, name: str, op: str, values: Iterable[float]) -> None:
        # Values are buffered as-is; the store coerces to float on flush, so
        # the per-submit hot path stays allocation-light.
        values = list(values)
        if not values:
            return
        buffer = self._buffer(name)
        with buffer.lock:
            if buffer.runs and buffer.runs[-1][0] == op:
                buffer.runs[-1][1].extend(values)
            else:
                buffer.runs.append((op, values))
            buffer.pending += len(values)
            buffer.submitted += len(values)
            if buffer.pending >= self._max_batch:
                self._flush_buffer_locked(name, buffer)

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def _flush_buffer_locked(self, name: str, buffer: _Buffer) -> int:
        """Apply a buffer's runs to the store.  Caller holds ``buffer.lock``.

        Failure handling keeps the pipeline alive without re-applying work:

        * :class:`UnknownAttributeError` (the attribute was dropped) discards
          the remaining runs -- dropping an attribute discards its pending
          stream;
        * any other error re-queues only operations *known to be unapplied*
          at the front of the buffer and propagates to the caller.  When the
          failing run reports how far it got (``applied_count`` on partial
          delete batches), the already-applied prefix is not requeued
          and the poisoned value itself is dropped -- retrying it would fail
          forever.  When progress is unknown (a failing insert batch, or a
          batch rejected by boundary validation), the failing run is dropped
          entirely: requeueing could double-apply an applied prefix on the
          next retry, and for a statistics service a bounded undercount beats
          unbounded count inflation.
        """
        start = time.perf_counter()
        runs, buffer.runs = buffer.runs, []
        drained = buffer.pending
        buffer.pending = 0
        applied = 0
        requeued_count = 0
        dropped_count = 0
        errored = False
        try:
            for run_index, (op, values) in enumerate(runs):
                try:
                    if op == _INSERT:
                        self._store.insert(
                            name, values, repartition_interval=self._repartition_interval
                        )
                    else:
                        self._store.delete(name, values)
                except UnknownAttributeError:
                    buffer.flush_errors += 1
                    errored = True
                    dropped_count = sum(
                        len(run_values) for _, run_values in runs[run_index:]
                    )
                    return applied
                except Exception as error:
                    buffer.flush_errors += 1
                    errored = True
                    requeued = list(runs[run_index + 1 :])
                    applied_count = getattr(error, "applied_count", None)
                    if applied_count is not None:
                        applied += applied_count
                        buffer.flushed_values += applied_count
                        remainder = values[applied_count + 1 :]
                        # The poisoned value itself is the one dropped.
                        dropped_count = 1
                        if remainder:
                            requeued.insert(0, (op, remainder))
                    else:
                        # Progress unknown -- drop the run (see docstring).
                        dropped_count = len(values)
                    buffer.runs = requeued + buffer.runs
                    requeued_count = sum(
                        len(run_values) for _, run_values in requeued
                    )
                    buffer.pending += requeued_count
                    raise
                except BaseException:
                    # KeyboardInterrupt / SystemExit mid-apply: progress
                    # through the interrupted run is unknown, so it is
                    # dropped (the bounded-undercount policy above), but the
                    # untouched tail is requeued instead of vanishing with
                    # the detached `runs` list -- a Ctrl-C must never
                    # silently lose values that were never attempted.
                    buffer.flush_errors += 1
                    errored = True
                    requeued = list(runs[run_index + 1 :])
                    dropped_count = len(values)
                    buffer.runs = requeued + buffer.runs
                    requeued_count = sum(
                        len(run_values) for _, run_values in requeued
                    )
                    buffer.pending += requeued_count
                    raise
                applied += len(values)
                buffer.flushed_values += len(values)
                buffer.flushed_batches += 1
            return applied
        finally:
            buffer.requeued_values += requeued_count
            buffer.dropped_values += dropped_count
            if self._m_flush_seconds is not None:
                self._m_flush_seconds.observe(time.perf_counter() - start)
                self._m_flush_values.observe(drained)
                if applied:
                    self._m_flushed.inc(applied)
                if requeued_count:
                    self._m_requeued.inc(requeued_count)
                if dropped_count:
                    self._m_dropped.inc(dropped_count)
                if errored:
                    self._m_flush_errors.inc()

    def flush(self, name: str | None = None) -> int:
        """Flush one attribute's buffer (or all); returns the values applied.

        Flushing all isolates per-attribute failures: every buffer is
        attempted, and the first error (if any) is re-raised afterwards.
        """
        if name is not None:
            buffer = self._buffer(name)
            with buffer.lock:
                return self._flush_buffer_locked(name, buffer)
        with self._buffers_lock:
            names = list(self._buffers)
        total = 0
        first_error: BaseException | None = None
        for pending_name in names:
            try:
                total += self.flush(pending_name)
            except Exception as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return total

    def pending_count(self, name: str | None = None) -> int:
        """Number of buffered, not-yet-applied operations."""
        if name is not None:
            buffer = self._buffer(name)
            with buffer.lock:
                return buffer.pending
        with self._buffers_lock:
            buffers = list(self._buffers.values())
        return sum(buffer.pending for buffer in buffers)

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime counters: submitted / flushed values and flush batches."""
        with self._buffers_lock:
            buffers = list(self._buffers.values())
        return {
            "submitted": sum(buffer.submitted for buffer in buffers),
            "flushed_values": sum(buffer.flushed_values for buffer in buffers),
            "flushed_batches": sum(buffer.flushed_batches for buffer in buffers),
            "pending": sum(buffer.pending for buffer in buffers),
            "flush_errors": sum(buffer.flush_errors for buffer in buffers),
            "requeued_values": sum(buffer.requeued_values for buffer in buffers),
            "dropped_values": sum(buffer.dropped_values for buffer in buffers),
        }

    # ------------------------------------------------------------------
    # background flusher / lifecycle
    # ------------------------------------------------------------------
    def start(self) -> IngestPipeline:
        """Start the background time-trigger flusher (no-op without one)."""
        if self._auto_flush_interval is None or self._flusher is not None:
            return self
        self._stop_event.clear()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-ingest-flusher", daemon=True
        )
        self._flusher.start()
        return self

    def _flush_loop(self) -> None:
        assert self._auto_flush_interval is not None
        while not self._stop_event.wait(self._auto_flush_interval):
            try:
                self.flush()
            except Exception:
                # A failing attribute must not kill the flusher: its runs were
                # re-queued by _flush_buffer_locked and will be retried next
                # tick, with the failure recorded in the flush_errors stat.
                continue

    def close(self) -> None:
        """Stop the background flusher and drain every buffer.

        Idempotent and safe to call from concurrent threads (a signal
        handler racing an ``atexit`` hook): exactly one caller detaches and
        joins the flusher thread -- the detach happens under a lock so no
        caller can observe ``self._flusher`` half-torn-down -- and a drain
        interrupted by :exc:`KeyboardInterrupt` requeues its unapplied tail
        (see :meth:`_flush_buffer_locked`), so calling ``close`` again
        finishes the drain rather than double-applying anything.
        """
        self._stop_event.set()
        with self._close_lock:
            flusher, self._flusher = self._flusher, None
        if flusher is not None:
            flusher.join()
        self.flush()

    def __enter__(self) -> IngestPipeline:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
