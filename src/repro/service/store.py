"""Thread-safe multi-attribute histogram store (the service catalog).

A live DBMS catalog keeps one dynamic histogram per indexed attribute and
serves selectivity estimates while the histograms are being maintained.  The
:class:`HistogramStore` is that catalog: a mapping from attribute names to
dynamic histograms (built through :func:`repro.core.factory.build_dynamic_histogram`)
with the concurrency machinery a multi-threaded server needs.

Locking model
-------------

* a store-level lock guards the *registry* (the name -> attribute mapping);
  ``create`` / ``drop`` / ``names`` take it briefly;
* every attribute carries its own reentrant lock; all reads and writes against
  one attribute serialise on that lock, while operations on *different*
  attributes run fully in parallel;
* reads must lock too: estimation lazily rebuilds the cached
  :class:`~repro.core.segment_view.SegmentView` after a mutation, so an
  unlocked read could observe a half-updated histogram.  Because the view is
  rebuilt at most once per generation, the read critical sections are O(log B)
  after the first read.

Every mutation bumps the attribute's *generation* counter, so clients can
detect staleness across snapshot/restore cycles, and :meth:`HistogramStore.query`
evaluates a whole batch of estimates under one lock acquisition -- the result
list is guaranteed to describe a single histogram state (no torn estimates).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .._validation import require_positive_int
from ..core.base import DynamicHistogram
from ..core.factory import build_dynamic_histogram
from ..core.memory import MemoryModel
from ..exceptions import (
    ConfigurationError,
    DuplicateAttributeError,
    EmptyHistogramError,
    UnknownAttributeError,
)
from ..persistence import histogram_from_dict, histogram_to_dict

__all__ = [
    "AttributeStats",
    "HistogramStore",
    "DEFAULT_REPARTITION_INTERVAL",
    "evaluate_queries",
]

#: Default maintenance batching hint used by the store's bulk-insert path.
DEFAULT_REPARTITION_INTERVAL = 16


def _validated_values(values: Iterable[float]) -> List[float]:
    """Coerce to floats and reject non-finite values *before* any mutation.

    JSON parsers happily produce NaN/Infinity, and a NaN silently corrupts
    bucket search while an infinity creates a permanent unbounded end bucket;
    rejecting here keeps the failure at the service boundary, where nothing
    has been applied yet.
    """
    result = [float(v) for v in values]
    for value in result:
        if not math.isfinite(value):
            raise ConfigurationError(f"values must be finite, got {value!r}")
    return result


def evaluate_queries(histogram: Any, queries: Sequence[Mapping[str, Any]]) -> List[Any]:
    """Evaluate a batch of estimate queries against one histogram.

    The query language of :meth:`HistogramStore.query` (ops ``range`` /
    ``equal`` / ``cdf`` / ``total`` / ``selectivity``), shared with the
    cluster coordinator, which evaluates the same batches against merged
    global histograms.  Consistency is the *caller's* concern: the store runs
    this under the attribute lock, the coordinator against an immutable
    merged snapshot.
    """
    results: List[Any] = []
    for query in queries:
        op = query.get("op")
        if op == "range":
            results.append(
                float(histogram.estimate_range(float(query["low"]), float(query["high"])))
            )
        elif op == "equal":
            results.append(
                float(
                    histogram.estimate_equal(
                        float(query["value"]),
                        value_granularity=float(query.get("value_granularity", 1.0)),
                    )
                )
            )
        elif op == "cdf":
            xs = np.asarray(query["xs"], dtype=float)
            results.append([float(v) for v in histogram.cdf_many(xs)])
        elif op == "total":
            results.append(float(histogram.total_count))
        elif op == "selectivity":
            results.append(
                float(histogram.estimate_selectivity(float(query["low"]), float(query["high"])))
            )
        else:
            raise ConfigurationError(f"unknown estimate op {op!r}")
    return results


@dataclass(frozen=True)
class AttributeStats:
    """A point-in-time summary of one managed attribute."""

    name: str
    kind: str
    memory_kb: float
    generation: int
    total_count: float
    bucket_count: int
    is_loading: bool
    repartition_count: int
    inserted: int
    deleted: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (what the HTTP API returns)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "memory_kb": self.memory_kb,
            "generation": self.generation,
            "total_count": self.total_count,
            "bucket_count": self.bucket_count,
            "is_loading": self.is_loading,
            "repartition_count": self.repartition_count,
            "inserted": self.inserted,
            "deleted": self.deleted,
        }


@dataclass
class _Attribute:
    """Internal registry entry: a histogram plus its lock and counters."""

    name: str
    kind: str
    memory_kb: float
    histogram: DynamicHistogram
    lock: threading.RLock = field(default_factory=threading.RLock)
    generation: int = 0
    inserted: int = 0
    deleted: int = 0


class HistogramStore:
    """A concurrent catalog of named dynamic histograms.

    Parameters
    ----------
    memory_model:
        Shared :class:`~repro.core.memory.MemoryModel` translating per-attribute
        memory budgets into bucket budgets (the default model is the paper's).
    repartition_interval:
        Maintenance batching hint forwarded to ``insert_many`` on bulk
        ingests; 1 reproduces strict per-value maintenance.
    """

    def __init__(
        self,
        *,
        memory_model: Optional[MemoryModel] = None,
        repartition_interval: int = DEFAULT_REPARTITION_INTERVAL,
    ) -> None:
        require_positive_int(repartition_interval, "repartition_interval")
        self._memory_model = memory_model
        self._repartition_interval = repartition_interval
        self._registry_lock = threading.RLock()
        self._attributes: Dict[str, _Attribute] = {}

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
    ) -> AttributeStats:
        """Register a new attribute backed by a fresh dynamic histogram.

        With ``exist_ok`` an existing attribute of any configuration is left
        untouched and its stats are returned; otherwise re-creating raises
        :class:`~repro.exceptions.DuplicateAttributeError`.
        """
        if not name or not isinstance(name, str):
            raise ConfigurationError("attribute name must be a non-empty string")
        histogram = build_dynamic_histogram(
            kind,
            memory_kb,
            value_unit=value_unit,
            disk_factor=disk_factor,
            seed=seed,
            memory_model=self._memory_model,
        )
        with self._registry_lock:
            existing = self._attributes.get(name)
            if existing is not None:
                if exist_ok:
                    return self._stats_locked(existing)
                raise DuplicateAttributeError(name)
            attribute = _Attribute(
                name=name, kind=kind.lower(), memory_kb=float(memory_kb), histogram=histogram
            )
            self._attributes[name] = attribute
        # Stats come from the reference we hold: a concurrent drop must not
        # turn a successful create into an UnknownAttributeError.
        return self._stats_locked(attribute)

    def drop(self, name: str) -> None:
        """Remove an attribute and its histogram from the store."""
        with self._registry_lock:
            if self._attributes.pop(name, None) is None:
                raise UnknownAttributeError(name)

    def names(self) -> List[str]:
        """The managed attribute names, sorted."""
        with self._registry_lock:
            return sorted(self._attributes)

    def __contains__(self, name: str) -> bool:
        with self._registry_lock:
            return name in self._attributes

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._attributes)

    def _attribute(self, name: str) -> _Attribute:
        with self._registry_lock:
            try:
                return self._attributes[name]
            except KeyError:
                raise UnknownAttributeError(name) from None

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(
        self,
        name: str,
        values: Iterable[float],
        *,
        repartition_interval: Optional[int] = None,
    ) -> int:
        """Insert a batch of values into one attribute; returns the batch size.

        The batch goes through the histogram's vectorised ``insert_many`` path
        with the store's maintenance batching hint, so sustained streams pay
        one lock acquisition and one maintenance scan per interval instead of
        per value.
        """
        values = _validated_values(values)
        if not values:
            return 0
        interval = (
            self._repartition_interval if repartition_interval is None else repartition_interval
        )
        attribute = self._attribute(name)
        with attribute.lock:
            try:
                attribute.histogram.insert_many(values, repartition_interval=interval)
                attribute.inserted += len(values)
            finally:
                # A failed batch may still have applied a prefix; the
                # generation must move so readers never mistake the mutated
                # histogram for the pre-batch state.
                attribute.generation += 1
        return len(values)

    def delete(self, name: str, values: Iterable[float]) -> int:
        """Delete a batch of values from one attribute; returns the batch size.

        The batch goes through the histogram's vectorised ``delete_many``
        path (one ``searchsorted`` + ``bincount`` binning pass for in-range
        batches), mirroring :meth:`insert`.  On failure the histogram reports
        how far the batch got via ``applied_count`` on the raised exception,
        which callers (the ingest pipeline's requeue logic) use to avoid
        re-applying the prefix.
        """
        values = _validated_values(values)
        if not values:
            return 0
        attribute = self._attribute(name)
        with attribute.lock:
            try:
                attribute.histogram.delete_many(values)
                attribute.deleted += len(values)
            except Exception as error:
                attribute.deleted += int(getattr(error, "applied_count", 0))
                raise
            finally:
                # As in insert: a DeletionError mid-batch leaves earlier
                # deletions applied, so the generation must still move.
                attribute.generation += 1
        return len(values)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def estimate_range(self, name: str, low: float, high: float) -> float:
        """Estimated number of values of ``name`` in the closed range [low, high]."""
        attribute = self._attribute(name)
        with attribute.lock:
            return float(attribute.histogram.estimate_range(float(low), float(high)))

    def estimate_equal(self, name: str, value: float, *, value_granularity: float = 1.0) -> float:
        """Estimated number of values of ``name`` equal to ``value``."""
        attribute = self._attribute(name)
        with attribute.lock:
            return float(
                attribute.histogram.estimate_equal(
                    float(value), value_granularity=value_granularity
                )
            )

    def cdf(self, name: str, xs: Sequence[float]) -> List[float]:
        """Approximate CDF of ``name`` evaluated at each point of ``xs``."""
        attribute = self._attribute(name)
        with attribute.lock:
            return [float(v) for v in attribute.histogram.cdf_many(np.asarray(xs, dtype=float))]

    def total_count(self, name: str) -> float:
        """Total number of values currently represented for ``name``."""
        attribute = self._attribute(name)
        with attribute.lock:
            return float(attribute.histogram.total_count)

    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
        """Evaluate a batch of estimate queries under ONE lock acquisition.

        Each query is a mapping with an ``op`` key:

        * ``{"op": "range", "low": .., "high": ..}`` -> estimated count,
        * ``{"op": "equal", "value": ..}`` -> estimated count,
        * ``{"op": "cdf", "xs": [..]}`` -> list of CDF values,
        * ``{"op": "total"}`` -> total count,
        * ``{"op": "selectivity", "low": .., "high": ..}`` -> fraction.

        Because the whole batch runs inside the attribute lock, the returned
        ``results`` are mutually consistent -- they describe one histogram
        state, identified by the returned ``generation``.
        """
        attribute = self._attribute(name)
        with attribute.lock:
            return {
                "generation": attribute.generation,
                "results": evaluate_queries(attribute.histogram, queries),
            }

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _stats_locked(self, attribute: _Attribute) -> AttributeStats:
        with attribute.lock:
            histogram = attribute.histogram
            try:
                bucket_count = histogram.bucket_count
                total = float(histogram.total_count)
            except EmptyHistogramError:  # pragma: no cover - defensive
                bucket_count, total = 0, 0.0
            return AttributeStats(
                name=attribute.name,
                kind=attribute.kind,
                memory_kb=attribute.memory_kb,
                generation=attribute.generation,
                total_count=total,
                bucket_count=bucket_count,
                is_loading=bool(getattr(histogram, "is_loading", False)),
                repartition_count=int(getattr(histogram, "repartition_count", 0)),
                inserted=attribute.inserted,
                deleted=attribute.deleted,
            )

    def stats(self, name: str) -> AttributeStats:
        """Point-in-time stats of one attribute."""
        return self._stats_locked(self._attribute(name))

    def stats_all(self) -> List[AttributeStats]:
        """Stats of every managed attribute, sorted by name."""
        with self._registry_lock:
            attributes = [self._attributes[name] for name in sorted(self._attributes)]
        return [self._stats_locked(attribute) for attribute in attributes]

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, name: str) -> Dict[str, Any]:
        """Serialise one attribute (metadata + full histogram state)."""
        return self._snapshot_locked(self._attribute(name))

    def _snapshot_locked(self, attribute: _Attribute) -> Dict[str, Any]:
        with attribute.lock:
            return {
                "name": attribute.name,
                "kind": attribute.kind,
                "memory_kb": attribute.memory_kb,
                "generation": attribute.generation,
                "inserted": attribute.inserted,
                "deleted": attribute.deleted,
                "histogram": histogram_to_dict(attribute.histogram),
            }

    def snapshot_all(self) -> Dict[str, Any]:
        """Serialise the whole store to a JSON-compatible dictionary.

        Holds references rather than re-looking names up, so a concurrent
        ``drop`` cannot fail the snapshot of the surviving attributes.
        """
        with self._registry_lock:
            attributes = [self._attributes[name] for name in sorted(self._attributes)]
        return {"attributes": [self._snapshot_locked(attribute) for attribute in attributes]}

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> AttributeStats:
        """Restore an attribute from a :meth:`snapshot` payload.

        Creates the attribute when missing, otherwise atomically replaces its
        histogram.  The generation is bumped past both the snapshot's and the
        current attribute's generation so readers always observe progress.
        """
        histogram = histogram_from_dict(dict(snapshot["histogram"]))
        if not isinstance(histogram, DynamicHistogram):
            raise ConfigurationError(
                "snapshot does not describe a dynamic histogram; "
                "frozen snapshots cannot be restored into a live store"
            )
        kind = str(snapshot.get("kind", "dc"))
        memory_kb = float(snapshot.get("memory_kb", 1.0))
        with self._registry_lock:
            attribute = self._attributes.get(name)
            if attribute is None:
                attribute = _Attribute(
                    name=name, kind=kind, memory_kb=memory_kb, histogram=histogram
                )
                self._attributes[name] = attribute
        with attribute.lock:
            attribute.histogram = histogram
            attribute.kind = kind
            attribute.memory_kb = memory_kb
            attribute.inserted = int(snapshot.get("inserted", 0))
            attribute.deleted = int(snapshot.get("deleted", 0))
            attribute.generation = (
                max(attribute.generation, int(snapshot.get("generation", 0))) + 1
            )
        return self._stats_locked(attribute)

    def restore_all(self, snapshot: Mapping[str, Any]) -> List[AttributeStats]:
        """Restore every attribute of a :meth:`snapshot_all` payload."""
        return [
            self.restore(entry["name"], entry) for entry in snapshot.get("attributes", [])
        ]
