"""Thread-safe multi-attribute histogram store (the service catalog).

A live DBMS catalog keeps one dynamic histogram per indexed attribute and
serves selectivity estimates while the histograms are being maintained.  The
:class:`HistogramStore` is that catalog: a mapping from attribute names to
dynamic histograms (built through :func:`repro.core.factory.build_dynamic_histogram`)
with the concurrency machinery a multi-threaded server needs.

Locking model
-------------

* a store-level lock guards the *registry* (the name -> attribute mapping);
  ``create`` / ``drop`` / ``names`` take it briefly;
* every attribute carries its own reentrant lock; *mutations* against one
  attribute serialise on that lock, while operations on different attributes
  run fully in parallel;
* reads never take the attribute lock: every mutation publishes an immutable
  :class:`~repro.core.base.SnapshotHistogram` (wrapping an *owned* copy of the
  :class:`~repro.core.segment_view.SegmentView` arrays) under the single
  ``_Attribute.published`` reference, and estimation loads that reference once
  -- RCU style.  A reference load is atomic under the GIL, so a reader sees
  either the pre- or the post-mutation snapshot, never a torn state; and
  because writers publish in attribute-lock order, staleness is monotone (a
  reader never observes a snapshot older than one it already saw).

Every mutation bumps the attribute's *generation* counter and republishes, so
clients can detect staleness across snapshot/restore cycles.
:meth:`HistogramStore.query` pins ONE published snapshot for a read-only
batch, so the result list describes a single histogram state (no torn
estimates) without any lock acquisition; batches containing an op outside the
read-only set fall back to the historical locked path.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from .._validation import require_positive_int
from ..core.base import DynamicHistogram, SnapshotHistogram
from ..core.factory import build_dynamic_histogram
from ..core.memory import MemoryModel
from ..exceptions import (
    ConfigurationError,
    DuplicateAttributeError,
    EmptyHistogramError,
    HistogramError,
    UnknownAttributeError,
)
from ..persistence import histogram_from_dict, histogram_to_dict
from .wal import DurabilityConfig, WriteAheadLog, iter_wal

__all__ = [
    "AttributeStats",
    "HistogramStore",
    "DEFAULT_REPARTITION_INTERVAL",
    "evaluate_queries",
]

#: Format version of the compaction checkpoint file (snapshot.json).
_CHECKPOINT_VERSION = 1

#: Default maintenance batching hint used by the store's bulk-insert path.
DEFAULT_REPARTITION_INTERVAL = 16


def _validated_values(values: Iterable[float]) -> list[float]:
    """Coerce to floats and reject non-finite values *before* any mutation.

    JSON parsers happily produce NaN/Infinity, and a NaN silently corrupts
    bucket search while an infinity creates a permanent unbounded end bucket;
    rejecting here keeps the failure at the service boundary, where nothing
    has been applied yet.
    """
    result = [float(v) for v in values]
    for value in result:
        if not math.isfinite(value):
            raise ConfigurationError(f"values must be finite, got {value!r}")
    return result


def evaluate_queries(histogram: Any, queries: Sequence[Mapping[str, Any]]) -> list[Any]:
    """Evaluate a batch of estimate queries against one histogram.

    The query language of :meth:`HistogramStore.query` (ops ``range`` /
    ``equal`` / ``cdf`` / ``total`` / ``selectivity``), shared with the
    cluster coordinator, which evaluates the same batches against merged
    global histograms.  Consistency is the *caller's* concern: the store runs
    read-only batches against a pinned published snapshot (mixed batches
    under the attribute lock), the coordinator against an immutable merged
    snapshot.
    """
    results: list[Any] = []
    for query in queries:
        op = query.get("op")
        if op == "range":
            results.append(
                float(histogram.estimate_range(float(query["low"]), float(query["high"])))
            )
        elif op == "equal":
            results.append(
                float(
                    histogram.estimate_equal(
                        float(query["value"]),
                        value_granularity=float(query.get("value_granularity", 1.0)),
                    )
                )
            )
        elif op == "cdf":
            xs = np.asarray(query["xs"], dtype=float)
            results.append([float(v) for v in histogram.cdf_many(xs)])
        elif op == "total":
            results.append(float(histogram.total_count))
        elif op == "selectivity":
            results.append(
                float(histogram.estimate_selectivity(float(query["low"]), float(query["high"])))
            )
        else:
            raise ConfigurationError(f"unknown estimate op {op!r}")
    return results


#: Query ops servable from a published snapshot.  A batch whose every op is in
#: this set never needs the attribute lock; anything else (in practice only a
#: batch carrying an unknown op, which must raise) takes the locked path.
_READ_ONLY_OPS = frozenset({"range", "equal", "cdf", "total", "selectivity"})


@dataclass(frozen=True)
class AttributeStats:
    """A point-in-time summary of one managed attribute."""

    name: str
    kind: str
    memory_kb: float
    generation: int
    total_count: float
    bucket_count: int
    is_loading: bool
    repartition_count: int
    inserted: int
    deleted: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (what the HTTP API returns)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "memory_kb": self.memory_kb,
            "generation": self.generation,
            "total_count": self.total_count,
            "bucket_count": self.bucket_count,
            "is_loading": self.is_loading,
            "repartition_count": self.repartition_count,
            "inserted": self.inserted,
            "deleted": self.deleted,
        }


@dataclass(frozen=True)
class _PublishedView:
    """One RCU publication: a generation and the snapshot it identifies.

    Bundling both into one immutable object is what makes the lock-free read
    path torn-free: readers load ``_Attribute.published`` exactly once and get
    a (generation, snapshot) pair that can never disagree.  Publication is
    always a single reference store of a fresh ``_PublishedView`` -- never a
    field-by-field update (enforced by analysis rule REP010).
    """

    generation: int
    snapshot: SnapshotHistogram


@dataclass
class _Attribute:
    """Internal registry entry: a histogram plus its lock and counters.

    ``published`` is the RCU read-side state: always non-``None`` (set at
    construction and re-set under the attribute lock at the end of every
    mutation), so readers may dereference it unconditionally without ever
    taking ``lock``.
    """

    name: str
    kind: str
    memory_kb: float
    histogram: DynamicHistogram
    lock: threading.RLock = field(default_factory=threading.RLock)
    generation: int = 0
    inserted: int = 0
    deleted: int = 0
    published: _PublishedView = field(init=False)

    def __post_init__(self) -> None:
        self.publish()

    def publish(self) -> None:
        """Publish the current histogram state as an immutable snapshot.

        Must be called with ``lock`` held (or before the attribute is
        reachable by other threads): it reads the live histogram arrays.
        The assignment itself is a single reference store, so concurrent
        readers atomically switch from the old snapshot to the new one.
        """
        self.published = _PublishedView(
            generation=self.generation,
            snapshot=SnapshotHistogram(self.histogram.published_view()),
        )


class HistogramStore:
    """A concurrent catalog of named dynamic histograms.

    Parameters
    ----------
    memory_model:
        Shared :class:`~repro.core.memory.MemoryModel` translating per-attribute
        memory budgets into bucket budgets (the default model is the paper's).
    repartition_interval:
        Maintenance batching hint forwarded to ``insert_many`` on bulk
        ingests; 1 reproduces strict per-value maintenance.
    durability:
        Opt-in :class:`~repro.service.wal.DurabilityConfig`.  When set, every
        mutation (create / drop / insert / delete / restore) is appended to a
        write-ahead log *before* it is applied, and
        :meth:`HistogramStore.recover` rebuilds the exact pre-crash store
        from the compaction checkpoint plus the log tail.  The constructor
        refuses a WAL directory that already holds state -- recovering it
        through :meth:`recover` is the only way to keep the log consistent
        with memory.
    """

    def __init__(
        self,
        *,
        memory_model: MemoryModel | None = None,
        repartition_interval: int = DEFAULT_REPARTITION_INTERVAL,
        durability: DurabilityConfig | None = None,
        metrics: Any | None = None,
        accuracy_sampler: Any | None = None,
    ) -> None:
        require_positive_int(repartition_interval, "repartition_interval")
        self._memory_model = memory_model
        self._repartition_interval = repartition_interval
        self._registry_lock = threading.RLock()
        self._attributes: dict[str, _Attribute] = {}
        self._durability = durability
        self._wal: WriteAheadLog | None = None
        self._compact_lock = threading.Lock()
        # Observability is opt-in and recorded strictly OUTSIDE the registry
        # and attribute locks: metric locks are leaves (repro.obs contract),
        # and keeping updates out of the critical sections keeps the store's
        # lock hold times independent of instrumentation.
        self._metrics = metrics
        self._sampler = accuracy_sampler
        self._m_op_seconds = None
        self._m_mutations = None
        self._m_reads = None
        self._m_published_reads = None
        self._m_published_publishes = None
        self._m_compactions = None
        self._m_compaction_seconds = None
        if metrics is not None:
            from ..obs.registry import LATENCY_BUCKETS_S

            self._m_op_seconds = metrics.distribution(
                "repro_store_op_seconds",
                "HistogramStore operation latency by op",
                LATENCY_BUCKETS_S,
                labelnames=("op",),
            )
            self._m_mutations = metrics.counter(
                "repro_store_mutations_total",
                "Values mutated per attribute and op",
                labelnames=("attribute", "op"),
            )
            self._m_reads = metrics.counter(
                "repro_store_reads_total",
                "Read operations served per attribute and op",
                labelnames=("attribute", "op"),
            )
            self._m_published_reads = metrics.counter(
                "repro_store_published_view_reads_total",
                "Estimate batches served lock-free from the published snapshot",
                labelnames=("attribute",),
            )
            self._m_published_publishes = metrics.counter(
                "repro_store_published_view_publishes_total",
                "Snapshot publications (one per mutation batch per attribute)",
                labelnames=("attribute",),
            )
            self._m_compactions = metrics.counter(
                "repro_wal_compactions_total",
                "WAL checkpoint-and-truncate compactions completed",
            )
            self._m_compaction_seconds = metrics.distribution(
                "repro_wal_compaction_seconds",
                "Wall time of one stop-the-world WAL compaction",
                LATENCY_BUCKETS_S,
            )
        if durability is not None:
            if durability.has_state():
                raise ConfigurationError(
                    f"WAL directory {durability.wal_dir} already holds state; "
                    "use HistogramStore.recover() to reopen it"
                )
            self._wal = WriteAheadLog(
                durability.wal_path, fsync=durability.fsync, metrics=metrics
            )

    @property
    def metrics(self) -> Any | None:
        """The metrics registry this store reports into (``None`` when off)."""
        return self._metrics

    @property
    def accuracy_sampler(self) -> Any | None:
        """The estimation-accuracy sampler fed by this store (``None`` when off)."""
        return self._sampler

    def attach_accuracy_sampler(self, sampler: Any | None) -> None:
        """Attach (or detach with ``None``) the estimation-accuracy sampler.

        Used after :meth:`recover`, which rebuilds the store without one;
        already-recovered attributes start shadowing from their next
        ``create``-free lifecycle event, i.e. never -- callers that want
        them sampled must ``reset`` the sampler per attribute explicitly.
        """
        self._sampler = sampler

    # ------------------------------------------------------------------
    # durability (write-ahead log)
    # ------------------------------------------------------------------
    @property
    def durability(self) -> DurabilityConfig | None:
        return self._durability

    def close(self) -> None:
        """Flush and close the write-ahead log (no-op without durability)."""
        if self._wal is not None:
            self._wal.close()

    def _log(self, record: dict[str, Any]) -> None:
        """Append one mutation record to the WAL (write-ahead: callers log
        *before* applying, inside the critical section that orders the
        apply, so log order equals apply order per attribute)."""
        if self._wal is not None:
            # repro-verify: ignore[REP002] delegation helper; every call site logs inside its ordering lock, before the apply
            self._wal.append(record)

    def _maybe_compact(self) -> None:
        """Auto-compaction trigger; called OUTSIDE any attribute lock.

        Compaction acquires every attribute lock, so triggering it from
        inside a mutation's critical section would deadlock against a
        concurrent mutation holding another attribute's lock.
        """
        if self._wal is None or self._durability is None:
            return
        threshold = self._durability.compact_every
        if threshold is not None and self._wal.appended_count >= threshold:
            self.compact()

    def compact(self) -> int:
        """Checkpoint the catalog and truncate the log; returns ``last_seq``.

        Stop-the-world: the registry lock and every attribute lock (sorted
        order) are held across checkpoint + truncation, so the checkpoint is
        a single point-in-time state, its recorded ``last_seq`` covers
        exactly the applied records, and no append can land between the
        sequence read and the truncation.  The checkpoint is written to a
        temporary file, fsynced and atomically renamed, so a crash at any
        point leaves either the old checkpoint + full log or the new
        checkpoint (whose ``last_seq`` makes the not-yet-truncated log
        records no-ops on replay).
        """
        if self._wal is None or self._durability is None:
            raise ConfigurationError("compact() requires a durability configuration")
        start = time.perf_counter()
        last_seq = self._compact_locked()
        if self._m_compactions is not None:
            self._m_compactions.inc()
            self._m_compaction_seconds.observe(time.perf_counter() - start)
        return last_seq

    def _compact_locked(self) -> int:
        with self._compact_lock, self._registry_lock, ExitStack() as stack:
            attributes = [self._attributes[name] for name in sorted(self._attributes)]
            for attribute in attributes:
                stack.enter_context(attribute.lock)
            last_seq = self._wal.last_seq
            checkpoint = {
                "format_version": _CHECKPOINT_VERSION,
                "last_seq": last_seq,
                "store": {
                    "attributes": [self._snapshot_locked(a) for a in attributes]
                },
            }
            snapshot_path = self._durability.snapshot_path
            tmp_path = snapshot_path.with_suffix(".json.tmp")
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(checkpoint, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, snapshot_path)
            if self._durability.fsync:
                # Power-loss durability needs the *directory entry* of the
                # rename on disk before the log is truncated, or a reboot
                # could find the old checkpoint next to an empty log.
                directory_fd = os.open(str(snapshot_path.parent), os.O_RDONLY)
                try:
                    os.fsync(directory_fd)
                finally:
                    os.close(directory_fd)
            self._wal.rotate()
            return last_seq

    @classmethod
    def recover(
        cls,
        wal_dir: str | Path,
        *,
        fsync: bool = False,
        compact_every: int | None = 10_000,
        memory_model: MemoryModel | None = None,
        repartition_interval: int = DEFAULT_REPARTITION_INTERVAL,
        metrics: Any | None = None,
    ) -> HistogramStore:
        """Rebuild a store from a WAL directory, bit-identical to pre-crash.

        Loads the compaction checkpoint (if any) with *exact* state --
        generations included -- then replays the log tail, skipping records
        the checkpoint already covers (``seq <= last_seq``) and stopping at
        the first torn or corrupted record.  The torn tail is truncated and
        the log reopened for appending, so the recovered store continues
        durably where the crashed one stopped.

        Replayed records run through the ordinary mutation paths with the
        recorded batching interval, so a replay reproduces the original
        apply sequence exactly -- including deterministic mid-batch
        failures, which are swallowed just as the original caller observed
        them and moved on.
        """
        config = DurabilityConfig(
            wal_dir=wal_dir, fsync=fsync, compact_every=compact_every
        )
        store = cls(
            memory_model=memory_model,
            repartition_interval=repartition_interval,
            metrics=metrics,
        )
        last_seq = 0
        if config.snapshot_path.exists():
            checkpoint = json.loads(config.snapshot_path.read_text(encoding="utf-8"))
            version = checkpoint.get("format_version")
            if version != _CHECKPOINT_VERSION:
                raise ConfigurationError(
                    f"unsupported checkpoint format version: {version!r}"
                )
            last_seq = int(checkpoint.get("last_seq", 0))
            for entry in checkpoint.get("store", {}).get("attributes", []):
                store._restore_exact(entry)
        # Streamed, not materialised: a log just short of its compaction
        # threshold can be large, and recovery is exactly when memory is
        # scarce (the store is being rebuilt alongside it).
        max_seq = last_seq
        valid_end = 0
        for wal_record in iter_wal(config.wal_path):
            valid_end = wal_record.end_offset
            if wal_record.seq > max_seq:
                max_seq = wal_record.seq
            if wal_record.seq <= last_seq:
                continue  # already inside the checkpoint
            try:
                store._apply_wal_record(wal_record.record)
            except ConfigurationError:
                # An unknown op (a newer log format?) must surface: rejected
                # mutations are never logged, so a ConfigurationError here
                # cannot be a replayed pre-crash failure -- swallowing it
                # would recover "successfully" with records silently missing.
                raise
            except HistogramError:
                # The original apply failed the same (deterministic) way --
                # e.g. a delete batch hitting an empty histogram -- and the
                # writer moved on; recovery reproduces exactly that.
                continue
        store._durability = config
        store._wal = WriteAheadLog(
            config.wal_path,
            fsync=fsync,
            start_seq=max_seq,
            truncate_at=valid_end,
            metrics=metrics,
        )
        return store

    def _apply_wal_record(self, record: Mapping[str, Any]) -> None:
        """Re-apply one logged mutation through the ordinary code paths."""
        op = record.get("op")
        name = record.get("name")
        if op == "create":
            self.create(
                str(name),
                str(record.get("kind", "dc")),
                memory_kb=float(record.get("memory_kb", 1.0)),
                value_unit=float(record.get("value_unit", 1.0)),
                disk_factor=float(record.get("disk_factor", 20.0)),
                seed=int(record.get("seed", 0)),
            )
        elif op == "drop":
            self.drop(str(name))
        elif op == "insert":
            self.insert(
                str(name),
                record["values"],
                repartition_interval=int(record["interval"]),
            )
        elif op == "delete":
            self.delete(str(name), record["values"])
        elif op == "restore":
            self.restore(str(name), record["snapshot"])
        else:
            raise ConfigurationError(f"unknown WAL record op {op!r}")

    def _restore_exact(self, snapshot: Mapping[str, Any]) -> None:
        """Checkpoint restore: reproduce the attribute entry bit-identically.

        Unlike the public :meth:`restore` (which bumps the generation so
        live readers observe progress), recovery must land on *exactly* the
        checkpointed generation -- tail replay then advances it in lockstep
        with the original apply sequence.
        """
        histogram = histogram_from_dict(dict(snapshot["histogram"]))
        if not isinstance(histogram, DynamicHistogram):
            raise ConfigurationError("checkpoint entry is not a dynamic histogram")
        name = str(snapshot["name"])
        attribute = _Attribute(
            name=name,
            kind=str(snapshot.get("kind", "dc")),
            memory_kb=float(snapshot.get("memory_kb", 1.0)),
            histogram=histogram,
            generation=int(snapshot.get("generation", 0)),
            inserted=int(snapshot.get("inserted", 0)),
            deleted=int(snapshot.get("deleted", 0)),
        )
        with self._registry_lock:
            self._attributes[name] = attribute

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        kind: str = "dc",
        *,
        memory_kb: float = 1.0,
        value_unit: float = 1.0,
        disk_factor: float = 20.0,
        seed: int = 0,
        exist_ok: bool = False,
    ) -> AttributeStats:
        """Register a new attribute backed by a fresh dynamic histogram.

        With ``exist_ok`` an existing attribute of any configuration is left
        untouched and its stats are returned; otherwise re-creating raises
        :class:`~repro.exceptions.DuplicateAttributeError`.
        """
        if not name or not isinstance(name, str):
            raise ConfigurationError("attribute name must be a non-empty string")
        histogram = build_dynamic_histogram(
            kind,
            memory_kb,
            value_unit=value_unit,
            disk_factor=disk_factor,
            seed=seed,
            memory_model=self._memory_model,
        )
        with self._registry_lock:
            existing = self._attributes.get(name)
            if existing is not None:
                if exist_ok:
                    return self._stats_locked(existing)
                raise DuplicateAttributeError(name)
            self._log(
                {
                    "op": "create",
                    "name": name,
                    "kind": kind.lower(),
                    "memory_kb": float(memory_kb),
                    "value_unit": float(value_unit),
                    "disk_factor": float(disk_factor),
                    "seed": int(seed),
                }
            )
            attribute = _Attribute(
                name=name, kind=kind.lower(), memory_kb=float(memory_kb), histogram=histogram
            )
            self._attributes[name] = attribute
        self._maybe_compact()
        if self._sampler is not None:
            self._sampler.reset(name)
        # Stats come from the reference we hold: a concurrent drop must not
        # turn a successful create into an UnknownAttributeError.
        return self._stats_locked(attribute)

    def drop(self, name: str) -> None:
        """Remove an attribute and its histogram from the store."""
        with self._registry_lock:
            if name not in self._attributes:
                raise UnknownAttributeError(name)
            self._log({"op": "drop", "name": name})
            del self._attributes[name]
        self._maybe_compact()
        if self._sampler is not None:
            self._sampler.forget(name)

    def names(self) -> list[str]:
        """The managed attribute names, sorted."""
        with self._registry_lock:
            return sorted(self._attributes)

    def __contains__(self, name: str) -> bool:
        with self._registry_lock:
            return name in self._attributes

    def __len__(self) -> int:
        with self._registry_lock:
            return len(self._attributes)

    def _attribute(self, name: str) -> _Attribute:
        with self._registry_lock:
            try:
                return self._attributes[name]
            except KeyError:
                raise UnknownAttributeError(name) from None

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(
        self,
        name: str,
        values: Iterable[float],
        *,
        repartition_interval: int | None = None,
    ) -> int:
        """Insert a batch of values into one attribute; returns the batch size.

        The batch goes through the histogram's vectorised ``insert_many`` path
        with the store's maintenance batching hint, so sustained streams pay
        one lock acquisition and one maintenance scan per interval instead of
        per value.
        """
        values = _validated_values(values)
        if not values:
            return 0
        interval = (
            self._repartition_interval if repartition_interval is None else repartition_interval
        )
        start = time.perf_counter()
        attribute = self._attribute(name)
        applied = False
        try:
            with attribute.lock:
                self._log(
                    {"op": "insert", "name": name, "values": values, "interval": interval}
                )
                try:
                    attribute.histogram.insert_many(values, repartition_interval=interval)
                    attribute.inserted += len(values)
                    applied = True
                finally:
                    # A failed batch may still have applied a prefix; the
                    # generation must move so readers never mistake the mutated
                    # histogram for the pre-batch state.  Republishing in the
                    # same breath keeps the lock-free read path current --
                    # readers switch to the post-batch snapshot the moment the
                    # reference lands.
                    attribute.generation += 1
                    attribute.publish()
        finally:
            # Telemetry strictly after the attribute lock is released.  A
            # failed batch may have applied an unknown prefix, which the
            # accuracy shadow cannot mirror -- it disables itself.
            if self._sampler is not None:
                if applied:
                    self._sampler.record_insert(name, values)
                else:
                    self._sampler.disable(name)
        self._maybe_compact()
        if self._m_op_seconds is not None:
            self._m_op_seconds.observe(time.perf_counter() - start, op="insert")
            self._m_mutations.inc(len(values), attribute=name, op="insert")
            self._m_published_publishes.inc(1, attribute=name)
        return len(values)

    def delete(self, name: str, values: Iterable[float]) -> int:
        """Delete a batch of values from one attribute; returns the batch size.

        The batch goes through the histogram's vectorised ``delete_many``
        path (one ``searchsorted`` + ``bincount`` binning pass for in-range
        batches), mirroring :meth:`insert`.  On failure the histogram reports
        how far the batch got via ``applied_count`` on the raised exception,
        which callers (the ingest pipeline's requeue logic) use to avoid
        re-applying the prefix.
        """
        values = _validated_values(values)
        if not values:
            return 0
        start = time.perf_counter()
        attribute = self._attribute(name)
        applied = 0
        try:
            with attribute.lock:
                self._log({"op": "delete", "name": name, "values": values})
                try:
                    attribute.histogram.delete_many(values)
                    attribute.deleted += len(values)
                    applied = len(values)
                except Exception as error:
                    # delete_many applies a strict prefix before failing and
                    # reports its length -- the same contract the ingest
                    # pipeline's precise requeue relies on.
                    applied = int(getattr(error, "applied_count", 0))
                    attribute.deleted += applied
                    raise
                finally:
                    # As in insert: a DeletionError mid-batch leaves earlier
                    # deletions applied, so the generation must still move --
                    # and the moved state must be republished for readers.
                    attribute.generation += 1
                    attribute.publish()
        finally:
            # Telemetry strictly after the attribute lock is released.
            if self._sampler is not None and applied:
                self._sampler.record_delete(name, values[:applied])
        # Success path only (as in insert): compacting inside a finally could
        # replace an in-flight DeletionError -- and with it the exception's
        # applied_count, which the ingest pipeline's precise-requeue logic
        # reads.  A deferred compaction simply runs on the next mutation.
        self._maybe_compact()
        if self._m_op_seconds is not None:
            self._m_op_seconds.observe(time.perf_counter() - start, op="delete")
            self._m_mutations.inc(len(values), attribute=name, op="delete")
            self._m_published_publishes.inc(1, attribute=name)
        return len(values)

    # ------------------------------------------------------------------
    # reads (lock-free: served from the published snapshot, REP010)
    # ------------------------------------------------------------------
    def estimate_range(self, name: str, low: float, high: float) -> float:
        """Estimated number of values of ``name`` in the closed range [low, high]."""
        published = self._attribute(name).published
        return float(published.snapshot.estimate_range(float(low), float(high)))

    def estimate_equal(self, name: str, value: float, *, value_granularity: float = 1.0) -> float:
        """Estimated number of values of ``name`` equal to ``value``."""
        published = self._attribute(name).published
        return float(
            published.snapshot.estimate_equal(
                float(value), value_granularity=value_granularity
            )
        )

    def cdf(self, name: str, xs: Sequence[float]) -> list[float]:
        """Approximate CDF of ``name`` evaluated at each point of ``xs``."""
        published = self._attribute(name).published
        return [float(v) for v in published.snapshot.cdf_many(np.asarray(xs, dtype=float))]

    def total_count(self, name: str) -> float:
        """Total number of values currently represented for ``name``."""
        published = self._attribute(name).published
        return float(published.snapshot.total_count)

    def generation(self, name: str) -> int:
        """Publication generation of ``name`` (a single lock-free reference read)."""
        return self._attribute(name).published.generation

    def query(self, name: str, queries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """Evaluate a batch of estimate queries against ONE histogram state.

        Each query is a mapping with an ``op`` key:

        * ``{"op": "range", "low": .., "high": ..}`` -> estimated count,
        * ``{"op": "equal", "value": ..}`` -> estimated count,
        * ``{"op": "cdf", "xs": [..]}`` -> list of CDF values,
        * ``{"op": "total"}`` -> total count,
        * ``{"op": "selectivity", "low": .., "high": ..}`` -> fraction.

        A read-only batch (every op in the query language above) pins the
        published snapshot once and evaluates the whole batch against it, so
        the returned ``results`` are mutually consistent -- they describe one
        histogram state, identified by the returned ``generation`` -- without
        taking any lock.  Batches containing an op outside the read-only set
        fall back to :meth:`_query_locked`.
        """
        start = time.perf_counter()
        attribute = self._attribute(name)
        if all(query.get("op") in _READ_ONLY_OPS for query in queries):
            # RCU read side: ONE reference load pins an immutable
            # (generation, snapshot) pair for the whole batch.
            published = attribute.published
            response = {
                "generation": published.generation,
                "results": evaluate_queries(published.snapshot, queries),
            }
            served_from_published = True
        else:
            response = self._query_locked(name, queries)
            served_from_published = False
        # Telemetry strictly after the batch is evaluated, outside any lock.
        if self._m_op_seconds is not None:
            self._m_op_seconds.observe(time.perf_counter() - start, op="query")
            self._m_reads.inc(1, attribute=name, op="query")
            if served_from_published:
                self._m_published_reads.inc(1, attribute=name)
        if self._sampler is not None:
            self._sampler.maybe_check(name, queries, response["results"])
        return response

    def _query_locked(self, name: str, queries: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
        """Evaluate a query batch under the attribute lock (historical path).

        Kept for batches the published snapshot cannot serve -- in practice
        only batches carrying an unknown op, which must raise
        :class:`~repro.exceptions.ConfigurationError` exactly as before --
        and as the locked-read ablation baseline for the benchmark matrix's
        ``read_locked_single`` cell.
        """
        attribute = self._attribute(name)
        with attribute.lock:
            return {
                "generation": attribute.generation,
                "results": evaluate_queries(attribute.histogram, queries),
            }

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def _stats_locked(self, attribute: _Attribute) -> AttributeStats:
        with attribute.lock:
            histogram = attribute.histogram
            try:
                bucket_count = histogram.bucket_count
                total = float(histogram.total_count)
            except EmptyHistogramError:  # pragma: no cover - defensive
                bucket_count, total = 0, 0.0
            return AttributeStats(
                name=attribute.name,
                kind=attribute.kind,
                memory_kb=attribute.memory_kb,
                generation=attribute.generation,
                total_count=total,
                bucket_count=bucket_count,
                is_loading=bool(getattr(histogram, "is_loading", False)),
                repartition_count=int(getattr(histogram, "repartition_count", 0)),
                inserted=attribute.inserted,
                deleted=attribute.deleted,
            )

    def stats(self, name: str) -> AttributeStats:
        """Point-in-time stats of one attribute."""
        return self._stats_locked(self._attribute(name))

    def stats_all(self) -> list[AttributeStats]:
        """Stats of every managed attribute, sorted by name."""
        with self._registry_lock:
            attributes = [self._attributes[name] for name in sorted(self._attributes)]
        return [self._stats_locked(attribute) for attribute in attributes]

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self, name: str) -> dict[str, Any]:
        """Serialise one attribute (metadata + full histogram state)."""
        return self._snapshot_locked(self._attribute(name))

    def _snapshot_locked(self, attribute: _Attribute) -> dict[str, Any]:
        with attribute.lock:
            return {
                "name": attribute.name,
                "kind": attribute.kind,
                "memory_kb": attribute.memory_kb,
                "generation": attribute.generation,
                "inserted": attribute.inserted,
                "deleted": attribute.deleted,
                "histogram": histogram_to_dict(attribute.histogram),
            }

    def snapshot_all(self) -> dict[str, Any]:
        """Serialise the whole store to a JSON-compatible dictionary.

        Holds references rather than re-looking names up, so a concurrent
        ``drop`` cannot fail the snapshot of the surviving attributes.
        """
        with self._registry_lock:
            attributes = [self._attributes[name] for name in sorted(self._attributes)]
        return {"attributes": [self._snapshot_locked(attribute) for attribute in attributes]}

    def restore(self, name: str, snapshot: Mapping[str, Any]) -> AttributeStats:
        """Restore an attribute from a :meth:`snapshot` payload.

        Creates the attribute when missing, otherwise atomically replaces its
        histogram.  The generation is bumped past both the snapshot's and the
        current attribute's generation so readers always observe progress.
        """
        histogram = histogram_from_dict(dict(snapshot["histogram"]))
        if not isinstance(histogram, DynamicHistogram):
            raise ConfigurationError(
                "snapshot does not describe a dynamic histogram; "
                "frozen snapshots cannot be restored into a live store"
            )
        kind = str(snapshot.get("kind", "dc"))
        memory_kb = float(snapshot.get("memory_kb", 1.0))
        with self._registry_lock:
            attribute = self._attributes.get(name)
            if attribute is None:
                # Fresh attribute: log + install + apply inside ONE registry
                # critical section.  Publishing the attribute before its WAL
                # record exists would let a concurrent insert find it, log
                # first, and apply -- and that insert record would replay
                # before any record creating the attribute, get swallowed as
                # an unknown-attribute failure, and break the bit-identical
                # recovery promise.
                self._log(
                    {"op": "restore", "name": name, "snapshot": dict(snapshot)}
                )
                attribute = _Attribute(
                    name=name,
                    kind=kind,
                    memory_kb=memory_kb,
                    histogram=histogram,
                    generation=int(snapshot.get("generation", 0)) + 1,
                    inserted=int(snapshot.get("inserted", 0)),
                    deleted=int(snapshot.get("deleted", 0)),
                )
                self._attributes[name] = attribute
                fresh = True
            else:
                fresh = False
        if not fresh:
            # Registry lock first, then the attribute lock -- the same order
            # compact() uses, so no inversion.  Re-checking membership under
            # the registry lock closes the restore/drop race: a drop that
            # won the race has its record in the WAL already, and logging a
            # restore against the orphaned object would replay as
            # drop-then-restore, resurrecting on recovery an attribute the
            # live store no longer serves.  Retrying from the top lands in
            # the fresh path, which logs and installs consistently.
            with self._registry_lock, attribute.lock:
                if self._attributes.get(name) is not attribute:
                    return self.restore(name, snapshot)
                self._log({"op": "restore", "name": name, "snapshot": dict(snapshot)})
                attribute.histogram = histogram
                attribute.kind = kind
                attribute.memory_kb = memory_kb
                attribute.inserted = int(snapshot.get("inserted", 0))
                attribute.deleted = int(snapshot.get("deleted", 0))
                attribute.generation = (
                    max(attribute.generation, int(snapshot.get("generation", 0))) + 1
                )
                attribute.publish()
        self._maybe_compact()
        # The shadow cannot mirror a wholesale histogram replacement.
        if self._sampler is not None:
            self._sampler.disable(name)
        return self._stats_locked(attribute)

    def restore_all(self, snapshot: Mapping[str, Any]) -> list[AttributeStats]:
        """Restore every attribute of a :meth:`snapshot_all` payload."""
        return [
            self.restore(entry["name"], entry) for entry in snapshot.get("attributes", [])
        ]
