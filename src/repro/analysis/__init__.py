"""repro-verify: repo-specific static analysis (machine-checked invariants).

Five PRs of growth left the serving stack's correctness resting on invariants
that existed only as ROADMAP prose: log-before-apply inside the ordering lock,
generation-probe-before-snapshot merge caching, explicit view invalidation on
template-bypassing mutations, sorted-name all-locks acquisition, never the
salted builtin ``hash`` in placement code, never retrying a non-idempotent
POST.  Each was once a real bug or a reviewed near-miss; nothing but reviewer
memory stopped a later PR from silently reintroducing them.

This package turns that invariant catalog into machine-checked rules, the way
model checkers turn safety properties into proof obligations instead of
documentation: an AST-based pass (stdlib ``ast``, no dependencies) with

* a rule registry (``REP001`` .. ``REP008``, see :mod:`repro.analysis.rules`;
  each rule names the ROADMAP paragraph it enforces),
* per-line suppression comments --
  ``# repro-verify: ignore[REP003] <written justification>`` -- where the
  justification is *mandatory*: a suppression without one is itself reported
  (``REP000``) and fails the run,
* a CLI, ``python -m repro.analysis [paths]``, that exits non-zero on any
  violation and is wired into CI as a required job.

The static pass is paired with a *dynamic* lock-order race detector
(``tests/lockcheck.py``): the analyzer proves lexical discipline, the monitor
observes the cross-thread acquisition graph at runtime and fails on cycles
(potential deadlock) and on locks held across blocking socket I/O.
"""

from .engine import (
    SourceModule,
    Suppression,
    Violation,
    analyze_module,
    analyze_source,
    iter_source_files,
    run_analysis,
)
from .rules import Rule, all_rules, get_rule

__all__ = [
    "Rule",
    "SourceModule",
    "Suppression",
    "Violation",
    "all_rules",
    "analyze_module",
    "analyze_source",
    "get_rule",
    "iter_source_files",
    "run_analysis",
]
