"""The repro-verify rule catalog: one machine-checked rule per ROADMAP invariant.

Every rule below enforces a documented operational invariant of the serving
stack (see the invariant-catalog table in ROADMAP.md for the prose each rule
is compiled from).  The rules are deliberately *repo-shaped*: they know the
names of this codebase's locks, logs and caches, because a generic linter
cannot know that ``_log`` must precede ``insert_many`` inside the attribute
lock, or that a generation probe must lexically precede a snapshot fetch.

Rules are written as AST pattern checks over a :class:`~repro.analysis.engine.SourceModule`
and registered with the :func:`rule` decorator; ``python -m repro.analysis``
runs the whole registry and exits non-zero on violations.  False positives
are expected to be rare but not impossible -- that is what the justified
suppression comments are for.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from .engine import SourceModule

__all__ = ["Rule", "all_rules", "get_rule", "rule"]

Finding = tuple[int, str]
CheckFn = Callable[[SourceModule], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: id, summary, path filter, check function."""

    rule_id: str
    title: str
    description: str
    paths: tuple[str, ...]
    check: CheckFn


_REGISTRY: dict[str, Rule] = {}


def rule(
    rule_id: str, title: str, *, paths: tuple[str, ...] = (), description: str = ""
) -> Callable[[CheckFn], CheckFn]:
    """Register a check function under ``rule_id``.

    ``paths`` are substring filters against the module's POSIX path; an empty
    tuple applies the rule everywhere.
    """

    def decorate(check: CheckFn) -> CheckFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id,
            title=title,
            description=description or title,
            paths=paths,
            check=check,
        )
        return check

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _call_name(node: ast.Call) -> str | None:
    """The called name: ``f(...)`` -> ``f``, ``a.b.f(...)`` -> ``f``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_name(node: ast.expr) -> str | None:
    """The base variable of an attribute chain: ``a.b.c`` -> ``a``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _identifiers(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _is_lock_like(expr: ast.expr) -> bool:
    """True when the expression mentions an identifier containing 'lock'."""
    return any("lock" in name.lower() for name in _identifiers(expr))


def _is_attribute_lock(expr: ast.expr) -> bool:
    """An attribute lock: ``<obj>.lock`` where ``<obj>`` is not ``self``.

    The store keeps one reentrant lock per attribute (``attribute.lock``)
    and the ingest pipeline one per buffer (``buffer.lock``); both follow
    the ``<entry>.lock`` naming convention this predicate keys on.
    """
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == "lock"
        and _receiver_name(expr) != "self"
    )


def _is_registry_lock(expr: ast.expr) -> bool:
    """The store-level registry lock: ``self._registry_lock`` (any receiver)."""
    return any(name == "_registry_lock" for name in _identifiers(expr))


def _with_items(node: ast.With | ast.AsyncWith) -> list[ast.expr]:
    return [item.context_expr for item in node.items]


def _calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def _enclosing_withs(
    module: SourceModule, node: ast.AST
) -> Iterator[ast.With | ast.AsyncWith]:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            yield ancestor


# ----------------------------------------------------------------------
# REP001 -- lock ordering
# ----------------------------------------------------------------------
@rule(
    "REP001",
    "lock order: registry lock before attribute locks; all-locks loops sorted",
    paths=("repro/service/", "repro/cluster/"),
    description=(
        "The store's deadlock-freedom rests on one global order: the registry "
        "lock is always acquired BEFORE any per-attribute lock, and code that "
        "acquires many attribute locks (compaction's stop-the-world section) "
        "must take them in sorted name order.  Acquiring the registry lock "
        "while holding an attribute lock, or looping over attribute locks "
        "without a sorted() iteration, inverts that order."
    ),
)
def check_lock_order(module: SourceModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        items = _with_items(node)
        attr_positions = [i for i, e in enumerate(items) if _is_attribute_lock(e)]
        registry_positions = [i for i, e in enumerate(items) if _is_registry_lock(e)]
        # (a) one with-statement acquiring both: registry must come first.
        if attr_positions and registry_positions and min(attr_positions) < min(
            registry_positions
        ):
            yield (
                node.lineno,
                "registry lock acquired after an attribute lock in the same "
                "with statement; the global order is registry -> attribute",
            )
        # (b) registry acquisition nested inside a held attribute lock.
        if registry_positions:
            for ancestor in _enclosing_withs(module, node):
                if any(_is_attribute_lock(e) for e in _with_items(ancestor)):
                    yield (
                        node.lineno,
                        "registry lock acquired while holding an attribute "
                        "lock (inverts the registry -> attribute order; a "
                        "concurrent compact() would deadlock)",
                    )
                    break
    # (c) all-locks accumulation loops must iterate sorted names.
    for func in module.functions():
        enter_calls = [
            call
            for call in _calls(func)
            if _call_name(call) == "enter_context"
            and call.args
            and _is_attribute_lock(call.args[0])
        ]
        if not enter_calls:
            continue
        in_loop = [
            call
            for call in enter_calls
            if any(
                isinstance(a, (ast.For, ast.While)) for a in module.ancestors(call)
            )
        ]
        if not in_loop:
            continue
        has_sorted = any(
            isinstance(call.func, ast.Name) and call.func.id == "sorted"
            for call in _calls(func)
        )
        if not has_sorted:
            yield (
                in_loop[0].lineno,
                f"{func.name} accumulates attribute locks in a loop without a "
                "sorted(...) iteration; unordered all-locks acquisition can "
                "deadlock against a concurrent all-locks taker",
            )


# ----------------------------------------------------------------------
# REP002 -- log before apply, inside the ordering lock
# ----------------------------------------------------------------------
_REP002_MUTATOR_CALLS = {"insert_many", "delete_many"}


def _rep002_apply_nodes(with_node: ast.AST) -> Iterator[ast.AST]:
    """Mutation ('apply') nodes inside one with-block: the histogram batch
    calls, registry installs/removals and histogram replacement."""
    for node in ast.walk(with_node):
        if isinstance(node, ast.Call) and _call_name(node) in _REP002_MUTATOR_CALLS:
            yield node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and target.attr == "histogram":
                    yield node
                elif isinstance(target, ast.Subscript) and any(
                    name == "_attributes" for name in _identifiers(target.value)
                ):
                    yield node
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and any(
                    name == "_attributes" for name in _identifiers(target.value)
                ):
                    yield node


@rule(
    "REP002",
    "WAL records are logged before the mutation, inside the ordering lock",
    paths=("repro/service/store.py",),
    description=(
        "Replay determinism requires per-attribute log order == apply order, "
        "which holds only because every mutation logs BEFORE applying, inside "
        "the same critical section that orders the apply (attribute lock for "
        "insert/delete/restore, registry lock for create/drop).  A _log call "
        "outside a lock, or one that follows the mutation it records, breaks "
        "bit-identical recovery."
    ),
)
def check_log_before_apply(module: SourceModule) -> Iterator[Finding]:
    for func in module.functions():
        log_calls = [
            call
            for call in _calls(func)
            if _call_name(call) == "_log"
            or (
                _call_name(call) == "append"
                and isinstance(call.func, ast.Attribute)
                and "_wal" in set(_identifiers(call.func.value))
            )
        ]
        for log_call in log_calls:
            lock_with: ast.With | ast.AsyncWith | None = None
            for ancestor in _enclosing_withs(module, log_call):
                if any(_is_lock_like(e) for e in _with_items(ancestor)):
                    lock_with = ancestor
                    break
            if lock_with is None:
                yield (
                    log_call.lineno,
                    "WAL record logged outside any lock-holding with block; "
                    "log order would no longer equal apply order",
                )
                continue
            for apply_node in _rep002_apply_nodes(lock_with):
                if apply_node.lineno < log_call.lineno:
                    yield (
                        log_call.lineno,
                        "mutation applied before its WAL record was logged "
                        f"(apply at line {apply_node.lineno}); write-ahead "
                        "means log FIRST, inside the same critical section",
                    )
                    break


# ----------------------------------------------------------------------
# REP003 -- template-bypassing state mutation must invalidate the view
# ----------------------------------------------------------------------
_REP003_STATE_ATTRS = {"_array", "_loading"}
_REP003_TEMPLATE_HOOKS = {"_insert", "_delete", "_delete_many"}


@rule(
    "REP003",
    "direct histogram-state replacement must call _invalidate_view()",
    paths=("repro/",),
    description=(
        "Reads are served from a cached SegmentView derived from the live "
        "BucketArray; the DynamicHistogram insert/delete templates drop the "
        "cache automatically, but any mutation entry point that bypasses the "
        "templates (bootstrap from a read path, direct state restoration in "
        "persistence.py) must call _invalidate_view() itself or readers keep "
        "estimating against the pre-mutation arrays."
    ),
)
def check_view_invalidation(module: SourceModule) -> Iterator[Finding]:
    for func in module.functions():
        if func.name in _REP003_TEMPLATE_HOOKS or func.name == "__init__":
            continue
        replacements: list[tuple[int, str]] = []
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _REP003_STATE_ATTRS
                ):
                    receiver = _receiver_name(target) or "self"
                    replacements.append((node.lineno, receiver))
        if not replacements:
            continue
        invalidated = {
            _receiver_name(call.func) or "self"
            for call in _calls(func)
            if isinstance(call.func, ast.Attribute)
            and call.func.attr == "_invalidate_view"
        }
        for line, receiver in replacements:
            if receiver not in invalidated:
                yield (
                    line,
                    f"{func.name} replaces histogram state "
                    f"({receiver}._array/_loading) without calling "
                    f"{receiver}._invalidate_view(); a cached SegmentView "
                    "would keep serving the old arrays",
                )


# ----------------------------------------------------------------------
# REP004 -- no builtin hash() in placement code
# ----------------------------------------------------------------------
@rule(
    "REP004",
    "cluster placement must never use the salted builtin hash()",
    paths=("repro/cluster/",),
    description=(
        "Placement must be identical across Python processes and restarts; "
        "the builtin hash() is salted per process (PYTHONHASHSEED) and would "
        "route the same attribute to different shards on different "
        "coordinators.  Use repro.cluster.router.stable_hash (SHA-1 based)."
    ),
)
def check_no_builtin_hash(module: SourceModule) -> Iterator[Finding]:
    for call in _calls(module.tree):
        if isinstance(call.func, ast.Name) and call.func.id == "hash":
            yield (
                call.lineno,
                "builtin hash() is process-salted; placement code must use "
                "stable_hash() so every coordinator routes identically",
            )


# ----------------------------------------------------------------------
# REP005 -- generation probe before snapshot fetch
# ----------------------------------------------------------------------
@rule(
    "REP005",
    "merge caching reads generations BEFORE snapshots",
    paths=("repro/cluster/",),
    description=(
        "The merged-estimate cache is keyed on the piece generation sum read "
        "BEFORE the snapshots: a racing write then makes the cached entry "
        "fresher than its key (safe -- the next query rebuilds).  Reading "
        "snapshots first could serve a stale merge under a fresh key forever."
    ),
)
def check_generation_before_snapshot(module: SourceModule) -> Iterator[Finding]:
    for func in module.functions():
        generation_lines = [
            call.lineno
            for call in _calls(func)
            if _call_name(call) in {"_generation_sum", "_piece_generations", "generation"}
        ]
        snapshot_lines = [
            call.lineno for call in _calls(func) if _call_name(call) == "snapshot"
        ]
        if not generation_lines or not snapshot_lines:
            continue
        if min(snapshot_lines) < min(generation_lines):
            yield (
                min(snapshot_lines),
                f"{func.name} fetches snapshots before probing generations; "
                "the probe-before-snapshot order is what keeps the merge "
                "cache key from overstating freshness",
            )


# ----------------------------------------------------------------------
# REP006 -- never hold a SegmentView across a mutation
# ----------------------------------------------------------------------
_REP006_MUTATORS = {
    "insert",
    "delete",
    "insert_many",
    "delete_many",
    "splice",
    "splice_pair_phis",
    "restore",
}


@rule(
    "REP006",
    "a segment_view() result must not be used across a mutation",
    paths=("repro/",),
    description=(
        "SegmentViews may share memory with the live BucketArray, so a view "
        "is only valid until the histogram's next mutation; re-fetch via "
        "segment_view() after any write instead of holding the old reference."
    ),
)
def check_view_not_held_across_mutation(module: SourceModule) -> Iterator[Finding]:
    for func in module.functions():
        view_assigns: dict[str, int] = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(node.value, ast.Call)
                and _call_name(node.value) == "segment_view"
            ):
                view_assigns.setdefault(target.id, node.lineno)
        if not view_assigns:
            continue
        mutation_lines = [
            call.lineno for call in _calls(func) if _call_name(call) in _REP006_MUTATORS
        ]
        if not mutation_lines:
            continue
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in view_assigns
            ):
                assigned = view_assigns[node.id]
                if any(assigned < m < node.lineno for m in mutation_lines):
                    yield (
                        node.lineno,
                        f"view {node.id!r} (from segment_view() at line "
                        f"{assigned}) is used after a mutation; views may "
                        "alias the live arrays -- re-fetch after writes",
                    )
                    break


# ----------------------------------------------------------------------
# REP007 -- never retry a non-idempotent HTTP request
# ----------------------------------------------------------------------
@rule(
    "REP007",
    "transport retries after send are only legal for idempotent GETs",
    paths=("repro/service/client.py", "repro/cluster/server.py"),
    description=(
        "A POST whose fate is unknown (failure after the request was handed "
        "to the transport) must raise, never be retried: the server may have "
        "applied it, and a blind retry double-applies the write.  Only a "
        "connect-phase failure (nothing reached the server) or an idempotent "
        "GET may re-enter the retry loop."
    ),
)
def check_no_post_retry(module: SourceModule) -> Iterator[Finding]:
    for loop in ast.walk(module.tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for try_node in ast.walk(loop):
            if not isinstance(try_node, ast.Try):
                continue
            sent = any(
                _call_name(call) in {"request", "getresponse"}
                for stmt in try_node.body
                for call in _calls(stmt)
            )
            if not sent:
                continue
            for handler in try_node.handlers:
                retries = any(
                    isinstance(n, ast.Continue) for n in ast.walk(handler)
                )
                if not retries:
                    continue
                guarded = any(
                    isinstance(n, ast.Raise) for n in ast.walk(handler)
                ) and any(
                    isinstance(n, ast.Constant) and n.value == "GET"
                    for n in ast.walk(handler)
                )
                if not guarded:
                    yield (
                        handler.lineno,
                        "retry after the request reached the transport "
                        "without an idempotency guard (raise unless the "
                        'method is "GET"); a retried POST can double-apply',
                    )


# ----------------------------------------------------------------------
# REP008 -- compaction never triggers under an attribute lock
# ----------------------------------------------------------------------
@rule(
    "REP008",
    "compaction must not be triggered while holding a lock",
    paths=("repro/",),
    description=(
        "compact() is stop-the-world: it takes the registry lock plus every "
        "attribute lock.  Calling it (or _maybe_compact) from inside a "
        "mutation's critical section deadlocks against a concurrent mutation "
        "holding another attribute's lock; the trigger belongs after the "
        "locks are released."
    ),
)
def check_compaction_outside_locks(module: SourceModule) -> Iterator[Finding]:
    for call in _calls(module.tree):
        if _call_name(call) not in {"_maybe_compact", "compact"}:
            continue
        for ancestor in _enclosing_withs(module, call):
            if any(_is_lock_like(e) for e in _with_items(ancestor)):
                yield (
                    call.lineno,
                    f"{_call_name(call)}() called while holding a lock "
                    f"(with statement at line {ancestor.lineno}); compaction "
                    "acquires every attribute lock and would deadlock",
                )
                break


# ----------------------------------------------------------------------
# REP009 -- observability locks are leaves
# ----------------------------------------------------------------------
#: Call names that block on the OS: files, sockets, timers.  ``print`` and the
#: logging methods are included because the slow-request sink must run outside
#: any obs lock (the sink is I/O by design -- just never under a lock).
_REP009_BLOCKING_CALLS = {
    "open",
    "fsync",
    "fdatasync",
    "connect",
    "sendall",
    "send",
    "recv",
    "accept",
    "sleep",
    "urlopen",
    "getresponse",
    "print",
    "info",
    "warning",
    "error",
    "exception",
}

#: Store/WAL/pipeline lock spellings that must never appear in obs/ code:
#: the store registry lock plus the ``<entry>.lock`` per-attribute/buffer
#: convention (``_is_attribute_lock``).
def _rep009_is_foreign_lock(expr: ast.expr) -> bool:
    return _is_registry_lock(expr) or _is_attribute_lock(expr)


@rule(
    "REP009",
    "obs locks are leaves: no nested locks, no blocking I/O while held",
    paths=("repro/obs/",),
    description=(
        "Instrumentation is called from inside store, WAL and buffer critical "
        "sections, so the whole obs package must sit at the BOTTOM of the "
        "lock order: a metric/trace/sampler lock never guards another lock "
        "acquisition, a blocking call (file/socket/sleep/log emission), or a "
        "store-side lock.  Any of those would let a cheap counter update "
        "deadlock or stall the data path that called it."
    ),
)
def check_obs_locks_are_leaves(module: SourceModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        items = _with_items(node)
        # (a) obs code must never touch a store-side lock at all.
        for expr in items:
            if _rep009_is_foreign_lock(expr):
                yield (
                    node.lineno,
                    "obs code acquires a store-side lock; metric-update paths "
                    "must stay below every data-path lock in the order",
                )
        if not any(_is_lock_like(e) for e in _with_items(node)):
            continue
        for inner in ast.walk(node):
            # (b) no lock is acquired while an obs lock is held.
            if (
                isinstance(inner, (ast.With, ast.AsyncWith))
                and inner is not node
                and any(_is_lock_like(e) for e in _with_items(inner))
            ):
                yield (
                    inner.lineno,
                    f"lock acquired at line {inner.lineno} while holding the "
                    f"obs lock taken at line {node.lineno}; obs locks are "
                    "leaves -- hoist the nested acquisition out",
                )
            if (
                isinstance(inner, ast.Call)
                and _call_name(inner) == "acquire"
                and not (
                    isinstance(inner.func, ast.Attribute)
                    and inner.func.value in _with_items(node)
                )
            ):
                yield (
                    inner.lineno,
                    f"explicit .acquire() at line {inner.lineno} while "
                    f"holding the obs lock taken at line {node.lineno}; obs "
                    "locks are leaves",
                )
            # (c) no blocking I/O while an obs lock is held.
            if (
                isinstance(inner, ast.Call)
                and _call_name(inner) in _REP009_BLOCKING_CALLS
            ):
                yield (
                    inner.lineno,
                    f"{_call_name(inner)}() called while holding the obs "
                    f"lock taken at line {node.lineno}; metric updates and "
                    "scrapes must never block on I/O -- move the call after "
                    "the lock is released",
                )


# ----------------------------------------------------------------------
# REP010 -- the store's read path is lock-free (RCU publication)
# ----------------------------------------------------------------------
#: The store's public estimate/read entry points.  Underscore-prefixed
#: helpers (``_query_locked``, the deliberate locked fallback for mixed
#: batches and the benchmark ablation) are intentionally NOT in this set.
_REP010_READ_FUNCS = {
    "estimate_range",
    "estimate_equal",
    "cdf",
    "total_count",
    "generation",
    "query",
}


@rule(
    "REP010",
    "store reads are lock-free; snapshot publication is ONE reference store",
    paths=("repro/service/store.py",),
    description=(
        "The serving read path is RCU-style: writers publish an immutable "
        "(generation, snapshot) pair under the single `published` reference, "
        "and the public estimate/read entry points serve from that reference "
        "without ever acquiring a per-attribute lock.  Two ways to regress: "
        "(a) a read entry point takes an attribute lock again (reads then "
        "serialise against sustained ingest -- the very contention this "
        "design removes), or (b) publication stops being a single reference "
        "store (mutating fields of an already-published object, or spelling "
        "the publication across several `published_*` attributes), which "
        "lets readers observe a torn generation/snapshot pair."
    ),
)
def check_lock_free_read_path(module: SourceModule) -> Iterator[Finding]:
    # (a) public read entry points never acquire a per-attribute lock.
    for func in module.functions():
        if func.name not in _REP010_READ_FUNCS:
            continue
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                _is_attribute_lock(e) for e in _with_items(node)
            ):
                yield (
                    node.lineno,
                    f"{func.name} acquires a per-attribute lock; estimate "
                    "reads must serve from the published snapshot reference "
                    "(the locked path lives only in the explicit _query_locked "
                    "fallback)",
                )
        for call in _calls(func):
            if (
                _call_name(call) == "acquire"
                and isinstance(call.func, ast.Attribute)
                and _is_attribute_lock(call.func.value)
            ):
                yield (
                    call.lineno,
                    f"{func.name} explicitly acquires a per-attribute lock; "
                    "estimate reads must stay lock-free",
                )
    # (b) publication is a single reference store.
    for node in ast.walk(module.tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            if (
                isinstance(target.value, ast.Attribute)
                and target.value.attr == "published"
            ):
                yield (
                    node.lineno,
                    "assignment into a field of an already-published snapshot "
                    f"({target.value.attr}.{target.attr}); concurrent readers "
                    "would see a torn pair -- build a fresh immutable object "
                    "and store it under the single `published` reference",
                )
            elif target.attr.startswith("published") and target.attr != "published":
                yield (
                    node.lineno,
                    f"publication spelled across multiple attributes "
                    f"({target.attr}); readers can observe one updated and "
                    "one stale -- publish ONE reference holding both the "
                    "generation and the snapshot",
                )


# ----------------------------------------------------------------------
# REP011 -- binary transport never retries a non-idempotent op post-wire
# ----------------------------------------------------------------------
@rule(
    "REP011",
    "binary-transport retries after a frame reached the wire are only legal "
    "for idempotent ops",
    paths=("repro/cluster/transport.py", "repro/cluster/supervisor.py"),
    description=(
        "The persistent binary transport mirrors REP007 at the frame level: "
        "once a request frame was handed to the socket its fate is unknown "
        "(the worker may have applied an ingest before the connection died), "
        "so a send/receive failure may only re-enter the retry loop when the "
        "op is in IDEMPOTENT_OPS -- everything else must raise and surface "
        "as ShardUnavailableError.  Connect-phase failures (checkout) stay "
        "freely retriable.  The supervisor inherits the same discipline: it "
        "restarts processes, it never replays requests on their behalf."
    ),
)
def check_no_binary_post_wire_retry(module: SourceModule) -> Iterator[Finding]:
    for loop in ast.walk(module.tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for try_node in ast.walk(loop):
            if not isinstance(try_node, ast.Try):
                continue
            sent = any(
                _call_name(call) in {"send", "sendall", "receive"}
                for stmt in try_node.body
                for call in _calls(stmt)
            )
            if not sent:
                continue
            for handler in try_node.handlers:
                retries = any(
                    isinstance(n, ast.Continue) for n in ast.walk(handler)
                )
                if not retries:
                    continue
                guarded = any(
                    isinstance(n, ast.Raise) for n in ast.walk(handler)
                ) and any(
                    isinstance(n, ast.Name) and "idempotent" in n.id
                    for n in ast.walk(handler)
                )
                if not guarded:
                    yield (
                        handler.lineno,
                        "retry after the frame reached the wire without an "
                        "idempotency guard (raise unless the op is in "
                        "IDEMPOTENT_OPS); a replayed ingest double-applies",
                    )
