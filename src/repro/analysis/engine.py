"""The repro-verify analysis engine: modules, suppressions, rule dispatch.

The engine is deliberately small: it parses each source file once (stdlib
``ast``), hands a :class:`SourceModule` -- the tree plus a parent map and a
few navigation helpers -- to every registered rule whose path filter matches,
and reconciles the reported violations against the file's suppression
comments.

Suppression contract
--------------------

A violation on line N is suppressed by a comment ::

    some_code()  # repro-verify: ignore[REP003] called only from the template

on the same line, or by a comment-only line directly above it.  The rule id
is mandatory (blanket suppressions would silently swallow future rules) and
so is the justification text: a suppression without one is reported as
``REP000`` and cannot itself be suppressed -- the audit trail is the point.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "SourceModule",
    "Suppression",
    "Violation",
    "analyze_module",
    "analyze_source",
    "iter_source_files",
    "run_analysis",
]

#: Matches ``# repro-verify: ignore[REP001] justification ...``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-verify:\s*ignore\[([A-Z0-9,\s]+)\]\s*(.*)\s*$"
)

#: Rule id reserved for engine-level findings (bad suppressions, parse
#: failures).  Never suppressable.
META_RULE_ID = "REP000"


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a file and line."""

    rule_id: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``repro-verify: ignore`` comment."""

    rule_ids: tuple[str, ...]
    #: The line the suppression applies to (the code line, not necessarily
    #: the comment line).
    line: int
    comment_line: int
    justification: str


class SourceModule:
    """A parsed source file plus the navigation helpers rules need."""

    def __init__(self, source: str, rel_path: str) -> None:
        self.source = source
        #: POSIX-style path used for rule path filters and reports.
        self.rel_path = rel_path
        self.tree = ast.parse(source)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestor chain, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    # ------------------------------------------------------------------
    # suppressions
    # ------------------------------------------------------------------
    def suppressions(self) -> list[Suppression]:
        """Every ``repro-verify: ignore`` comment, with its target line.

        Comments are located with :mod:`tokenize` (a ``#`` inside a string
        literal is not a comment).  A comment sharing its line with code
        targets that line; a comment-only line targets the next line.
        """
        found: list[Suppression] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.source).readline))
        except tokenize.TokenizeError:  # pragma: no cover - ast.parse caught it
            return found
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.match(token.string)
            if match is None:
                continue
            rule_ids = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            comment_line = token.start[0]
            standalone = token.line[: token.start[1]].strip() == ""
            found.append(
                Suppression(
                    rule_ids=rule_ids,
                    line=comment_line + 1 if standalone else comment_line,
                    comment_line=comment_line,
                    justification=match.group(2).strip(),
                )
            )
        return found


def analyze_module(
    module: SourceModule, *, select: Iterable[str] | None = None
) -> list[Violation]:
    """Run every applicable rule over one module; returns surviving violations.

    Suppressed violations are dropped; suppressions missing a justification
    (or naming no rule id) surface as ``REP000`` findings instead.
    """
    from .rules import all_rules  # late import: rules import engine helpers

    selected = None if select is None else set(select)
    raw: list[Violation] = []
    for rule in all_rules():
        if selected is not None and rule.rule_id not in selected:
            continue
        if rule.paths and not any(p in module.rel_path for p in rule.paths):
            continue
        for line, message in rule.check(module):
            raw.append(Violation(rule.rule_id, module.rel_path, line, message))

    suppressions = module.suppressions()
    violations: list[Violation] = []
    for suppression in suppressions:
        if not suppression.rule_ids or not suppression.justification:
            violations.append(
                Violation(
                    META_RULE_ID,
                    module.rel_path,
                    suppression.comment_line,
                    "suppression must name a rule id and carry a written "
                    "justification: # repro-verify: ignore[REPxxx] <why>",
                )
            )
    for violation in raw:
        if any(
            violation.line == s.line and violation.rule_id in s.rule_ids
            for s in suppressions
        ):
            continue
        violations.append(violation)
    return violations


def analyze_source(
    source: str, rel_path: str = "snippet.py", *, select: Iterable[str] | None = None
) -> list[Violation]:
    """Analyze a source string (the fixture-test entry point)."""
    return analyze_module(SourceModule(source, rel_path), select=select)


def iter_source_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files and directories into the ``.py`` files to analyze."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate
        else:
            yield path


def run_analysis(
    paths: Sequence[str | Path], *, select: Iterable[str] | None = None
) -> list[Violation]:
    """Analyze every source file under ``paths``; returns all violations.

    A file that fails to parse is reported as a ``REP000`` violation rather
    than aborting the run (the checker must degrade into a report, never a
    crash, to be usable as a CI gate).
    """
    violations: list[Violation] = []
    for path in iter_source_files(paths):
        rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            module = SourceModule(source, rel)
        except (OSError, SyntaxError, ValueError) as error:
            violations.append(
                Violation(META_RULE_ID, rel, 1, f"cannot analyze file: {error}")
            )
            continue
        violations.extend(analyze_module(module, select=select))
    return violations
