"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exits 0 when the tree is clean, 1 when any violation (including ``REP000``
engine findings such as unjustified suppressions) survives, 2 on usage
errors.  Designed to be a CI gate: all findings are reported, none abort
the run.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .engine import run_analysis
from .rules import all_rules


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-verify: machine-checked ROADMAP invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.paths) if rule.paths else "all files"
            print(f"{rule.rule_id}  {rule.title}")
            print(f"        scope: {scope}")
        return 0

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        known = {rule.rule_id for rule in all_rules()}
        unknown = sorted(set(select) - known)
        if unknown:
            print(f"unknown rule ids: {', '.join(unknown)}", file=sys.stderr)
            return 2

    violations = run_analysis(args.paths, select=select)
    for violation in sorted(violations, key=lambda v: (v.path, v.line, v.rule_id)):
        print(violation.render())
    if violations:
        print(
            f"repro-verify: {len(violations)} violation(s) "
            f"(suppress with '# repro-verify: ignore[REPxxx] <justification>')",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
