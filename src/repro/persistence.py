"""Saving and restoring histograms (catalog persistence).

A real DBMS keeps its statistics in the system catalog: a histogram built or
maintained in one session must be written out and restored later.  This module
provides that layer for every histogram class in the library:

* :func:`freeze` converts any histogram into an immutable
  :class:`~repro.static.base.StaticHistogram` snapshot (just its buckets);
* :func:`histogram_to_dict` / :func:`histogram_from_dict` serialise histograms
  to plain JSON-compatible dictionaries, preserving the *full* internal state
  of the dynamic histograms (DC, DVO, DADO) so that maintenance can continue
  after a restore;
* :func:`save_histogram` / :func:`load_histogram` wrap the above with JSON
  files.

The AC histogram is serialised as a frozen snapshot: its backing sample
represents data that notionally lives on disk already, and the paper treats a
restart as a rebuild from that sample.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .core.base import Histogram
from .core.bucket import Bucket
from .core.bucket_array import BucketArray
from .core.dynamic_compressed import DCHistogram
from .core.dynamic_vopt import DADOHistogram, DVOHistogram
from .exceptions import ConfigurationError
from .static.base import StaticHistogram

__all__ = [
    "freeze",
    "histogram_to_dict",
    "histogram_from_dict",
    "save_histogram",
    "load_histogram",
    "FrozenHistogram",
]

_FORMAT_VERSION = 1


class FrozenHistogram(StaticHistogram):
    """An immutable snapshot of any histogram's buckets."""


def freeze(histogram: Histogram) -> FrozenHistogram:
    """Return an immutable snapshot of ``histogram``'s current buckets."""
    return FrozenHistogram(histogram.buckets())


# ----------------------------------------------------------------------
# dict serialisation
# ----------------------------------------------------------------------
def histogram_to_dict(histogram: Histogram) -> dict[str, Any]:
    """Serialise a histogram to a JSON-compatible dictionary."""
    if isinstance(histogram, DCHistogram):
        return _dc_to_dict(histogram)
    if isinstance(histogram, DVOHistogram):
        return _dvo_to_dict(histogram)
    # Generic fallback: persist the bucket snapshot.
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "frozen",
        "source_class": type(histogram).__name__,
        "buckets": [[b.left, b.right, b.count] for b in histogram.buckets()],
    }


def histogram_from_dict(state: dict[str, Any]) -> Histogram:
    """Reconstruct a histogram from :func:`histogram_to_dict` output."""
    version = state.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(f"unsupported histogram format version: {version!r}")
    kind = state.get("kind")
    if kind == "frozen":
        buckets = [Bucket(left, right, count) for left, right, count in state["buckets"]]
        return FrozenHistogram(buckets)
    if kind == "dc":
        return _dc_from_dict(state)
    if kind in ("dvo", "dado"):
        return _dvo_from_dict(state)
    raise ConfigurationError(f"unknown serialised histogram kind: {kind!r}")


def save_histogram(histogram: Histogram, path: str | Path) -> None:
    """Serialise ``histogram`` to a JSON file at ``path``."""
    payload = histogram_to_dict(histogram)
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_histogram(path: str | Path) -> Histogram:
    """Load a histogram previously written by :func:`save_histogram`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return histogram_from_dict(payload)


# ----------------------------------------------------------------------
# Dynamic Compressed
# ----------------------------------------------------------------------
def _dc_to_dict(histogram: DCHistogram) -> dict[str, Any]:
    state: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "kind": "dc",
        "bucket_budget": histogram.bucket_budget,
        "alpha_min": histogram.alpha_min,
        "value_unit": histogram._value_unit,
        "repartition_count": histogram.repartition_count,
    }
    if histogram.is_loading:
        state["loading"] = sorted(histogram._loading.items())
    else:
        array = histogram.bucket_array
        # The serialised shape predates the array-native core (PR 4): regular
        # buckets as contiguous ``lefts`` + the final ``right`` border plus a
        # parallel ``counts`` list.  Keeping it stable means PR-3-era catalog
        # snapshots load unchanged.
        state["lefts"] = [float(v) for v in array.lefts]
        state["counts"] = [float(v) for v in array.sub_counts[:, 0]]
        state["right"] = float(array.rights[-1]) if len(array) else 0.0
        state["singular"] = sorted(histogram._singular.items())
    return state


def _dc_from_dict(state: dict[str, Any]) -> DCHistogram:
    histogram = DCHistogram(
        int(state["bucket_budget"]),
        alpha_min=float(state["alpha_min"]),
        value_unit=float(state["value_unit"]),
    )
    histogram._repartition_count = int(state.get("repartition_count", 0))
    if "loading" in state:
        histogram._loading = {float(v): int(c) for v, c in state["loading"]}
        histogram._invalidate_view()
        return histogram
    histogram._loading = None
    lefts = [float(v) for v in state["lefts"]]
    counts = [float(v) for v in state["counts"]]
    right = float(state["right"])
    histogram._array = BucketArray(
        np.asarray(lefts, dtype=float),
        np.asarray(lefts[1:] + [right], dtype=float),
        np.asarray(counts, dtype=float).reshape(-1, 1),
    )
    histogram._singular = {float(v): float(c) for v, c in state["singular"]}
    histogram._regular_total = sum(counts)
    histogram._regular_sumsq = sum(count * count for count in counts)
    # Direct state restoration bypasses the insert/delete template methods, so
    # the stale-view guard must be re-established by hand (it is currently a
    # no-op on a never-read instance, but keeps the restore path safe if a
    # read ever sneaks in between construction and restoration).
    histogram._invalidate_view()
    return histogram


# ----------------------------------------------------------------------
# DVO / DADO
# ----------------------------------------------------------------------
def _dvo_to_dict(histogram: DVOHistogram) -> dict[str, Any]:
    state: dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "kind": "dado" if isinstance(histogram, DADOHistogram) else "dvo",
        "bucket_budget": histogram.bucket_budget,
        "sub_buckets": histogram.sub_bucket_count,
        "value_unit": histogram._value_unit,
        "repartition_threshold": histogram._threshold,
        "repartition_count": histogram.repartition_count,
    }
    if histogram.is_loading:
        state["loading"] = sorted(histogram._loading.items())
    else:
        # Same ``[left, right, [sub_counts...]]`` row shape as the pre-array
        # core, so PR-3-era snapshots and the new core interchange freely.
        state["buckets"] = histogram.bucket_array.to_rows()
    return state


def _dvo_from_dict(state: dict[str, Any]) -> DVOHistogram:
    histogram_class = DADOHistogram if state["kind"] == "dado" else DVOHistogram
    histogram = histogram_class(
        int(state["bucket_budget"]),
        sub_buckets=int(state["sub_buckets"]),
        value_unit=float(state["value_unit"]),
        repartition_threshold=float(state["repartition_threshold"]),
    )
    histogram._repartition_count = int(state.get("repartition_count", 0))
    if "loading" in state:
        histogram._loading = {float(v): int(c) for v, c in state["loading"]}
        histogram._invalidate_view()
        return histogram
    histogram._loading = None
    # Legacy rows may carry a collapsed single-counter list for point-mass
    # buckets; from_rows pads them back to the full sub-bucket width.
    histogram._array = BucketArray.from_rows(
        ((left, right, counts) for left, right, counts in state["buckets"]),
        int(state["sub_buckets"]),
    )
    # The phi / pair-phi caches are derived state: rebuild them from the
    # restored arrays, and drop any view a read may have created (direct
    # state restoration bypasses the insert/delete template methods).
    histogram._rebuild_phis()
    histogram._invalidate_view()
    return histogram
