"""Saving and restoring histograms (catalog persistence).

A real DBMS keeps its statistics in the system catalog: a histogram built or
maintained in one session must be written out and restored later.  This module
provides that layer for every histogram class in the library:

* :func:`freeze` converts any histogram into an immutable
  :class:`~repro.static.base.StaticHistogram` snapshot (just its buckets);
* :func:`histogram_to_dict` / :func:`histogram_from_dict` serialise histograms
  to plain JSON-compatible dictionaries, preserving the *full* internal state
  of the dynamic histograms (DC, DVO, DADO) so that maintenance can continue
  after a restore;
* :func:`save_histogram` / :func:`load_histogram` wrap the above with JSON
  files.

The AC histogram is serialised as a frozen snapshot: its backing sample
represents data that notionally lives on disk already, and the paper treats a
restart as a rebuild from that sample.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .core.base import Histogram
from .core.bucket import Bucket
from .core.dynamic_compressed import DCHistogram
from .core.dynamic_vopt import DADOHistogram, DVOHistogram
from .exceptions import ConfigurationError
from .static.base import StaticHistogram

__all__ = [
    "freeze",
    "histogram_to_dict",
    "histogram_from_dict",
    "save_histogram",
    "load_histogram",
    "FrozenHistogram",
]

_FORMAT_VERSION = 1


class FrozenHistogram(StaticHistogram):
    """An immutable snapshot of any histogram's buckets."""


def freeze(histogram: Histogram) -> FrozenHistogram:
    """Return an immutable snapshot of ``histogram``'s current buckets."""
    return FrozenHistogram(histogram.buckets())


# ----------------------------------------------------------------------
# dict serialisation
# ----------------------------------------------------------------------
def histogram_to_dict(histogram: Histogram) -> Dict[str, Any]:
    """Serialise a histogram to a JSON-compatible dictionary."""
    if isinstance(histogram, DCHistogram):
        return _dc_to_dict(histogram)
    if isinstance(histogram, DVOHistogram):
        return _dvo_to_dict(histogram)
    # Generic fallback: persist the bucket snapshot.
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "frozen",
        "source_class": type(histogram).__name__,
        "buckets": [[b.left, b.right, b.count] for b in histogram.buckets()],
    }


def histogram_from_dict(state: Dict[str, Any]) -> Histogram:
    """Reconstruct a histogram from :func:`histogram_to_dict` output."""
    version = state.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(f"unsupported histogram format version: {version!r}")
    kind = state.get("kind")
    if kind == "frozen":
        buckets = [Bucket(left, right, count) for left, right, count in state["buckets"]]
        return FrozenHistogram(buckets)
    if kind == "dc":
        return _dc_from_dict(state)
    if kind in ("dvo", "dado"):
        return _dvo_from_dict(state)
    raise ConfigurationError(f"unknown serialised histogram kind: {kind!r}")


def save_histogram(histogram: Histogram, path: Union[str, Path]) -> None:
    """Serialise ``histogram`` to a JSON file at ``path``."""
    payload = histogram_to_dict(histogram)
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_histogram(path: Union[str, Path]) -> Histogram:
    """Load a histogram previously written by :func:`save_histogram`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return histogram_from_dict(payload)


# ----------------------------------------------------------------------
# Dynamic Compressed
# ----------------------------------------------------------------------
def _dc_to_dict(histogram: DCHistogram) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "kind": "dc",
        "bucket_budget": histogram.bucket_budget,
        "alpha_min": histogram.alpha_min,
        "value_unit": histogram._value_unit,
        "repartition_count": histogram.repartition_count,
    }
    if histogram.is_loading:
        state["loading"] = sorted(histogram._loading.items())
    else:
        state["lefts"] = list(histogram._lefts)
        state["counts"] = list(histogram._counts)
        state["right"] = histogram._right
        state["singular"] = sorted(histogram._singular.items())
    return state


def _dc_from_dict(state: Dict[str, Any]) -> DCHistogram:
    histogram = DCHistogram(
        int(state["bucket_budget"]),
        alpha_min=float(state["alpha_min"]),
        value_unit=float(state["value_unit"]),
    )
    histogram._repartition_count = int(state.get("repartition_count", 0))
    if "loading" in state:
        histogram._loading = {float(v): int(c) for v, c in state["loading"]}
        histogram._invalidate_view()
        return histogram
    histogram._loading = None
    histogram._lefts = [float(v) for v in state["lefts"]]
    histogram._counts = [float(v) for v in state["counts"]]
    histogram._right = float(state["right"])
    histogram._singular = {float(v): float(c) for v, c in state["singular"]}
    histogram._regular_total = sum(histogram._counts)
    histogram._regular_sumsq = sum(count * count for count in histogram._counts)
    # Direct state restoration bypasses the insert/delete template methods, so
    # the segment-view cache invariant must be re-established by hand (it is
    # currently a no-op on a never-read instance, but keeps the restore path
    # safe if a read ever sneaks in between construction and restoration).
    histogram._invalidate_view()
    return histogram


# ----------------------------------------------------------------------
# DVO / DADO
# ----------------------------------------------------------------------
def _dvo_to_dict(histogram: DVOHistogram) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "format_version": _FORMAT_VERSION,
        "kind": "dado" if isinstance(histogram, DADOHistogram) else "dvo",
        "bucket_budget": histogram.bucket_budget,
        "sub_buckets": histogram.sub_bucket_count,
        "value_unit": histogram._value_unit,
        "repartition_threshold": histogram._threshold,
        "repartition_count": histogram.repartition_count,
    }
    if histogram.is_loading:
        state["loading"] = sorted(histogram._loading.items())
    else:
        state["buckets"] = [
            [bucket.left, bucket.right, list(bucket.counts)] for bucket in histogram._buckets
        ]
    return state


def _dvo_from_dict(state: Dict[str, Any]) -> DVOHistogram:
    histogram_class = DADOHistogram if state["kind"] == "dado" else DVOHistogram
    histogram = histogram_class(
        int(state["bucket_budget"]),
        sub_buckets=int(state["sub_buckets"]),
        value_unit=float(state["value_unit"]),
        repartition_threshold=float(state["repartition_threshold"]),
    )
    histogram._repartition_count = int(state.get("repartition_count", 0))
    if "loading" in state:
        histogram._loading = {float(v): int(c) for v, c in state["loading"]}
        histogram._invalidate_view()
        return histogram
    from .core.dynamic_vopt import _VBucket

    histogram._loading = None
    histogram._buckets = [
        _VBucket(float(left), float(right), [float(c) for c in counts])
        for left, right, counts in state["buckets"]
    ]
    # _rebuild_caches restores _lefts/_phis/_pair_phis; the segment-view
    # generation must be bumped separately because direct state restoration
    # bypasses the insert/delete template methods (see ROADMAP invariant).
    histogram._rebuild_caches()
    histogram._invalidate_view()
    return histogram
