"""Plain-text and CSV reporting of sweep results.

The benchmark harness prints these tables so that every figure of the paper
has a textual equivalent (x value per row, one column per algorithm), and
EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

import io

from .config import SweepResult

__all__ = ["format_sweep_table", "sweep_to_csv"]


def format_sweep_table(result: SweepResult, *, precision: int = 5) -> str:
    """Render a sweep result as an aligned plain-text table."""
    header = [result.x_label] + result.algorithms
    rows = []
    for index, x_value in enumerate(result.x_values):
        row = [_format_number(x_value, precision)]
        row.extend(
            _format_number(result.series[algorithm][index], precision)
            for algorithm in result.algorithms
        )
        rows.append(row)

    widths = [
        max(len(header[column]), *(len(row[column]) for row in rows)) if rows else len(header[column])
        for column in range(len(header))
    ]

    lines = []
    title = f"{result.name}: {result.y_label} vs {result.x_label}"
    lines.append(title)
    if result.metadata:
        annotations = ", ".join(f"{key}={value}" for key, value in sorted(result.metadata.items()))
        lines.append(f"  [{annotations}]")
    lines.append("  " + "  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  " + "  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  " + "  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def sweep_to_csv(result: SweepResult, *, path: str | None = None) -> str:
    """Serialise a sweep result to CSV; optionally also write it to ``path``."""
    buffer = io.StringIO()
    header = [result.x_label] + result.algorithms
    buffer.write(",".join(header) + "\n")
    for index, x_value in enumerate(result.x_values):
        row = [repr(float(x_value))]
        row.extend(repr(float(result.series[a][index])) for a in result.algorithms)
        buffer.write(",".join(row) + "\n")
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def _format_number(value: float, precision: int) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if 0 < abs(value) < 10 ** (-precision + 2):
        return f"{value:.{max(precision - 3, 1)}e}"
    return f"{value:.{precision}f}"
